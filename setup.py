"""Legacy shim so editable installs work on older setuptools."""

from setuptools import setup

setup()
