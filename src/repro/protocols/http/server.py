"""The web servers co-located with NTP pool hosts.

Pool operators are encouraged to run a web server whose root page
redirects to ``www.pool.ntp.org``; many do not.  A host either runs a
:class:`PoolWebServer` (with one of the ECN negotiation policies from
:mod:`repro.tcp.connection`) or has no listener at all, in which case
its TCP stack answers SYNs with RST — or, when the host has no stack,
with silence.  Both non-server cases read as "not reachable using TCP"
to the measurement application, matching the paper's average of 1334
web servers among 2500 pool hosts.
"""

from __future__ import annotations

from ...netsim.errors import CodecError
from ...netsim.host import Host
from ...tcp.connection import ECNServerPolicy, TCPConnection, TCPStack
from .messages import HTTPRequest, HTTPResponse, HTTP_PORT

REDIRECT_TARGET = "http://www.pool.ntp.org/"

_REDIRECT_BODY = (
    b"<html><head><title>NTP Pool</title></head>"
    b"<body>This server is part of the <a href=\"" + REDIRECT_TARGET.encode() + b"\">"
    b"NTP pool</a>.</body></html>"
)


class PoolWebServer:
    """Minimal HTTP/1.1 server: answers GET / with a redirect."""

    def __init__(
        self,
        host: Host,
        ecn_policy: ECNServerPolicy = ECNServerPolicy.IGNORE,
        port: int = HTTP_PORT,
        status: int = 302,
    ) -> None:
        self.host = host
        self.status = status
        self.requests_served = 0
        stack = host.tcp if isinstance(host.tcp, TCPStack) else TCPStack(host)
        self.stack = stack
        self.listener = stack.listen(port, self._on_connection, ecn_policy=ecn_policy)
        self._buffers: dict[tuple[int, int, int], bytes] = {}

    @property
    def ecn_policy(self) -> ECNServerPolicy:
        return self.listener.ecn_policy

    def _on_connection(self, conn: TCPConnection) -> None:
        self._buffers[conn.key] = b""
        conn.on_data = self._on_data
        conn.on_close = self._on_close
        conn.on_failure = self._on_close

    def _on_data(self, conn: TCPConnection, data: bytes) -> None:
        buffer = self._buffers.get(conn.key, b"") + data
        self._buffers[conn.key] = buffer
        if b"\r\n\r\n" not in buffer:
            return
        try:
            request = HTTPRequest.decode(buffer)
        except CodecError:
            response = HTTPResponse(status=400, reason="Bad Request")
        else:
            response = self._respond(request)
        self.requests_served += 1
        conn.send(response.encode())
        conn.close()
        self._buffers.pop(conn.key, None)

    def _respond(self, request: HTTPRequest) -> HTTPResponse:
        if request.method != "GET":
            return HTTPResponse(status=405, reason="Method Not Allowed")
        if self.status in (301, 302):
            return HTTPResponse(
                status=self.status,
                reason="Found" if self.status == 302 else "Moved Permanently",
                headers={"Location": REDIRECT_TARGET, "Server": "ntppool/1.0"},
                body=_REDIRECT_BODY,
            )
        return HTTPResponse(
            status=200,
            reason="OK",
            headers={"Server": "ntppool/1.0", "Content-Type": "text/html"},
            body=_REDIRECT_BODY,
        )

    def _on_close(self, conn: TCPConnection, reason: str) -> None:
        self._buffers.pop(conn.key, None)
