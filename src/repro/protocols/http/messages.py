"""HTTP/1.1 message parsing and formatting (the subset the study uses).

The TCP probe is an ``HTTP GET`` for the root page; pool hosts are
encouraged to run a web server that redirects to
``www.pool.ntp.org``.  We implement request/response framing with
Content-Length bodies — enough to carry that exchange and to notice
malformed responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...netsim.errors import CodecError

CRLF = b"\r\n"
HEADER_END = b"\r\n\r\n"
HTTP_PORT = 80


@dataclass
class HTTPRequest:
    """A parsed HTTP request."""

    method: str = "GET"
    target: str = "/"
    version: str = "HTTP/1.1"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def encode(self) -> bytes:
        lines = [f"{self.method} {self.target} {self.version}"]
        headers = dict(self.headers)
        if self.body and "content-length" not in {k.lower() for k in headers}:
            headers["Content-Length"] = str(len(self.body))
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        head = "\r\n".join(lines).encode("ascii") + HEADER_END
        return head + self.body

    @classmethod
    def decode(cls, data: bytes) -> "HTTPRequest":
        head, _sep, body = data.partition(HEADER_END)
        if not _sep:
            raise CodecError("request headers not terminated")
        lines = head.split(CRLF)
        try:
            method, target, version = lines[0].decode("ascii").split(" ", 2)
        except (UnicodeDecodeError, ValueError) as exc:
            raise CodecError(f"bad request line: {lines[0]!r}") from exc
        headers = _parse_headers(lines[1:])
        return cls(method=method, target=target, version=version, headers=headers, body=body)


@dataclass
class HTTPResponse:
    """A parsed HTTP response."""

    status: int = 200
    reason: str = "OK"
    version: str = "HTTP/1.1"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def encode(self) -> bytes:
        headers = dict(self.headers)
        lowered = {k.lower() for k in headers}
        if "content-length" not in lowered:
            headers["Content-Length"] = str(len(self.body))
        if "connection" not in lowered:
            headers["Connection"] = "close"
        lines = [f"{self.version} {self.status} {self.reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        head = "\r\n".join(lines).encode("ascii") + HEADER_END
        return head + self.body

    @classmethod
    def decode(cls, data: bytes) -> "HTTPResponse":
        head, _sep, body = data.partition(HEADER_END)
        if not _sep:
            raise CodecError("response headers not terminated")
        lines = head.split(CRLF)
        parts = lines[0].decode("ascii", errors="replace").split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise CodecError(f"bad status line: {lines[0]!r}")
        version = parts[0]
        status = int(parts[1])
        reason = parts[2] if len(parts) > 2 else ""
        headers = _parse_headers(lines[1:])
        return cls(status=status, reason=reason, version=version, headers=headers, body=body)

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup."""
        wanted = name.lower()
        for key, value in self.headers.items():
            if key.lower() == wanted:
                return value
        return default

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307, 308)


def _parse_headers(lines: list[bytes]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for raw in lines:
        if not raw:
            continue
        name, sep, value = raw.decode("ascii", errors="replace").partition(":")
        if not sep:
            raise CodecError(f"bad header line: {raw!r}")
        headers[name.strip()] = value.strip()
    return headers


def response_complete(data: bytes) -> bool:
    """True once ``data`` holds a full response (per Content-Length)."""
    head, sep, body = data.partition(HEADER_END)
    if not sep:
        return False
    try:
        response = HTTPResponse.decode(data)
    except CodecError:
        return True  # malformed: treat as complete so the caller can fail it
    length = response.header("content-length")
    if length is None or not length.isdigit():
        return True
    return len(body) >= int(length)
