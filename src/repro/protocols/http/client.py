"""HTTP client used for the TCP/ECN reachability probes.

One :class:`HTTPFetch` performs the paper's TCP test: open a
connection (optionally with an ECN-setup SYN), send ``GET /``, collect
the response, and record what the SYN-ACK's flag bits said.  The
result distinguishes every outcome the analysis needs: no answer,
connection refused, connected-but-bad-HTTP, full response, and — for
ECN probes — whether an ECN-setup SYN-ACK came back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...netsim.engine import Event
from ...netsim.errors import CodecError
from ...netsim.host import Host
from ...tcp.connection import TCPConnection, TCPStack
from ...tcp.segment import Flags
from .messages import HTTPResponse, HTTP_PORT, response_complete

DEFAULT_DEADLINE = 8.0


@dataclass
class FetchResult:
    """Outcome of one HTTP fetch."""

    server_addr: int
    used_ecn_setup: bool
    connected: bool
    response: HTTPResponse | None
    failure: str | None
    #: Flags seen on the server's SYN-ACK (None if none arrived).
    synack_flags: Flags | None
    #: True iff the SYN-ACK was a valid ECN-setup SYN-ACK (RFC 3168).
    ecn_negotiated: bool
    rtt: float | None = None

    @property
    def ok(self) -> bool:
        """True when a complete, parseable HTTP response was received."""
        return self.response is not None


FetchCallback = Callable[[FetchResult], None]


class HTTPFetch:
    """One in-flight GET with an overall deadline."""

    def __init__(
        self,
        host: Host,
        server_addr: int,
        use_ecn: bool,
        callback: FetchCallback,
        port: int = HTTP_PORT,
        deadline: float = DEFAULT_DEADLINE,
        syn_retries: int = 2,
    ) -> None:
        self.host = host
        self.server_addr = server_addr
        self.use_ecn = use_ecn
        self.callback = callback
        self.port = port
        self.finished = False
        self._buffer = b""
        self._connected = False
        self._started_at = 0.0
        stack = host.tcp if isinstance(host.tcp, TCPStack) else TCPStack(host)
        self._started_at = stack.scheduler.now
        self.conn = stack.connect(
            server_addr, port, use_ecn=use_ecn, syn_retries=syn_retries
        )
        self.conn.on_established = self._on_established
        self.conn.on_data = self._on_data
        self.conn.on_close = self._on_close
        self.conn.on_failure = self._on_failure
        self._deadline_timer: Event = stack.scheduler.schedule(
            deadline, self._on_deadline
        )

    # ------------------------------------------------------------------
    # Connection callbacks
    # ------------------------------------------------------------------
    def _on_established(self, conn: TCPConnection) -> None:
        self._connected = True
        request = (
            b"GET / HTTP/1.1\r\n"
            b"Host: " + self.host.hostname.encode("ascii") + b"\r\n"
            b"User-Agent: ecn-udp-measurement/1.0\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        conn.send(request)

    def _on_data(self, conn: TCPConnection, data: bytes) -> None:
        if self.finished:
            return
        self._buffer += data
        if response_complete(self._buffer):
            self._complete()

    def _on_close(self, conn: TCPConnection, reason: str) -> None:
        if self.finished:
            return
        if self._buffer:
            self._complete()
        elif reason in ("peer-fin", "closed", "reset"):
            self._finish(failure="closed-without-response")

    def _on_failure(self, conn: TCPConnection, reason: str) -> None:
        if not self.finished:
            self._finish(failure=reason)

    def _on_deadline(self) -> None:
        if self.finished:
            return
        self.conn.abort("deadline")
        if self._buffer:
            self._complete()
        else:
            self._finish(failure="deadline")

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _complete(self) -> None:
        try:
            response = HTTPResponse.decode(self._buffer)
        except CodecError:
            self._finish(failure="bad-response")
            return
        self._finish(response=response)

    def _finish(self, response: HTTPResponse | None = None, failure: str | None = None) -> None:
        if self.finished:
            return
        self.finished = True
        self._deadline_timer.cancel()
        scheduler = self.host.network.scheduler
        synack = self.conn.peer_syn_flags
        negotiated = bool(
            self.use_ecn
            and synack is not None
            and (synack & Flags.SYN)
            and (synack & Flags.ACK)
            and (synack & Flags.ECE)
            and not (synack & Flags.CWR)
        )
        if self.conn.state.value not in ("closed", "failed", "time-wait"):
            self.conn.abort("probe-finished")
        self.callback(
            FetchResult(
                server_addr=self.server_addr,
                used_ecn_setup=self.use_ecn,
                connected=self._connected,
                response=response,
                failure=failure,
                synack_flags=synack,
                ecn_negotiated=negotiated,
                rtt=(scheduler.now - self._started_at) if response is not None else None,
            )
        )


def fetch(
    host: Host,
    server_addr: int,
    use_ecn: bool,
    callback: FetchCallback,
    deadline: float = DEFAULT_DEADLINE,
) -> HTTPFetch:
    """Start a GET probe against ``server_addr``; callback always fires."""
    return HTTPFetch(host, server_addr, use_ecn, callback, deadline=deadline)
