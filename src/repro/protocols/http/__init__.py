"""HTTP: message framing, pool web server, probe client."""

from .client import DEFAULT_DEADLINE, FetchResult, HTTPFetch, fetch
from .messages import (
    HTTPRequest,
    HTTPResponse,
    HTTP_PORT,
    response_complete,
)
from .server import PoolWebServer, REDIRECT_TARGET

__all__ = [
    "DEFAULT_DEADLINE",
    "FetchResult",
    "HTTPFetch",
    "HTTPRequest",
    "HTTPResponse",
    "HTTP_PORT",
    "PoolWebServer",
    "REDIRECT_TARGET",
    "fetch",
    "response_complete",
]
