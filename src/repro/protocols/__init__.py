"""Application protocols running over the simulated network."""
