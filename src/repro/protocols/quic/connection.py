"""The client half of the QUIC ECN-validation probe.

Implements the RFC 9000 §13.4 sender behaviour as a measurement probe:
open a connection with an ECT(0)-marked Initial, send a short burst of
ECT(0)-marked 1-RTT PINGs, and collect the ECT(0)/ECT(1)/CE totals the
server echoes in ACK_ECN frames.  If the ECT(0) handshake times out,
fall back to a not-ECT handshake on a fresh connection ID — success
there means the path blackholes ECT-marked UDP rather than the server
being dead, which is exactly the distinction the raw-UDP differential
probe makes with two NTP queries.

The class mirrors :class:`repro.protocols.ntp.client.NTPQuery`: one
ephemeral socket, scheduler-driven timers, a completion callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...netsim.ecn import ECN
from ...netsim.engine import Event
from ...netsim.errors import CodecError
from ...netsim.host import Host
from ...netsim.ipv4 import IPv4Packet
from ...netsim.udp import UDPDatagram
from .packet import (
    CLIENT_HELLO,
    QUIC_PORT,
    SERVER_HELLO,
    CryptoFrame,
    PingFrame,
    QUICPacket,
    TYPE_INITIAL,
    TYPE_ONE_RTT,
)

#: Default probe policy: one Initial plus eight PINGs per connection,
#: NTP-style one-second timers.
DEFAULT_PACKETS = 8
DEFAULT_HANDSHAKE_ATTEMPTS = 5
DEFAULT_FALLBACK_ATTEMPTS = 2
DEFAULT_TIMEOUT = 1.0
DEFAULT_PACKET_GAP = 0.02


@dataclass
class QUICProbeResult:
    """Raw outcome of one QUIC ECN probe (classify with
    :func:`repro.protocols.quic.validation.classify_probe`)."""

    server_addr: int
    handshake_ok: bool
    fallback_ok: bool
    handshake_attempts: int
    packets_sent: int
    packets_acked: int
    ect0_echoed: int
    ect1_echoed: int
    ce_echoed: int


#: Completion callback: receives the result when the probe resolves.
ProbeCallback = Callable[[QUICProbeResult], None]

#: Internal phases of the probe state machine.
_PHASE_ECT = "handshake-ect"
_PHASE_FALLBACK = "handshake-fallback"
_PHASE_DATA = "data"


class QUICProbe:
    """One in-flight QUIC ECN-validation probe."""

    def __init__(
        self,
        host: Host,
        server_addr: int,
        callback: ProbeCallback,
        packets: int = DEFAULT_PACKETS,
        handshake_attempts: int = DEFAULT_HANDSHAKE_ATTEMPTS,
        fallback_attempts: int = DEFAULT_FALLBACK_ATTEMPTS,
        timeout: float = DEFAULT_TIMEOUT,
        packet_gap: float = DEFAULT_PACKET_GAP,
    ) -> None:
        self.host = host
        self.server_addr = server_addr
        self.callback = callback
        self.packets = packets
        self.max_handshake_attempts = handshake_attempts
        self.max_fallback_attempts = fallback_attempts
        self.timeout = timeout
        self.packet_gap = packet_gap
        self.phase = _PHASE_ECT
        self.finished = False
        self.handshake_ok = False
        self.fallback_ok = False
        self.handshake_attempts = 0
        self.fallback_attempts = 0
        self.pings_sent = 0
        self.acked = 0
        self.ect0 = 0
        self.ect1 = 0
        self.ce = 0
        self._timer: Event | None = None
        self._attempt_ident = 0
        self._socket = host.udp_bind(None, self._on_datagram)
        #: Connection ID: the ephemeral port is already unique per
        #: concurrent probe on a host and deterministic per epoch.
        self.cid = self._socket.port

    def start(self) -> None:
        """Send the first ECT(0)-marked Initial."""
        self._send_handshake()

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    def _send_handshake(self) -> None:
        scheduler = self.host.network.scheduler
        if self.phase == _PHASE_ECT:
            self.handshake_attempts += 1
            ecn = ECN.ECT_0
            cid = self.cid
        else:
            self.fallback_attempts += 1
            ecn = ECN.NOT_ECT
            # A fresh connection ID keeps the fallback connection's
            # counters independent of any half-open ECT connection.
            cid = self.cid + 1
        self._attempt_ident += 1
        initial = QUICPacket(
            ptype=TYPE_INITIAL,
            cid=cid,
            packet_number=0,
            frames=[CryptoFrame(token=CLIENT_HELLO)],
        )
        self._socket.send(
            self.server_addr,
            QUIC_PORT,
            initial.encode(),
            ecn=ecn,
            ident=self._attempt_ident,
        )
        self._timer = scheduler.schedule(self.timeout, self._on_timeout)

    def _on_timeout(self) -> None:
        self._timer = None
        if self.finished:
            return
        if self.phase == _PHASE_ECT:
            if self.handshake_attempts < self.max_handshake_attempts:
                self._send_handshake()
                return
            # ECT handshake exhausted: try again without ECN marks to
            # separate "path eats ECT" from "server is dead".
            self.phase = _PHASE_FALLBACK
            self._send_handshake()
            return
        if self.phase == _PHASE_FALLBACK:
            if self.fallback_attempts < self.max_fallback_attempts:
                self._send_handshake()
                return
            self._finish()
            return
        # Data phase: the drain timer expired; report what was echoed.
        self._finish()

    # ------------------------------------------------------------------
    # Data burst
    # ------------------------------------------------------------------
    def _send_next_ping(self) -> None:
        self._timer = None
        if self.finished:
            return
        scheduler = self.host.network.scheduler
        if self.pings_sent < self.packets:
            self.pings_sent += 1
            self._attempt_ident += 1
            ping = QUICPacket(
                ptype=TYPE_ONE_RTT,
                cid=self.cid,
                packet_number=self.pings_sent,
                frames=[PingFrame()],
            )
            self._socket.send(
                self.server_addr,
                QUIC_PORT,
                ping.encode(),
                ecn=ECN.ECT_0,
                ident=self._attempt_ident,
            )
            if self.pings_sent < self.packets:
                self._timer = scheduler.schedule(self.packet_gap, self._send_next_ping)
            else:
                self._timer = scheduler.schedule(self.timeout, self._on_timeout)
            return
        self._timer = scheduler.schedule(self.timeout, self._on_timeout)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _on_datagram(self, datagram: UDPDatagram, packet: IPv4Packet, now: float) -> None:
        if self.finished or packet.src != self.server_addr:
            return
        try:
            reply = QUICPacket.decode(datagram.payload)
        except CodecError:
            return
        if reply.cid not in (self.cid, self.cid + 1):
            return
        ack = reply.first_ack_ecn()
        if reply.cid == self.cid and ack is not None:
            # Counters at the server only grow, so a component-wise max
            # absorbs reordered ACKs without double counting.
            self.acked = max(self.acked, ack.acked_count)
            self.ect0 = max(self.ect0, ack.ect0)
            self.ect1 = max(self.ect1, ack.ect1)
            self.ce = max(self.ce, ack.ce)
        if reply.ptype == TYPE_INITIAL and reply.has_crypto(SERVER_HELLO):
            if self.phase == _PHASE_ECT and reply.cid == self.cid:
                self.handshake_ok = True
                self.phase = _PHASE_DATA
                if self._timer is not None:
                    self._timer.cancel()
                    self._timer = None
                self._send_next_ping()
                return
            if self.phase == _PHASE_FALLBACK and reply.cid == self.cid + 1:
                self.fallback_ok = True
                self._finish()
                return
        if (
            self.phase == _PHASE_DATA
            and self.pings_sent == self.packets
            and self.acked >= self.packets_sent
        ):
            # Every packet accounted for: no need to wait out the
            # drain timer.
            self._finish()

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    @property
    def packets_sent(self) -> int:
        """Distinct ECT(0)-marked packet numbers sent on the main
        connection (retransmitted Initials share packet number 0)."""
        if self.phase == _PHASE_FALLBACK and not self.handshake_ok:
            return 1
        return 1 + self.pings_sent

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._socket.close()
        self.callback(
            QUICProbeResult(
                server_addr=self.server_addr,
                handshake_ok=self.handshake_ok,
                fallback_ok=self.fallback_ok,
                handshake_attempts=self.handshake_attempts,
                packets_sent=self.packets_sent,
                packets_acked=self.acked,
                ect0_echoed=self.ect0,
                ect1_echoed=self.ect1,
                ce_echoed=self.ce,
            )
        )


def probe_server(
    host: Host,
    server_addr: int,
    callback: ProbeCallback,
    packets: int = DEFAULT_PACKETS,
    handshake_attempts: int = DEFAULT_HANDSHAKE_ATTEMPTS,
    fallback_attempts: int = DEFAULT_FALLBACK_ATTEMPTS,
    timeout: float = DEFAULT_TIMEOUT,
    packet_gap: float = DEFAULT_PACKET_GAP,
) -> QUICProbe:
    """Start a QUIC ECN probe; the callback fires on completion."""
    probe = QUICProbe(
        host,
        server_addr,
        callback,
        packets=packets,
        handshake_attempts=handshake_attempts,
        fallback_attempts=fallback_attempts,
        timeout=timeout,
        packet_gap=packet_gap,
    )
    probe.start()
    return probe
