"""QUIC-like servers.

Each simulated pool host runs one of these on UDP 443 next to its NTP
daemon.  The server's only job is the receiver half of RFC 9000 §13.4
ECN validation: count, per connection and per distinct packet number,
how many packets arrived marked ECT(0), ECT(1), and CE, and echo those
totals in an ACK_ECN frame on every acknowledgement.  Like the NTP
server it can be marked offline (bound but silent) for pool churn.

Connection state is *evolved* state, not configuration — it is cleared
at every epoch boundary by
:meth:`~repro.scenario.internet.SyntheticInternet.begin_epoch` via
:meth:`QUICServer.reset_connections` so hermetic epochs stay hermetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...netsim.ecn import ECN
from ...netsim.errors import CodecError
from ...netsim.host import Host
from ...netsim.ipv4 import IPv4Packet
from ...netsim.udp import UDPDatagram
from .packet import (
    CLIENT_HELLO,
    QUIC_PORT,
    SERVER_HELLO,
    AckEcnFrame,
    CryptoFrame,
    QUICPacket,
    TYPE_INITIAL,
    TYPE_ONE_RTT,
)


@dataclass
class ConnectionState:
    """Per-connection receive state: the §13.4 counters."""

    largest_pn: int = 0
    ect0: int = 0
    ect1: int = 0
    ce: int = 0
    reply_pn: int = 0
    seen_pns: set[int] = field(default_factory=set)

    def record(self, packet_number: int, ecn: ECN) -> bool:
        """Count a packet once per distinct packet number.

        Returns False for a duplicate (retransmitted) packet number,
        which must not inflate the ECN counts.
        """
        if packet_number in self.seen_pns:
            return False
        self.seen_pns.add(packet_number)
        self.largest_pn = max(self.largest_pn, packet_number)
        if ecn is ECN.ECT_0:
            self.ect0 += 1
        elif ecn is ECN.ECT_1:
            self.ect1 += 1
        elif ecn is ECN.CE:
            self.ce += 1
        return True

    def ack_frame(self) -> AckEcnFrame:
        """Build the ACK_ECN frame echoing the current totals."""
        return AckEcnFrame(
            largest_acked=self.largest_pn,
            acked_count=len(self.seen_pns),
            ect0=self.ect0,
            ect1=self.ect1,
            ce=self.ce,
        )


class QUICServer:
    """A minimal QUIC endpoint bound to UDP 443, echoing ECN counts."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.online = True
        self.packets_served = 0
        self.connections: dict[tuple[int, int], ConnectionState] = {}
        self._socket = host.udp_bind(QUIC_PORT, self._on_datagram)

    def set_online(self, online: bool) -> None:
        """Toggle daemon availability (pool churn between batches)."""
        self.online = online

    def reset_connections(self) -> None:
        """Drop all connection state (epoch-boundary hermeticity)."""
        self.connections.clear()

    def _on_datagram(self, datagram: UDPDatagram, packet: IPv4Packet, now: float) -> None:
        if not self.online:
            return
        try:
            request = QUICPacket.decode(datagram.payload)
        except CodecError:
            return
        key = (packet.src, request.cid)
        if request.ptype == TYPE_INITIAL:
            if not request.has_crypto(CLIENT_HELLO):
                return
            # A fresh Initial (re)creates the connection; a duplicate
            # Initial for a live connection just re-elicits the reply.
            conn = self.connections.get(key)
            if conn is None:
                conn = ConnectionState()
                self.connections[key] = conn
            conn.record(request.packet_number, packet.ecn)
            frames = [CryptoFrame(token=SERVER_HELLO), conn.ack_frame()]
            reply = QUICPacket(
                ptype=TYPE_INITIAL,
                cid=request.cid,
                packet_number=conn.reply_pn,
                frames=frames,
            )
        elif request.ptype == TYPE_ONE_RTT:
            conn = self.connections.get(key)
            if conn is None:
                # 1-RTT before a handshake: no connection, no reply
                # (real QUIC would send a stateless reset; silence is
                # equivalent for a probe that only counts ACKs).
                return
            conn.record(request.packet_number, packet.ecn)
            reply = QUICPacket(
                ptype=TYPE_ONE_RTT,
                cid=request.cid,
                packet_number=conn.reply_pn,
                frames=[conn.ack_frame()],
            )
        else:  # pragma: no cover - decode() rejects unknown types
            return
        conn.reply_pn += 1
        self.packets_served += 1
        # ACKs travel not-ECT: the probe validates the client→server
        # direction only, matching the paper's §3 methodology.
        self._socket.send(
            packet.src,
            datagram.src_port,
            reply.encode(),
            ecn=ECN.NOT_ECT,
        )

    def __repr__(self) -> str:
        state = "online" if self.online else "offline"
        return (
            f"QUICServer({self.host.hostname!r}, "
            f"{len(self.connections)} conns, {state})"
        )
