"""RFC 9000 §13.4 ECN validation: classify a probe's echoed counts.

QUIC endpoints validate ECN by comparing the ECT(0)/ECT(1)/CE counts
echoed in ACK_ECN frames against the packets they actually sent, and
disable ECN when the path proves hostile.  The classifier distils that
state machine into one terminal state per probe:

``valid``
    The handshake completed on ECT(0) and every acknowledged packet
    was counted as ECT(0) or CE — ECN survives this path (CE means a
    congestion signal arrived intact, which *passes* validation).
``bleached``
    Packets arrived, but fewer ECN marks than acknowledged packets
    were counted: a middlebox zeroed the field in flight.  ECN must be
    disabled, yet a reachability-only probe would call this path fine.
``remarked``
    ECT(1) counts appeared for ECT(0)-marked traffic: something
    rewrote the codepoint.  Validation fails (RFC 9000 §13.4.2.1).
``inconsistent``
    The counts are impossible — more marks than packets, or more
    packets acknowledged than sent.  Broken feedback; disable ECN.
``blackhole``
    The ECT(0) handshake died but a not-ECT handshake succeeded: the
    path (or server policy) drops ECT-marked UDP outright.  This is
    the failure mode the raw-UDP differential probe detects.
``unreachable``
    Neither handshake got a response; nothing can be said about ECN.
"""

from __future__ import annotations

from .connection import QUICProbeResult

#: Terminal validation states, in report order.  Index positions are
#: part of the trace wire format (see ``repro.core.traces``) — append
#: only.
QUIC_STATES = (
    "valid",
    "bleached",
    "remarked",
    "inconsistent",
    "blackhole",
    "unreachable",
)

#: States in which an RFC 9000 endpoint keeps ECN enabled.
ECN_USABLE_STATES = frozenset({"valid"})


def classify_probe(result: QUICProbeResult) -> str:
    """Map a raw probe result to its terminal validation state."""
    if not result.handshake_ok:
        return "blackhole" if result.fallback_ok else "unreachable"
    marked = result.ect0_echoed + result.ect1_echoed + result.ce_echoed
    if result.packets_acked > result.packets_sent or marked > result.packets_acked:
        return "inconsistent"
    if result.ect1_echoed > 0:
        return "remarked"
    if marked < result.packets_acked:
        return "bleached"
    return "valid"


def ecn_usable(state: str) -> bool:
    """True if an RFC 9000 endpoint would keep ECN enabled."""
    return state in ECN_USABLE_STATES
