"""QUIC-like transport: codec, server, ECN probe, §13.4 validation."""

from .connection import (
    DEFAULT_FALLBACK_ATTEMPTS,
    DEFAULT_HANDSHAKE_ATTEMPTS,
    DEFAULT_PACKETS,
    DEFAULT_PACKET_GAP,
    DEFAULT_TIMEOUT,
    QUICProbe,
    QUICProbeResult,
    probe_server,
)
from .packet import (
    CLIENT_HELLO,
    FRAME_ACK_ECN,
    FRAME_CRYPTO,
    FRAME_PING,
    QUIC_PORT,
    SERVER_HELLO,
    TYPE_INITIAL,
    TYPE_ONE_RTT,
    AckEcnFrame,
    CryptoFrame,
    PingFrame,
    QUICPacket,
)
from .server import ConnectionState, QUICServer
from .validation import ECN_USABLE_STATES, QUIC_STATES, classify_probe, ecn_usable

__all__ = [
    "AckEcnFrame",
    "CLIENT_HELLO",
    "ConnectionState",
    "CryptoFrame",
    "DEFAULT_FALLBACK_ATTEMPTS",
    "DEFAULT_HANDSHAKE_ATTEMPTS",
    "DEFAULT_PACKETS",
    "DEFAULT_PACKET_GAP",
    "DEFAULT_TIMEOUT",
    "ECN_USABLE_STATES",
    "FRAME_ACK_ECN",
    "FRAME_CRYPTO",
    "FRAME_PING",
    "PingFrame",
    "QUICPacket",
    "QUICProbe",
    "QUICProbeResult",
    "QUICServer",
    "QUIC_PORT",
    "QUIC_STATES",
    "SERVER_HELLO",
    "TYPE_INITIAL",
    "TYPE_ONE_RTT",
    "classify_probe",
    "ecn_usable",
    "probe_server",
]
