"""QUIC-like packet codec (the RFC 9000 subset the ECN probe needs).

This is deliberately not a full QUIC implementation: no varints, no
encryption, no streams.  What it keeps is exactly the machinery RFC
9000 §13.4 ECN validation depends on — a connection ID, monotonically
increasing packet numbers, a two-flight handshake (Initial carrying a
client/server hello), and ACK frames of the ACK_ECN flavour that echo
how many packets arrived marked ECT(0), ECT(1), and CE.  Fields are
fixed-width so captures and quotations stay byte-exact, mirroring the
NTP codec.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ...netsim.errors import CodecError

#: QUIC's registered UDP port (RFC 9000 deployments use 443/udp).
QUIC_PORT = 443

#: Long-header-ish packet types (one byte on our wire).
TYPE_INITIAL = 0
TYPE_ONE_RTT = 1

#: Frame type bytes (values borrowed from RFC 9000 §19).
FRAME_PING = 0x01
FRAME_ACK_ECN = 0x03
FRAME_CRYPTO = 0x06

#: Fixed 8-byte stand-ins for the TLS handshake messages.
CLIENT_HELLO = b"quic-chi"
SERVER_HELLO = b"quic-shi"

#: Packet header: type, connection id, packet number.
_HEADER = struct.Struct("!BII")
#: ACK_ECN frame body: largest acked, acked count, ECT(0)/ECT(1)/CE counts.
_ACK_ECN = struct.Struct("!IIIII")

_CRYPTO_LEN = 8


@dataclass(frozen=True)
class PingFrame:
    """A PING frame — elicits an acknowledgement (RFC 9000 §19.2)."""

    frame_type: int = FRAME_PING

    def encode(self) -> bytes:
        """Serialise to the one-byte wire form."""
        return bytes([FRAME_PING])


@dataclass(frozen=True)
class AckEcnFrame:
    """An ACK frame with ECN counts (RFC 9000 §19.3.2).

    ``ect0``/``ect1``/``ce`` are cumulative totals of packets the
    sender of this frame received with each ECN codepoint, counted
    once per distinct packet number — the feedback §13.4 validation
    compares against what was actually sent.
    """

    largest_acked: int = 0
    acked_count: int = 0
    ect0: int = 0
    ect1: int = 0
    ce: int = 0
    frame_type: int = FRAME_ACK_ECN

    def encode(self) -> bytes:
        """Serialise to the wire form (type byte + five counters)."""
        return bytes([FRAME_ACK_ECN]) + _ACK_ECN.pack(
            self.largest_acked, self.acked_count, self.ect0, self.ect1, self.ce
        )


@dataclass(frozen=True)
class CryptoFrame:
    """A CRYPTO frame carrying a fixed 8-byte hello token."""

    token: bytes = CLIENT_HELLO
    frame_type: int = FRAME_CRYPTO

    def encode(self) -> bytes:
        """Serialise to the wire form (type byte + 8-byte token)."""
        if len(self.token) != _CRYPTO_LEN:
            raise CodecError(f"CRYPTO token must be {_CRYPTO_LEN} bytes: {self.token!r}")
        return bytes([FRAME_CRYPTO]) + self.token


Frame = PingFrame | AckEcnFrame | CryptoFrame


@dataclass
class QUICPacket:
    """A parsed QUIC-like packet: header plus a list of frames."""

    ptype: int = TYPE_INITIAL
    cid: int = 0
    packet_number: int = 0
    frames: list[Frame] = field(default_factory=list)

    def encode(self) -> bytes:
        """Serialise header and frames to the wire format."""
        if self.ptype not in (TYPE_INITIAL, TYPE_ONE_RTT):
            raise CodecError(f"QUIC packet type out of range: {self.ptype}")
        out = _HEADER.pack(self.ptype, self.cid & 0xFFFFFFFF, self.packet_number)
        return out + b"".join(frame.encode() for frame in self.frames)

    @classmethod
    def decode(cls, data: bytes) -> "QUICPacket":
        """Parse the wire format; raises :class:`CodecError` on damage."""
        if len(data) < _HEADER.size:
            raise CodecError(f"QUIC packet truncated: {len(data)} bytes")
        ptype, cid, packet_number = _HEADER.unpack_from(data)
        if ptype not in (TYPE_INITIAL, TYPE_ONE_RTT):
            raise CodecError(f"unknown QUIC packet type: {ptype}")
        frames: list[Frame] = []
        offset = _HEADER.size
        while offset < len(data):
            ftype = data[offset]
            offset += 1
            if ftype == FRAME_PING:
                frames.append(PingFrame())
            elif ftype == FRAME_ACK_ECN:
                if offset + _ACK_ECN.size > len(data):
                    raise CodecError(f"ACK_ECN frame truncated at offset {offset}")
                largest, count, ect0, ect1, ce = _ACK_ECN.unpack_from(data, offset)
                offset += _ACK_ECN.size
                frames.append(
                    AckEcnFrame(
                        largest_acked=largest,
                        acked_count=count,
                        ect0=ect0,
                        ect1=ect1,
                        ce=ce,
                    )
                )
            elif ftype == FRAME_CRYPTO:
                if offset + _CRYPTO_LEN > len(data):
                    raise CodecError(f"CRYPTO frame truncated at offset {offset}")
                frames.append(CryptoFrame(token=bytes(data[offset : offset + _CRYPTO_LEN])))
                offset += _CRYPTO_LEN
            else:
                raise CodecError(f"unknown QUIC frame type: {ftype:#x}")
        return cls(ptype=ptype, cid=cid, packet_number=packet_number, frames=frames)

    def first_ack_ecn(self) -> AckEcnFrame | None:
        """Return the first ACK_ECN frame, if any."""
        for frame in self.frames:
            if isinstance(frame, AckEcnFrame):
                return frame
        return None

    def has_crypto(self, token: bytes) -> bool:
        """True if any CRYPTO frame carries exactly ``token``."""
        return any(
            isinstance(frame, CryptoFrame) and frame.token == token
            for frame in self.frames
        )

    def __repr__(self) -> str:
        kind = "Initial" if self.ptype == TYPE_INITIAL else "1-RTT"
        return (
            f"QUICPacket({kind}, cid={self.cid:#x}, "
            f"pn={self.packet_number}, frames={len(self.frames)})"
        )
