"""A NADA-style rate controller (after draft-ietf-rmcat-nada).

The paper cites NADA as the IETF congestion-control candidate that
"makes extensive use of ECN" (§1).  This is a compact implementation
of its core idea: fold losses, CE marks, and queueing delay into one
*aggregate congestion signal*, then steer the sending rate so the
signal tracks a reference — gradient-style decrease when the signal
grows, gentle ramp when the path is clean.

ECN is what makes the controller pleasant for interactive media:
CE marks raise the signal *before* queues overflow, so a marking
bottleneck reaches the same equilibrium rate with near-zero loss,
whereas a drop-only bottleneck pays for every congestion signal with
lost media.  Tests assert exactly that contrast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Signal weights: a fully lossy interval "costs" this many
#: milliseconds of virtual delay, a fully CE-marked one a tenth of
#: that (NADA weighs losses roughly an order of magnitude above
#: marks).  With the default ``x_ref`` of 10 ms, the controller holds
#: rate when ~25 % of packets are marked and backs off above that.
LOSS_PENALTY_MS = 400.0
MARK_PENALTY_MS = 40.0


@dataclass
class NADAController:
    """Rate adaptation from aggregate congestion signals.

    Parameters mirror the draft's structure, simplified: rates in bits
    per second, the reference signal ``x_ref`` in milliseconds.
    """

    min_rate: float = 150_000.0
    max_rate: float = 2_500_000.0
    initial_rate: float = 600_000.0
    #: Reference congestion signal (ms): equilibrium operating point.
    x_ref: float = 10.0
    #: Multiplicative sensitivity of the gradient step.
    kappa: float = 0.5
    #: Additive ramp-up per update when the path is totally clean.
    ramp_fraction: float = 0.05

    rate: float = field(init=False)
    #: Last computed aggregate signal, for inspection.
    last_signal_ms: float = field(init=False, default=0.0)
    updates: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.rate = min(max(self.initial_rate, self.min_rate), self.max_rate)

    def aggregate_signal(
        self, queuing_delay_ms: float, loss_ratio: float, mark_ratio: float
    ) -> float:
        """NADA's x_n: delay plus penalty-weighted loss and marking."""
        if not 0 <= loss_ratio <= 1 or not 0 <= mark_ratio <= 1:
            raise ValueError("ratios must be within [0, 1]")
        return (
            max(queuing_delay_ms, 0.0)
            + loss_ratio * LOSS_PENALTY_MS
            + mark_ratio * MARK_PENALTY_MS
        )

    def update(
        self,
        queuing_delay_ms: float,
        loss_ratio: float,
        mark_ratio: float,
    ) -> float:
        """One feedback-driven rate update; returns the new rate."""
        signal = self.aggregate_signal(queuing_delay_ms, loss_ratio, mark_ratio)
        self.last_signal_ms = signal
        self.updates += 1
        if signal <= 0.5 and loss_ratio == 0 and mark_ratio == 0:
            # Clean path: additive ramp toward max.
            self.rate += self.ramp_fraction * self.rate
        else:
            # Gradient step: scale toward the reference signal.
            error = (self.x_ref - signal) / max(self.x_ref, 1e-9)
            self.rate *= 1.0 + self.kappa * max(min(error, 1.0), -0.8) * 0.1
        self.rate = min(max(self.rate, self.min_rate), self.max_rate)
        return self.rate
