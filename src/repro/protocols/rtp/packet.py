"""RTP packet and ECN feedback codecs.

The paper's motivation (§1-2) is interactive media: WebRTC carries RTP
over UDP, and RFC 6679 defines how receivers feed ECN information back
so congestion controllers like NADA can react to CE marks instead of
losses.  This module provides:

* a byte-exact RTP header codec (RFC 3550 §5.1, no CSRC/extensions);
* an *ECN feedback report* modelled on RFC 6679's RTCP ECN feedback:
  per-SSRC counts of packets received with each ECN codepoint, plus
  the extended highest sequence number and a lost-packet count.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ...netsim.errors import CodecError

RTP_VERSION = 2

_RTP_HEADER = struct.Struct("!BBHII")
RTP_HEADER_LEN = _RTP_HEADER.size  # 12

_FEEDBACK = struct.Struct("!4sIIIIIIII")
FEEDBACK_MAGIC = b"ECNF"
FEEDBACK_LEN = _FEEDBACK.size


@dataclass
class RTPPacket:
    """An RTP data packet (header + payload)."""

    payload_type: int
    sequence: int
    timestamp: int
    ssrc: int
    payload: bytes = b""
    marker: bool = False

    def encode(self) -> bytes:
        """Serialise to RFC 3550 wire format."""
        if not 0 <= self.payload_type <= 0x7F:
            raise CodecError(f"payload type out of range: {self.payload_type}")
        first = RTP_VERSION << 6  # no padding, no extension, no CSRC
        second = (0x80 if self.marker else 0) | self.payload_type
        return (
            _RTP_HEADER.pack(
                first,
                second,
                self.sequence & 0xFFFF,
                self.timestamp & 0xFFFFFFFF,
                self.ssrc & 0xFFFFFFFF,
            )
            + self.payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "RTPPacket":
        """Parse wire bytes."""
        if len(data) < RTP_HEADER_LEN:
            raise CodecError(f"RTP header truncated: {len(data)} bytes")
        first, second, sequence, timestamp, ssrc = _RTP_HEADER.unpack_from(data)
        if first >> 6 != RTP_VERSION:
            raise CodecError(f"not RTPv2: version={first >> 6}")
        if first & 0x0F:
            raise CodecError("CSRC lists are not supported")
        return cls(
            payload_type=second & 0x7F,
            marker=bool(second & 0x80),
            sequence=sequence,
            timestamp=timestamp,
            ssrc=ssrc,
            payload=data[RTP_HEADER_LEN:],
        )


@dataclass
class ECNFeedback:
    """RFC 6679-style ECN feedback: what the receiver saw, by codepoint.

    ``ect0``/``ect1``/``ce``/``not_ect`` count *received* packets by the
    ECN field of their IP header; ``lost`` is the receiver's loss
    estimate (gaps in the sequence space); ``highest_seq`` the extended
    highest sequence received.  The sender derives marking and loss
    ratios from deltas between consecutive reports.
    """

    ssrc: int
    ect0: int = 0
    ect1: int = 0
    ce: int = 0
    not_ect: int = 0
    lost: int = 0
    highest_seq: int = 0
    report_seq: int = 0

    def encode(self) -> bytes:
        return _FEEDBACK.pack(
            FEEDBACK_MAGIC,
            self.ssrc & 0xFFFFFFFF,
            self.ect0,
            self.ect1,
            self.ce,
            self.not_ect,
            self.lost,
            self.highest_seq,
            self.report_seq,
        )

    @classmethod
    def decode(cls, data: bytes) -> "ECNFeedback":
        if len(data) < FEEDBACK_LEN:
            raise CodecError(f"ECN feedback truncated: {len(data)} bytes")
        magic, ssrc, ect0, ect1, ce, not_ect, lost, highest, report_seq = (
            _FEEDBACK.unpack_from(data)
        )
        if magic != FEEDBACK_MAGIC:
            raise CodecError(f"bad feedback magic: {magic!r}")
        return cls(
            ssrc=ssrc,
            ect0=ect0,
            ect1=ect1,
            ce=ce,
            not_ect=not_ect,
            lost=lost,
            highest_seq=highest,
            report_seq=report_seq,
        )

    @property
    def received_total(self) -> int:
        return self.ect0 + self.ect1 + self.ce + self.not_ect

    @property
    def ect_delivered(self) -> int:
        """Packets that arrived still carrying an ECT/CE codepoint."""
        return self.ect0 + self.ect1 + self.ce
