"""RTP media sessions with ECN over the simulated network.

Implements the deployment model §2 of the paper describes for ECN with
UDP: "an initial ECN capability negotiation phase while the
communication session is being set-up, before ECT-marked UDP packets
are sent".  Concretely (after RFC 6679):

1. the sender starts in a **probing** phase, sending media ECT(0)-marked;
2. the first feedback report decides: if ECT-marked packets arrived
   (``ect_delivered > 0``) ECN is **validated** and marking continues;
   if packets arrived but all bleached to not-ECT, or nothing arrived
   while a not-ECT probe would get through, the sender **falls back**
   to not-ECT marking — the failure the paper's reachability study
   quantifies;
3. thereafter, feedback deltas (loss / CE-mark ratios) drive the
   NADA-style controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...netsim.ecn import ECN
from ...netsim.errors import CodecError
from ...netsim.host import Host
from ...netsim.ipv4 import IPv4Packet
from ...netsim.udp import UDPDatagram
from .nada import NADAController
from .packet import ECNFeedback, RTPPacket

#: RTP payload type used for the synthetic media stream.
MEDIA_PAYLOAD_TYPE = 96
#: RTP clock rate used for timestamps (8 kHz, telephony-style).
RTP_CLOCK_HZ = 8000

ECN_PROBING = "probing"
ECN_ACTIVE = "active"
ECN_DISABLED = "disabled"


class RTPReceiver:
    """Receives media, counts ECN codepoints, returns feedback."""

    def __init__(
        self,
        host: Host,
        port: int,
        feedback_interval: float = 0.1,
    ) -> None:
        self.host = host
        self.feedback_interval = feedback_interval
        self.socket = host.udp_bind(port, self._on_packet)
        self.counts = {ECN.NOT_ECT: 0, ECN.ECT_0: 0, ECN.ECT_1: 0, ECN.CE: 0}
        self.highest_seq: int | None = None
        self.received = 0
        self.media_bytes = 0
        self._report_seq = 0
        self._sender: tuple[int, int] | None = None
        self._ssrc = 0
        self._timer = None

    def _on_packet(self, datagram: UDPDatagram, packet: IPv4Packet, now: float) -> None:
        try:
            rtp = RTPPacket.decode(datagram.payload)
        except CodecError:
            return
        if self._sender is None:
            self._sender = (packet.src, datagram.src_port)
            self._ssrc = rtp.ssrc
            self._schedule_feedback()
        self.received += 1
        self.media_bytes += len(rtp.payload)
        self.counts[packet.ecn] += 1
        if self.highest_seq is None or _seq_newer(rtp.sequence, self.highest_seq):
            self.highest_seq = rtp.sequence

    def _schedule_feedback(self) -> None:
        self._timer = self.host.network.scheduler.schedule(
            self.feedback_interval, self._send_feedback
        )

    def _send_feedback(self) -> None:
        if self._sender is None:
            return
        self._report_seq += 1
        expected = (self.highest_seq or 0) + 1
        feedback = ECNFeedback(
            ssrc=self._ssrc,
            ect0=self.counts[ECN.ECT_0],
            ect1=self.counts[ECN.ECT_1],
            ce=self.counts[ECN.CE],
            not_ect=self.counts[ECN.NOT_ECT],
            lost=max(0, expected - self.received),
            highest_seq=self.highest_seq or 0,
            report_seq=self._report_seq,
        )
        addr, port = self._sender
        self.socket.send(addr, port, feedback.encode(), ecn=ECN.NOT_ECT)
        self._schedule_feedback()

    def stop(self) -> None:
        """Stop feedback and release the port."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.socket.close()


@dataclass
class SenderStats:
    """What the sender knows at the end of a session."""

    sent: int = 0
    ect_sent: int = 0
    feedback_received: int = 0
    ecn_state: str = ECN_PROBING
    final_rate: float = 0.0
    observed_loss: int = 0
    observed_ce: int = 0
    rate_history: list[float] = field(default_factory=list)


class RTPSender:
    """Paced media sender with RFC 6679-style ECN validation."""

    def __init__(
        self,
        host: Host,
        dst_addr: int,
        dst_port: int,
        controller: NADAController | None = None,
        packet_bytes: int = 160,
        ssrc: int = 0x5353_5243,
        validation_timeout: float = 0.5,
    ) -> None:
        self.host = host
        self.dst_addr = dst_addr
        self.dst_port = dst_port
        self.controller = controller if controller is not None else NADAController()
        self.packet_bytes = packet_bytes
        self.ssrc = ssrc
        self.validation_timeout = validation_timeout
        self.socket = host.udp_bind(None, self._on_datagram)
        self.ecn_state = ECN_PROBING
        self.stats = SenderStats()
        self._sequence = 0
        self._last_feedback: ECNFeedback | None = None
        self._send_timer = None
        self._stopped = False

    # ------------------------------------------------------------------
    # Media transmission
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin paced sending (call once; then run the scheduler)."""
        # If ECT-marked probing media is blackholed the receiver never
        # learns our address and no feedback can arrive, so validation
        # must also fail closed on a sender-side timer (RFC 6679 §7.2's
        # "fail to negotiate" path).
        self.host.network.scheduler.schedule(
            self.validation_timeout, self._on_validation_timeout
        )
        self._send_next()

    def _on_validation_timeout(self) -> None:
        if not self._stopped and self.ecn_state == ECN_PROBING:
            self.ecn_state = ECN_DISABLED

    def stop(self) -> None:
        self._stopped = True
        if self._send_timer is not None:
            self._send_timer.cancel()
            self._send_timer = None
        self.stats.ecn_state = self.ecn_state
        self.stats.final_rate = self.controller.rate
        self.socket.close()

    def _send_next(self) -> None:
        if self._stopped:
            return
        clock = self.host.network.scheduler.clock
        mark = ECN.ECT_0 if self.ecn_state in (ECN_PROBING, ECN_ACTIVE) else ECN.NOT_ECT
        rtp = RTPPacket(
            payload_type=MEDIA_PAYLOAD_TYPE,
            sequence=self._sequence & 0xFFFF,
            timestamp=int(clock.now * RTP_CLOCK_HZ),
            ssrc=self.ssrc,
            payload=bytes(self.packet_bytes),
        )
        self._sequence += 1
        self.stats.sent += 1
        if mark is ECN.ECT_0:
            self.stats.ect_sent += 1
        self.socket.send(self.dst_addr, self.dst_port, rtp.encode(), ecn=mark)
        gap = (self.packet_bytes + 40) * 8 / self.controller.rate
        self._send_timer = self.host.network.scheduler.schedule(gap, self._send_next)

    # ------------------------------------------------------------------
    # Feedback processing
    # ------------------------------------------------------------------
    def _on_datagram(self, datagram: UDPDatagram, packet: IPv4Packet, now: float) -> None:
        try:
            feedback = ECNFeedback.decode(datagram.payload)
        except CodecError:
            return
        if feedback.ssrc != self.ssrc:
            return
        self.stats.feedback_received += 1
        self._validate_ecn(feedback)
        self._drive_controller(feedback)
        self._last_feedback = feedback

    def _validate_ecn(self, feedback: ECNFeedback) -> None:
        """RFC 6679 initial verification of ECN capability."""
        if self.ecn_state != ECN_PROBING:
            return
        if feedback.ect_delivered > 0:
            self.ecn_state = ECN_ACTIVE
        elif feedback.received_total > 0:
            # Packets arrive but the marks do not: a bleacher on path.
            self.ecn_state = ECN_DISABLED
        elif feedback.report_seq >= 3:
            # Repeated reports with nothing received: ECT-marked media
            # is being dropped; fall back to not-ECT (the paper's
            # firewalled-destination case).
            self.ecn_state = ECN_DISABLED

    def _drive_controller(self, feedback: ECNFeedback) -> None:
        previous = self._last_feedback
        delta_received = feedback.received_total - (
            previous.received_total if previous else 0
        )
        delta_ce = feedback.ce - (previous.ce if previous else 0)
        delta_lost = feedback.lost - (previous.lost if previous else 0)
        delta_lost = max(delta_lost, 0)
        window = max(delta_received + delta_lost, 1)
        loss_ratio = min(delta_lost / window, 1.0)
        mark_ratio = min(max(delta_ce, 0) / window, 1.0)
        self.stats.observed_loss += delta_lost
        self.stats.observed_ce += max(delta_ce, 0)
        self.controller.update(0.0, loss_ratio, mark_ratio)
        self.stats.rate_history.append(self.controller.rate)


def run_media_session(
    sender_host: Host,
    receiver_host: Host,
    receiver_port: int,
    duration: float,
    controller: NADAController | None = None,
) -> tuple[SenderStats, RTPReceiver]:
    """Run a one-way media session for ``duration`` simulated seconds."""
    receiver = RTPReceiver(receiver_host, receiver_port)
    sender = RTPSender(sender_host, receiver_host.addr, receiver_port, controller)
    scheduler = sender_host.network.scheduler
    sender.start()
    scheduler.run_until(scheduler.now + duration)
    sender.stop()
    receiver.stop()
    scheduler.run()
    return sender.stats, receiver


def _seq_newer(candidate: int, reference: int) -> bool:
    """RFC 3550 16-bit sequence comparison with wraparound."""
    return ((candidate - reference) & 0xFFFF) < 0x8000 and candidate != reference
