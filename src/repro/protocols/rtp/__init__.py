"""RTP over UDP with RFC 6679-style ECN feedback and a NADA controller.

The paper's motivating application (§1-2): interactive media that
negotiates ECN at session setup, validates that ECT-marked UDP
actually arrives, and feeds CE marks into congestion control.
"""

from .nada import LOSS_PENALTY_MS, MARK_PENALTY_MS, NADAController
from .packet import ECNFeedback, RTPPacket, RTP_HEADER_LEN
from .session import (
    ECN_ACTIVE,
    ECN_DISABLED,
    ECN_PROBING,
    RTPReceiver,
    RTPSender,
    SenderStats,
    run_media_session,
)

__all__ = [
    "ECNFeedback",
    "ECN_ACTIVE",
    "ECN_DISABLED",
    "ECN_PROBING",
    "LOSS_PENALTY_MS",
    "MARK_PENALTY_MS",
    "NADAController",
    "RTPPacket",
    "RTPReceiver",
    "RTPSender",
    "RTP_HEADER_LEN",
    "SenderStats",
    "run_media_session",
]
