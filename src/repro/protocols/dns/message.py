"""DNS message codec (RFC 1035 subset: A queries and responses).

The discovery phase of the study is a script doing repeated DNS
lookups of ``pool.ntp.org`` and its sub-domains; this codec implements
the wire format those lookups use, including name compression pointers
in answers (both for realism and because compression bugs are a classic
source of measurement-tool breakage worth testing against).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ...netsim.errors import CodecError

DNS_PORT = 53

QTYPE_A = 1
QCLASS_IN = 1

FLAG_QR = 0x8000
FLAG_AA = 0x0400
FLAG_RD = 0x0100
FLAG_RA = 0x0080

RCODE_NOERROR = 0
RCODE_NXDOMAIN = 3

_HEADER = struct.Struct("!HHHHHH")
MAX_LABEL = 63
MAX_NAME = 255


def encode_name(name: str, offsets: dict[str, int] | None = None, base: int = 0) -> bytes:
    """Encode a domain name, optionally using compression pointers.

    ``offsets`` maps already-encoded suffixes to their message offset;
    ``base`` is where this name will start in the message.  The dict is
    updated with new suffix positions.
    """
    name = name.rstrip(".").lower()
    if len(name) > MAX_NAME:
        raise CodecError(f"name too long: {name!r}")
    out = bytearray()
    labels = name.split(".") if name else []
    for index in range(len(labels)):
        suffix = ".".join(labels[index:])
        if offsets is not None and suffix in offsets:
            pointer = offsets[suffix]
            out += struct.pack("!H", 0xC000 | pointer)
            return bytes(out)
        if offsets is not None:
            position = base + len(out)
            if position < 0x4000:
                offsets[suffix] = position
        label = labels[index].encode("ascii")
        if not label or len(label) > MAX_LABEL:
            raise CodecError(f"bad label in {name!r}")
        out.append(len(label))
        out += label
    out.append(0)
    return bytes(out)


def decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a (possibly compressed) name; returns (name, next offset)."""
    labels: list[str] = []
    jumps = 0
    next_offset: int | None = None
    while True:
        if offset >= len(data):
            raise CodecError("name runs past end of message")
        length = data[offset]
        if length & 0xC0 == 0xC0:
            if offset + 1 >= len(data):
                raise CodecError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if next_offset is None:
                next_offset = offset + 2
            jumps += 1
            if jumps > 32:
                raise CodecError("compression pointer loop")
            offset = pointer
            continue
        if length & 0xC0:
            raise CodecError(f"reserved label type: {length:#x}")
        offset += 1
        if length == 0:
            break
        if offset + length > len(data):
            raise CodecError("label runs past end of message")
        labels.append(data[offset : offset + length].decode("ascii"))
        offset += length
    return ".".join(labels), (next_offset if next_offset is not None else offset)


@dataclass
class Question:
    """One entry of the question section."""

    qname: str
    qtype: int = QTYPE_A
    qclass: int = QCLASS_IN


@dataclass
class ResourceRecord:
    """One answer record (A records carry a 32-bit address in rdata)."""

    name: str
    rtype: int
    rclass: int
    ttl: int
    address: int | None = None  # for A records

    @property
    def rdata(self) -> bytes:
        if self.rtype == QTYPE_A:
            if self.address is None:
                raise CodecError("A record without address")
            return struct.pack("!I", self.address)
        raise CodecError(f"unsupported rtype {self.rtype}")


@dataclass
class DNSMessage:
    """A DNS query or response."""

    ident: int
    flags: int = FLAG_RD
    questions: list[Question] = field(default_factory=list)
    answers: list[ResourceRecord] = field(default_factory=list)

    @property
    def is_response(self) -> bool:
        return bool(self.flags & FLAG_QR)

    @property
    def rcode(self) -> int:
        return self.flags & 0x000F

    @classmethod
    def query(cls, ident: int, qname: str, qtype: int = QTYPE_A) -> "DNSMessage":
        """Build a recursive A query."""
        return cls(ident=ident, flags=FLAG_RD, questions=[Question(qname, qtype)])

    @classmethod
    def response_to(
        cls,
        query: "DNSMessage",
        answers: list[ResourceRecord],
        rcode: int = RCODE_NOERROR,
    ) -> "DNSMessage":
        """Build an authoritative response echoing the query's question."""
        flags = FLAG_QR | FLAG_AA | FLAG_RA | (query.flags & FLAG_RD) | (rcode & 0xF)
        return cls(
            ident=query.ident,
            flags=flags,
            questions=list(query.questions),
            answers=answers,
        )

    def encode(self) -> bytes:
        """Serialise with name compression across questions and answers."""
        out = bytearray(
            _HEADER.pack(
                self.ident,
                self.flags,
                len(self.questions),
                len(self.answers),
                0,
                0,
            )
        )
        offsets: dict[str, int] = {}
        for question in self.questions:
            out += encode_name(question.qname, offsets, len(out))
            out += struct.pack("!HH", question.qtype, question.qclass)
        for record in self.answers:
            out += encode_name(record.name, offsets, len(out))
            rdata = record.rdata
            out += struct.pack("!HHIH", record.rtype, record.rclass, record.ttl, len(rdata))
            out += rdata
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "DNSMessage":
        """Parse wire bytes (A answers only; other rtypes are skipped)."""
        if len(data) < _HEADER.size:
            raise CodecError(f"DNS header truncated: {len(data)} bytes")
        ident, flags, qdcount, ancount, _ns, _ar = _HEADER.unpack_from(data)
        offset = _HEADER.size
        questions = []
        for _ in range(qdcount):
            qname, offset = decode_name(data, offset)
            if offset + 4 > len(data):
                raise CodecError("question section truncated")
            qtype, qclass = struct.unpack_from("!HH", data, offset)
            offset += 4
            questions.append(Question(qname, qtype, qclass))
        answers = []
        for _ in range(ancount):
            name, offset = decode_name(data, offset)
            if offset + 10 > len(data):
                raise CodecError("answer section truncated")
            rtype, rclass, ttl, rdlength = struct.unpack_from("!HHIH", data, offset)
            offset += 10
            if offset + rdlength > len(data):
                raise CodecError("rdata truncated")
            rdata = data[offset : offset + rdlength]
            offset += rdlength
            address = None
            if rtype == QTYPE_A:
                if rdlength != 4:
                    raise CodecError(f"bad A rdata length {rdlength}")
                address = struct.unpack("!I", rdata)[0]
            answers.append(ResourceRecord(name, rtype, rclass, ttl, address))
        return cls(ident=ident, flags=flags, questions=questions, answers=answers)
