"""Stub resolver used by the discovery script and measurement hosts.

Queries can be sent with any ECN marking: §3 of the paper notes DNS
servers "could also be used" as the study population, and the
DNS-variant example probes resolvers with not-ECT and ECT(0) marked
queries exactly as the NTP study does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...netsim.ecn import ECN
from ...netsim.engine import Event
from ...netsim.errors import CodecError
from ...netsim.host import Host
from ...netsim.ipv4 import IPv4Packet
from ...netsim.udp import UDPDatagram
from .message import DNS_PORT, DNSMessage, QTYPE_A


@dataclass
class LookupResult:
    """Outcome of one A lookup."""

    qname: str
    addresses: list[int]
    responded: bool
    rcode: int | None = None


LookupCallback = Callable[[LookupResult], None]


class Resolver:
    """An asynchronous stub resolver bound to one upstream server."""

    def __init__(
        self,
        host: Host,
        server_addr: int,
        timeout: float = 2.0,
        retries: int = 2,
        ecn: ECN = ECN.NOT_ECT,
    ) -> None:
        self.host = host
        self.server_addr = server_addr
        self.timeout = timeout
        self.retries = retries
        self.ecn = ecn
        self._next_ident = 1

    def lookup(self, qname: str, callback: LookupCallback) -> None:
        """Resolve ``qname`` (A records); the callback always fires."""
        _PendingLookup(self, qname, callback).start()


class _PendingLookup:
    """One lookup with retry; self-contained socket + timer lifecycle."""

    def __init__(self, resolver: Resolver, qname: str, callback: LookupCallback) -> None:
        self.resolver = resolver
        self.qname = qname
        self.callback = callback
        self.attempts = 0
        self.finished = False
        self._timer: Event | None = None
        self.ident = resolver._next_ident
        resolver._next_ident = (resolver._next_ident + 1) & 0xFFFF or 1
        self._socket = resolver.host.udp_bind(None, self._on_datagram)

    def start(self) -> None:
        self._send()

    def _send(self) -> None:
        self.attempts += 1
        query = DNSMessage.query(self.ident, self.qname, QTYPE_A)
        self._socket.send(
            self.resolver.server_addr,
            DNS_PORT,
            query.encode(),
            ecn=self.resolver.ecn,
        )
        self._timer = self.resolver.host.network.scheduler.schedule(
            self.resolver.timeout, self._on_timeout
        )

    def _on_timeout(self) -> None:
        self._timer = None
        if self.finished:
            return
        if self.attempts > self.resolver.retries:
            self._finish(LookupResult(self.qname, [], responded=False))
            return
        self._send()

    def _on_datagram(self, datagram: UDPDatagram, packet: IPv4Packet, now: float) -> None:
        if self.finished or packet.src != self.resolver.server_addr:
            return
        try:
            message = DNSMessage.decode(datagram.payload)
        except CodecError:
            return
        if not message.is_response or message.ident != self.ident:
            return
        addresses = [
            record.address
            for record in message.answers
            if record.rtype == QTYPE_A and record.address is not None
        ]
        self._finish(
            LookupResult(
                self.qname,
                addresses,
                responded=True,
                rcode=message.rcode,
            )
        )

    def _finish(self, result: LookupResult) -> None:
        self.finished = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._socket.close()
        self.callback(result)
