"""An authoritative DNS server with round-robin zones.

Mirrors the pool.ntp.org behaviour the discovery script depends on:
each query for a pool zone returns a small rotating window of that
zone's members, "a different answer every few minutes", so repeated
queries over simulated weeks enumerate the pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...netsim.errors import CodecError
from ...netsim.host import Host
from ...netsim.ipv4 import IPv4Packet
from ...netsim.udp import UDPDatagram
from .message import (
    DNS_PORT,
    DNSMessage,
    QTYPE_A,
    RCODE_NXDOMAIN,
    ResourceRecord,
)

#: pool.ntp.org answers four A records per query.
DEFAULT_WINDOW = 4
DEFAULT_TTL = 150


@dataclass
class RoundRobinZone:
    """A zone whose answers rotate through its address list."""

    name: str
    addresses: list[int]
    window: int = DEFAULT_WINDOW
    ttl: int = DEFAULT_TTL
    _cursor: int = field(default=0, repr=False)

    def next_answers(self) -> list[int]:
        """The next window of addresses (wrapping, rotating)."""
        if not self.addresses:
            return []
        count = min(self.window, len(self.addresses))
        selected = [
            self.addresses[(self._cursor + index) % len(self.addresses)]
            for index in range(count)
        ]
        self._cursor = (self._cursor + count) % len(self.addresses)
        return selected

    def set_addresses(self, addresses: list[int]) -> None:
        """Replace the membership (pool churn)."""
        self.addresses = list(addresses)
        self._cursor = 0


class DNSServer:
    """An authoritative resolver bound to UDP 53 on its host."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.zones: dict[str, RoundRobinZone] = {}
        self.queries_served = 0
        self._socket = host.udp_bind(DNS_PORT, self._on_datagram)

    def add_zone(self, zone: RoundRobinZone) -> RoundRobinZone:
        """Register a zone (name is normalised to lowercase)."""
        self.zones[zone.name.lower().rstrip(".")] = zone
        return zone

    def zone(self, name: str) -> RoundRobinZone | None:
        return self.zones.get(name.lower().rstrip("."))

    def _on_datagram(self, datagram: UDPDatagram, packet: IPv4Packet, now: float) -> None:
        try:
            query = DNSMessage.decode(datagram.payload)
        except CodecError:
            return
        if query.is_response or not query.questions:
            return
        self.queries_served += 1
        question = query.questions[0]
        zone = self.zones.get(question.qname.lower().rstrip("."))
        if zone is None or question.qtype != QTYPE_A:
            response = DNSMessage.response_to(query, [], rcode=RCODE_NXDOMAIN)
        else:
            answers = [
                ResourceRecord(
                    name=question.qname,
                    rtype=QTYPE_A,
                    rclass=1,
                    ttl=zone.ttl,
                    address=addr,
                )
                for addr in zone.next_answers()
            ]
            response = DNSMessage.response_to(query, answers)
        self._socket.send(packet.src, datagram.src_port, response.encode())
