"""DNS: message codec, round-robin authoritative server, stub resolver."""

from .message import (
    DNS_PORT,
    DNSMessage,
    QCLASS_IN,
    QTYPE_A,
    Question,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    ResourceRecord,
    decode_name,
    encode_name,
)
from .resolver import LookupResult, Resolver
from .server import DEFAULT_WINDOW, DNSServer, RoundRobinZone

__all__ = [
    "DEFAULT_WINDOW",
    "DNSMessage",
    "DNSServer",
    "DNS_PORT",
    "LookupResult",
    "QCLASS_IN",
    "QTYPE_A",
    "Question",
    "RCODE_NOERROR",
    "RCODE_NXDOMAIN",
    "Resolver",
    "ResourceRecord",
    "RoundRobinZone",
    "decode_name",
    "encode_name",
]
