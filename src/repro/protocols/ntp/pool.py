"""The NTP server pool: membership, zones, and churn.

Models pool.ntp.org as the paper describes it: a volunteer-run virtual
cluster reached through round-robin DNS under ``pool.ntp.org`` plus
country- and region-specific sub-domains.  Membership changes over
time ("servers leaving the NTP pool between the two sets of
measurements" is the paper's explanation for lower reachability in the
July/August batch), which :meth:`NTPPool.apply_churn` reproduces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

POOL_DOMAIN = "pool.ntp.org"


@dataclass
class PoolMember:
    """One volunteer server in the pool."""

    hostname: str
    addr: int
    country_code: str
    region: str
    #: Whether the pool's monitoring currently lists the server.
    in_pool: bool = True

    @property
    def zones(self) -> tuple[str, ...]:
        """DNS zones this member appears in (global, region, country)."""
        return (
            POOL_DOMAIN,
            f"{self.region.lower()}.{POOL_DOMAIN}",
            f"{self.country_code.lower()}.{POOL_DOMAIN}",
        )


class NTPPool:
    """Registry of pool members and their DNS zone membership."""

    def __init__(self) -> None:
        self._members: dict[int, PoolMember] = {}

    def add(self, member: PoolMember) -> PoolMember:
        """Register a member (keyed by address)."""
        if member.addr in self._members:
            raise ValueError(f"duplicate pool member address {member.addr}")
        self._members[member.addr] = member
        return member

    def __len__(self) -> int:
        return len(self._members)

    def members(self, include_departed: bool = False) -> list[PoolMember]:
        """All members currently in the pool (or all ever, on request)."""
        return [
            member
            for member in self._members.values()
            if include_departed or member.in_pool
        ]

    def member_by_addr(self, addr: int) -> PoolMember | None:
        """Look up a member by address."""
        return self._members.get(addr)

    def zone_names(self) -> list[str]:
        """Every DNS zone with at least one current member.

        The global zone is first, then regional and country zones in
        sorted order — the order the discovery script walks them in.
        """
        zones: set[str] = set()
        for member in self.members():
            zones.update(member.zones)
        ordered = sorted(zones)
        if POOL_DOMAIN in zones:
            ordered.remove(POOL_DOMAIN)
            ordered.insert(0, POOL_DOMAIN)
        return ordered

    def zone_members(self, zone: str) -> list[PoolMember]:
        """Current members of one zone, in stable (address) order."""
        return sorted(
            (m for m in self.members() if zone in m.zones),
            key=lambda m: m.addr,
        )

    def apply_churn(self, rng: random.Random, leave_probability: float) -> list[PoolMember]:
        """Remove a random fraction of members from the pool.

        Returns the members that left.  Their hosts keep running (a
        volunteer dropping out of the pool does not necessarily switch
        the machine off), so probes against previously discovered
        addresses may still succeed — or not, matching the paper's
        observation of reduced reachability in the later batch.
        """
        departed = []
        for member in self.members():
            if rng.random() < leave_probability:
                member.in_pool = False
                departed.append(member)
        return departed
