"""NTP: packet codec, pool server, measurement client, pool registry."""

from .client import (
    DEFAULT_ATTEMPTS,
    DEFAULT_TIMEOUT,
    NTPQuery,
    NTPQueryResult,
    query_server,
)
from .packet import (
    MODE_CLIENT,
    MODE_SERVER,
    NTP_PORT,
    NTPPacket,
    from_ntp_timestamp,
    to_ntp_timestamp,
)
from .pool import NTPPool, POOL_DOMAIN, PoolMember
from .server import NTPServer

__all__ = [
    "DEFAULT_ATTEMPTS",
    "DEFAULT_TIMEOUT",
    "MODE_CLIENT",
    "MODE_SERVER",
    "NTPPacket",
    "NTPPool",
    "NTPQuery",
    "NTPQueryResult",
    "NTPServer",
    "NTP_PORT",
    "POOL_DOMAIN",
    "PoolMember",
    "from_ntp_timestamp",
    "query_server",
    "to_ntp_timestamp",
]
