"""The custom NTP client used by the measurement application.

Implements the paper's probe policy exactly: the request rides in a
UDP packet whose ECN field is set by the caller; if no response
arrives within one second the request is retransmitted, up to five
times in total, before the server is declared unreachable (§3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...netsim.ecn import ECN
from ...netsim.engine import Event
from ...netsim.errors import CodecError
from ...netsim.host import Host
from ...netsim.ipv4 import IPv4Packet
from ...netsim.udp import UDPDatagram
from .packet import NTPPacket, NTP_PORT

#: The paper's retry policy.
DEFAULT_ATTEMPTS = 5
DEFAULT_TIMEOUT = 1.0


@dataclass
class NTPQueryResult:
    """Outcome of one NTP reachability query."""

    server_addr: int
    ecn: ECN
    responded: bool
    attempts: int
    rtt: float | None = None
    response: NTPPacket | None = None
    response_packet: IPv4Packet | None = None


#: Completion callback: receives the result when the query resolves.
QueryCallback = Callable[[NTPQueryResult], None]


class NTPQuery:
    """One in-flight reachability query (request + retransmissions)."""

    def __init__(
        self,
        host: Host,
        server_addr: int,
        ecn: ECN,
        callback: QueryCallback,
        attempts: int = DEFAULT_ATTEMPTS,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        self.host = host
        self.server_addr = server_addr
        self.ecn = ecn
        self.callback = callback
        self.max_attempts = attempts
        self.timeout = timeout
        self.attempts_made = 0
        self.finished = False
        self._timer: Event | None = None
        self._sent_at = 0.0
        self._request: NTPPacket | None = None
        self._socket = host.udp_bind(None, self._on_datagram)

    def start(self) -> None:
        """Send the first request."""
        self._send_attempt()

    def _send_attempt(self) -> None:
        scheduler = self.host.network.scheduler
        self.attempts_made += 1
        self._sent_at = scheduler.now
        self._request = NTPPacket.client_request(scheduler.clock.ntp_time())
        self._socket.send(
            self.server_addr,
            NTP_PORT,
            self._request.encode(),
            ecn=self.ecn,
            ident=self.attempts_made,
        )
        self._timer = scheduler.schedule(self.timeout, self._on_timeout)

    def _on_timeout(self) -> None:
        self._timer = None
        if self.finished:
            return
        if self.attempts_made >= self.max_attempts:
            self._finish(
                NTPQueryResult(
                    server_addr=self.server_addr,
                    ecn=self.ecn,
                    responded=False,
                    attempts=self.attempts_made,
                )
            )
            return
        self._send_attempt()

    def _on_datagram(self, datagram: UDPDatagram, packet: IPv4Packet, now: float) -> None:
        if self.finished or packet.src != self.server_addr:
            return
        try:
            response = NTPPacket.decode(datagram.payload)
        except CodecError:
            return
        if self._request is None or not response.is_valid_response_to(self._request):
            return
        self._finish(
            NTPQueryResult(
                server_addr=self.server_addr,
                ecn=self.ecn,
                responded=True,
                attempts=self.attempts_made,
                rtt=now - self._sent_at,
                response=response,
                response_packet=packet,
            )
        )

    def _finish(self, result: NTPQueryResult) -> None:
        self.finished = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._socket.close()
        self.callback(result)


def query_server(
    host: Host,
    server_addr: int,
    ecn: ECN,
    callback: QueryCallback,
    attempts: int = DEFAULT_ATTEMPTS,
    timeout: float = DEFAULT_TIMEOUT,
) -> NTPQuery:
    """Start an NTP reachability query; the callback fires on completion."""
    query = NTPQuery(host, server_addr, ecn, callback, attempts, timeout)
    query.start()
    return query
