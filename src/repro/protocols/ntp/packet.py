"""NTP packet codec (the RFC 5905 SNTP subset the study exercises).

The measurement application implements "a custom NTP client": it sends
a mode-3 (client) request and records whether a mode-4 (server)
response returns.  The 48-byte header is encoded byte-exactly,
timestamps in NTP's 32.32 fixed-point era format, so captures and
quotations are realistic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ...netsim.errors import CodecError

NTP_PORT = 123
PACKET_LEN = 48

MODE_CLIENT = 3
MODE_SERVER = 4

LEAP_NO_WARNING = 0
LEAP_UNSYNCHRONISED = 3

VERSION = 4

_FORMAT = struct.Struct("!BBbbIIIQQQQ")

#: Scale factor for 32.32 fixed-point timestamps.
_FRAC = 1 << 32


def to_ntp_timestamp(seconds: float) -> int:
    """Convert seconds-since-NTP-epoch to 64-bit 32.32 fixed point."""
    if seconds < 0:
        raise CodecError(f"negative NTP time: {seconds!r}")
    return int(seconds * _FRAC) & 0xFFFFFFFFFFFFFFFF


def from_ntp_timestamp(value: int) -> float:
    """Convert a 64-bit 32.32 fixed-point timestamp to float seconds."""
    return value / _FRAC


@dataclass
class NTPPacket:
    """A parsed NTP packet (SNTP fields only; no extensions/MACs)."""

    mode: int = MODE_CLIENT
    version: int = VERSION
    leap: int = LEAP_NO_WARNING
    stratum: int = 0
    poll: int = 0
    precision: int = -20
    root_delay: int = 0
    root_dispersion: int = 0
    reference_id: int = 0
    reference_ts: int = 0
    origin_ts: int = 0
    receive_ts: int = 0
    transmit_ts: int = 0

    def encode(self) -> bytes:
        """Serialise to the 48-byte wire format."""
        if not 0 <= self.mode <= 7:
            raise CodecError(f"NTP mode out of range: {self.mode}")
        if not 0 <= self.version <= 7:
            raise CodecError(f"NTP version out of range: {self.version}")
        li_vn_mode = (self.leap << 6) | (self.version << 3) | self.mode
        return _FORMAT.pack(
            li_vn_mode,
            self.stratum,
            self.poll,
            self.precision,
            self.root_delay & 0xFFFFFFFF,
            self.root_dispersion & 0xFFFFFFFF,
            self.reference_id & 0xFFFFFFFF,
            self.reference_ts,
            self.origin_ts,
            self.receive_ts,
            self.transmit_ts,
        )

    @classmethod
    def decode(cls, data: bytes) -> "NTPPacket":
        """Parse the 48-byte wire format (extra trailing bytes ignored)."""
        if len(data) < PACKET_LEN:
            raise CodecError(f"NTP packet truncated: {len(data)} bytes")
        (
            li_vn_mode,
            stratum,
            poll,
            precision,
            root_delay,
            root_dispersion,
            reference_id,
            reference_ts,
            origin_ts,
            receive_ts,
            transmit_ts,
        ) = _FORMAT.unpack_from(data)
        return cls(
            mode=li_vn_mode & 0x07,
            version=(li_vn_mode >> 3) & 0x07,
            leap=(li_vn_mode >> 6) & 0x03,
            stratum=stratum,
            poll=poll,
            precision=precision,
            root_delay=root_delay,
            root_dispersion=root_dispersion,
            reference_id=reference_id,
            reference_ts=reference_ts,
            origin_ts=origin_ts,
            receive_ts=receive_ts,
            transmit_ts=transmit_ts,
        )

    @classmethod
    def client_request(cls, transmit_time_ntp: float) -> "NTPPacket":
        """Build the mode-3 request the measurement client sends."""
        return cls(
            mode=MODE_CLIENT,
            leap=LEAP_UNSYNCHRONISED,
            transmit_ts=to_ntp_timestamp(transmit_time_ntp),
        )

    def is_valid_response_to(self, request: "NTPPacket") -> bool:
        """SNTP response validation: mode 4 echoing our transmit time."""
        return (
            self.mode == MODE_SERVER
            and self.origin_ts == request.transmit_ts
            and self.transmit_ts != 0
        )

    def __repr__(self) -> str:
        return (
            f"NTPPacket(mode={self.mode}, v{self.version}, "
            f"stratum={self.stratum})"
        )
