"""NTP pool servers.

Each simulated pool host runs one of these on UDP port 123.  The pool
is volunteer-operated — the paper leans on this to explain both the
~10 % of servers unreachable in any trace and the drop in reachability
between its April/May and July/August measurement batches — so a
server can be marked offline (it stays bound but stops answering,
exactly like a dead NTP daemon behind a live IP).
"""

from __future__ import annotations

from ...netsim.ecn import ECN
from ...netsim.errors import CodecError
from ...netsim.host import Host
from ...netsim.ipv4 import IPv4Packet
from ...netsim.udp import UDPDatagram
from .packet import MODE_CLIENT, NTPPacket, NTP_PORT, to_ntp_timestamp


class NTPServer:
    """A stratum-2-ish pool server bound to UDP 123."""

    def __init__(self, host: Host, stratum: int = 2, reference_id: int = 0x47505300) -> None:
        self.host = host
        self.stratum = stratum
        self.reference_id = reference_id
        self.online = True
        self.requests_served = 0
        self._socket = host.udp_bind(NTP_PORT, self._on_datagram)

    def set_online(self, online: bool) -> None:
        """Toggle daemon availability (pool churn between batches)."""
        self.online = online

    def _on_datagram(self, datagram: UDPDatagram, packet: IPv4Packet, now: float) -> None:
        if not self.online:
            return
        try:
            request = NTPPacket.decode(datagram.payload)
        except CodecError:
            return
        if request.mode != MODE_CLIENT:
            return
        self.requests_served += 1
        clock = self.host.network.scheduler.clock
        server_time = to_ntp_timestamp(clock.ntp_time())
        response = NTPPacket(
            mode=4,
            stratum=self.stratum,
            poll=request.poll,
            precision=-23,
            reference_id=self.reference_id,
            reference_ts=server_time,
            origin_ts=request.transmit_ts,
            receive_ts=server_time,
            transmit_ts=server_time,
        )
        # Responses are sent not-ECT: NTP does not use ECN in normal
        # operation (the paper probes only the client→server direction
        # for this reason — §3).
        self._socket.send(
            packet.src,
            datagram.src_port,
            response.encode(),
            ecn=ECN.NOT_ECT,
        )

    def __repr__(self) -> str:
        state = "online" if self.online else "offline"
        return f"NTPServer({self.host.hostname!r}, stratum={self.stratum}, {state})"
