"""One-object façade over the whole reproduction pipeline.

:class:`Study` wires together the synthetic Internet, discovery, the
measurement application, both campaigns, and every analysis, so that
downstream code gets the paper in three lines::

    from repro.study import Study

    study = Study.run(scale=0.1, seed=7)
    print(study.report())

A study can be archived with :meth:`save` and re-hydrated with
:meth:`load` (the world is rebuilt deterministically from the saved
manifest, exactly as the ``ecnudp report`` command does).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from .core.analysis.correlation import CorrelationTable, analyze_correlation
from .core.analysis.differential import DifferentialAnalysis
from .core.analysis.geographic import GeographicDistribution, analyze_geography
from .core.analysis.pathanalysis import PathAnalysis, analyze_campaign
from .core.analysis.quic_ecn import QUICECNSummary, analyze_quic_ecn
from .core.analysis.reachability import ReachabilitySummary, analyze_reachability
from .core.analysis.regional import RegionalReachability, analyze_regional
from .core.analysis.tcp_ecn import TCPECNSummary, analyze_tcp_ecn
from .core.analysis.uncertainty import HeadlineIntervals, headline_intervals
from .core.analysis.validation import InferenceQuality, validate_study
from .core.discovery import PoolDiscovery
from .core.measurement import MeasurementApplication
from .core.traces import TraceSet, TracerouteCampaign
from .ioutil import atomic_write_text
from .obs import (
    DETAIL_EPOCH,
    EventLog,
    MetricsRegistry,
    PathTracer,
    RunTelemetry,
    SpanRecorder,
    canonical_events,
    export_chrome_trace,
    render_events_jsonl,
)
from .reporting.export import (
    export_figure_data,
    export_metrics_json,
    export_spans_json,
    export_summary_json,
    export_telemetry_json,
    export_traces_csv,
)
from .reporting.report import full_report
from .scenario.internet import SyntheticInternet
from .scenario.timeline import EpochDrift, drifted_params


@dataclass
class Study:
    """A completed measurement study plus lazily computed analyses."""

    world: SyntheticInternet
    traces: TraceSet
    campaign: TracerouteCampaign
    scale: float
    seed: int
    #: Merged metric snapshot when the study ran with observation on
    #: (``None`` otherwise — archival output stays byte-identical).
    metrics: dict | None = None
    #: Run telemetry (shard timing, retries) when observation was on.
    telemetry: RunTelemetry | None = None
    #: The packet tracer used during the run, if any.
    tracer: PathTracer | None = None
    #: Assembled span list (study root first) when span recording was
    #: on; canonically identical for any worker count.
    spans: list | None = None
    #: Structured event stream when event collection was on, ordered
    #: by ``(shard, seq)``; byte-identical for any worker count.
    events: list | None = None
    #: Longitudinal drift the world was built under (``None`` = the
    #: legacy undrifted world; archives stay byte-identical then).
    drift: EpochDrift | None = None
    _cache: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def run(
        cls,
        scale: float = 0.1,
        seed: int = 20150401,
        discover: bool = True,
        traceroutes: bool = True,
        workers: int = 0,
        progress=None,
        collect_metrics: bool = False,
        trace_filter: str | None = None,
        faults=None,
        chaos_seed: int = 0,
        record_spans: bool | str = False,
        collect_events: bool = False,
        event_log=None,
        obs_dir: str | Path | None = None,
        profile: bool = False,
        world: SyntheticInternet | None = None,
        targets: list[int] | None = None,
        pool=None,
        quic: bool = False,
        drift: EpochDrift | None = None,
    ) -> "Study":
        """Execute the full §3 methodology at the given scale.

        ``workers=0`` (the default) runs the campaign sequentially in
        this process; ``workers=N`` shards it across ``N`` worker
        processes via :mod:`repro.runner`.  Both paths produce
        bit-identical results — hermetic measurement epochs make every
        trace a pure function of ``(params, trace id)``.

        ``collect_metrics=True`` turns the :mod:`repro.obs` layer on
        for the measurement phase (never discovery, which runs once in
        the parent either way — so sequential counters equal the sum
        of shard counters).  ``trace_filter`` installs a
        :class:`~repro.obs.PathTracer` for matching packets; tracing
        records per-packet event streams that have no wire encoding,
        so it requires ``workers=0``.

        ``faults`` turns on the chaos layer (:mod:`repro.faults`): pass
        a chaos-profile name (``"light"`` / ``"default"`` / ``"heavy"``
        / ``"reroute"``) or a ready-made
        :class:`~repro.faults.FaultPlan`.  A named profile is expanded
        into a plan with :func:`~repro.faults.generate_fault_plan`
        seeded by ``chaos_seed``; either way the plan is a pure value,
        so sequential and sharded chaotic runs stay bit-identical.

        ``world`` reuses an existing synthetic Internet instead of
        building one — it must have been built from exactly
        ``params_for_scale(scale, seed)``.  Hermetic measurement epochs
        make worlds reusable across studies: a rerun against a cached
        world is bit-identical to one against a fresh build, **provided
        discovery is not rerun** (DNS pool rotation is stateful, so a
        second discovery sees a different rotation).  Callers reusing a
        world must therefore also pass ``targets`` captured from the
        first run's discovery; the study server caches the pair.
        ``pool`` runs a sharded study's shards on a shared
        :class:`~repro.runner.SharedWorkerPool` rather than an owned
        per-study executor (requires ``workers > 0``).

        ``collect_events=True`` turns on the structured event log
        (:mod:`repro.obs.events`): epoch starts and chaos
        installations land on :attr:`events`, ordered by
        ``(shard, seq)`` and byte-identical for any ``workers`` value,
        and :meth:`save` exports them as ``events.jsonl``.
        ``event_log`` is the live, wall-clock counterpart: a caller's
        :class:`~repro.obs.EventLog` (the study server's, typically)
        that the sharded runner narrates shard lifecycle into —
        dispatch, retries, gang recoveries.  It never joins the
        determinism contract and is ignored by sequential runs, which
        have no runner lifecycle to narrate.

        ``record_spans`` turns on the hierarchical span timeline
        (``True`` = epoch detail, or pass a
        :mod:`~repro.obs.spans` detail level); the assembled span list
        lands on :attr:`spans` and is canonically identical for any
        ``workers`` value.  ``obs_dir`` arms crash flight recorders
        (sharded runs dump ``flight-*.json`` there on worker death or
        runner recovery) and receives cProfile dumps when ``profile``
        is on.

        ``quic=True`` adds the fourth probe family: a QUIC-like
        connection per server performing RFC 9000 §13.4 ECN count
        validation after the paper's four measurements (see
        :attr:`quic_ecn` for the resulting analysis).  The probe runs
        after the legacy phases inside each epoch, so studies with
        ``quic=False`` remain byte-identical to pre-QUIC archives.

        ``drift`` builds the world from longitudinally drifted
        parameters (:mod:`repro.scenario.timeline`) — what one epoch
        of a campaign (:mod:`repro.campaign`) runs.  The drift is
        recorded in the archive manifest and rides into shard workers,
        so sharded and sequential drifted runs stay bit-identical and
        :meth:`load` rebuilds the same drifted world.  A ``world``
        passed alongside a drift must have been built from exactly
        ``drifted_params(scale, seed, drift)``.
        """
        span_detail: str | None = None
        if record_spans:
            span_detail = DETAIL_EPOCH if record_spans is True else record_spans
        if profile and obs_dir is None:
            raise ValueError("profile=True needs obs_dir to write profiles into")
        if pool is not None and workers <= 0:
            raise ValueError("pool= requires workers > 0 (sharded execution)")
        if world is None:
            world = SyntheticInternet(drifted_params(scale, seed, drift))
        fault_plan = None
        if faults is not None:
            from .faults import FaultPlan, generate_fault_plan

            if isinstance(faults, FaultPlan):
                fault_plan = faults
            else:
                fault_plan = generate_fault_plan(
                    world, profile=faults, chaos_seed=chaos_seed
                )
            if not fault_plan.events:
                fault_plan = None
        if targets is None and discover:
            report = PoolDiscovery(
                world.vantage_hosts["ugla-wired"],
                world.dns_addr,
                world.pool.zone_names(),
            ).run()
            targets = report.addresses
        if trace_filter is not None and workers > 0:
            raise ValueError(
                "packet tracing is sequential-only: trace_filter requires "
                "workers=0 (per-packet event streams are not shipped back "
                "from shard workers)"
            )
        metrics_snapshot: dict | None = None
        telemetry: RunTelemetry | None = None
        tracer: PathTracer | None = None
        span_list: list | None = None
        event_list: list | None = None
        if workers > 0:
            from .runner import run_study_parallel

            telemetry = RunTelemetry() if collect_metrics else None
            span_sink: list = []
            event_sink: list = []
            traces, campaign = run_study_parallel(
                scale=scale,
                seed=seed,
                workers=workers,
                targets=targets,
                world=world,
                traceroutes=traceroutes,
                progress=progress,
                fault_plan=fault_plan,
                telemetry=telemetry,
                span_detail=span_detail,
                span_sink=span_sink if span_detail is not None else None,
                event_sink=event_sink if collect_events else None,
                event_log=event_log,
                flight_dir=obs_dir,
                profile_dir=obs_dir if profile else None,
                pool=pool,
                quic=quic,
                drift=drift,
            )
            if span_detail is not None:
                span_list = span_sink
            if collect_events:
                event_list = event_sink
            if telemetry is not None:
                metrics_snapshot = telemetry.metrics
        else:
            registry = MetricsRegistry() if collect_metrics else None
            if trace_filter is not None:
                tracer = PathTracer(match=trace_filter)
            if registry is not None or tracer is not None:
                world.network.set_observability(registry, tracer)
            recorder = None
            if span_detail is not None:
                from .runner.shard import shard_context_map

                # The sequential recorder resolves every epoch through
                # the full (kind, vantage, batch) -> shard map, so it
                # mints the same span ids a worker fleet would.
                recorder = SpanRecorder(
                    detail=span_detail,
                    context_map=shard_context_map(
                        world.params.schedule, traceroutes=traceroutes
                    ),
                )
                world.set_span_recorder(recorder)
            event_log = None
            if collect_events:
                from .runner.shard import shard_context_map

                # Same context-map trick as the span recorder: the
                # sequential log mints the identical (shard, seq)
                # pairs a worker fleet would, so merged event streams
                # compare byte for byte.
                event_log = EventLog(
                    stamp_wall=False,
                    context_map=shard_context_map(
                        world.params.schedule, traceroutes=traceroutes
                    ),
                )
                world.set_event_log(event_log)
            if fault_plan is not None:
                # Installed after discovery, exactly as the parallel
                # path does (workers install the plan; the parent's
                # discovery never sees it).
                world.install_fault_plan(fault_plan)
            profiler = None
            if profile:
                import cProfile

                profiler = cProfile.Profile()
            started = time.perf_counter()
            if profiler is not None:
                profiler.enable()
            try:
                app = MeasurementApplication(world, targets=targets, quic=quic)
                traces = app.run_study(progress=progress)
                campaign = (
                    app.run_traceroutes(progress=progress)
                    if traceroutes
                    else TracerouteCampaign()
                )
            finally:
                if profiler is not None:
                    profiler.disable()
                if registry is not None or tracer is not None:
                    world.network.set_observability(None, None)
                if recorder is not None:
                    world.set_span_recorder(None)
                if event_log is not None:
                    world.set_event_log(None)
                if fault_plan is not None:
                    # Leave the retained world pristine, matching the
                    # parent-side world of a sharded run.
                    world.install_fault_plan(None)
            if recorder is not None:
                span_list = recorder.export()
            if event_log is not None:
                event_list = event_log.export()
            if profiler is not None:
                directory = Path(obs_dir)
                directory.mkdir(parents=True, exist_ok=True)
                profiler.dump_stats(directory / "profile-sequential.pstats")
            if registry is not None:
                metrics_snapshot = registry.snapshot()
                telemetry = RunTelemetry(
                    workers=0,
                    wall_seconds=time.perf_counter() - started,
                    metrics=metrics_snapshot,
                )
                if fault_plan is not None:
                    telemetry.chaos = fault_plan.summary()
        return cls(
            world=world,
            traces=traces,
            campaign=campaign,
            scale=scale,
            seed=seed,
            metrics=metrics_snapshot,
            telemetry=telemetry,
            tracer=tracer,
            spans=span_list,
            events=event_list,
            drift=drift,
        )

    # ------------------------------------------------------------------
    # Analyses (cached)
    # ------------------------------------------------------------------
    def _cached(self, key: str, build):
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    @property
    def geography(self) -> GeographicDistribution:
        return self._cached(
            "geo", lambda: analyze_geography(self.traces.server_addrs, self.world.geo)
        )

    @property
    def reachability(self) -> ReachabilitySummary:
        return self._cached("reach", lambda: analyze_reachability(self.traces))

    @property
    def tcp_ecn(self) -> TCPECNSummary:
        return self._cached("tcp", lambda: analyze_tcp_ecn(self.traces))

    @property
    def differential_plain_only(self) -> DifferentialAnalysis:
        return self._cached(
            "diff_a", lambda: DifferentialAnalysis(self.traces, "plain-only")
        )

    @property
    def differential_ect_only(self) -> DifferentialAnalysis:
        return self._cached(
            "diff_b", lambda: DifferentialAnalysis(self.traces, "ect-only")
        )

    @property
    def paths(self) -> PathAnalysis:
        return self._cached(
            "paths", lambda: analyze_campaign(self.campaign, self.world.noisy_as_map)
        )

    @property
    def correlation(self) -> CorrelationTable:
        return self._cached("corr", lambda: analyze_correlation(self.traces))

    @property
    def quic_ecn(self) -> QUICECNSummary:
        """QUIC §13.4 validation outcomes vs raw-UDP reachability.

        Empty (``total == 0``) when the study ran without the QUIC
        probe family; report/save skip the section then, keeping
        legacy artefacts byte-identical.
        """
        return self._cached("quic", lambda: analyze_quic_ecn(self.traces))

    @property
    def regional(self) -> list[RegionalReachability]:
        return self._cached(
            "regional", lambda: analyze_regional(self.traces, self.world.geo)
        )

    def intervals(self, confidence: float = 0.95) -> HeadlineIntervals:
        """Bootstrap CIs for the headline numbers."""
        return headline_intervals(self.traces, confidence=confidence)

    def validate(self) -> list[InferenceQuality]:
        """Score the §4 inference rules against deployed ground truth."""
        return validate_study(self.world, self.traces, self.campaign)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def report(self) -> str:
        """Every table and figure, as text, in the paper's order."""
        quic = self.quic_ecn
        return full_report(
            self.geography,
            self.reachability,
            self.differential_plain_only,
            self.differential_ect_only,
            self.tcp_ecn,
            self.campaign,
            self.paths,
            self.correlation,
            quic=quic if quic.total else None,
        )

    def save(self, directory: str | Path, run_id: str | None = None) -> Path:
        """Archive the study (manifest + datasets + summary + CSVs).

        Every artefact is written atomically (temp file +
        ``os.replace``), so a concurrent reader — the study server
        streams archives while sibling studies are still saving — can
        never observe a partially written file.

        ``run_id`` additionally registers the archive in the results
        tree's top-level ``index.json`` (the directory's parent is
        taken as the tree root).  The archive's own contents are
        byte-identical with or without a run id: run metadata lives in
        the index, not the manifest, which keeps served artefacts
        bit-identical to a direct ``Study.run().save()``.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest: dict = {"scale": self.scale, "seed": self.seed}
        if self.drift is not None:
            # Drifted worlds cannot be rebuilt from (scale, seed)
            # alone; the manifest carries the drift so load() and
            # `ecnudp report` re-derive the identical world.  Absent
            # for undrifted runs, keeping legacy archives byte-stable.
            manifest["drift"] = self.drift.to_dict()
        if self.telemetry is not None and self.telemetry.chaos is not None:
            # Record that the archived data came from a chaotic run —
            # load() rebuilds a pristine world, so ground-truth
            # comparisons against these traces need this caveat.
            manifest["chaos"] = self.telemetry.chaos
        atomic_write_text(directory / "manifest.json", json.dumps(manifest))
        self.traces.save(directory / "traces.json")
        self.campaign.save(directory / "traceroutes.json")
        quic = self.quic_ecn
        export_summary_json(
            directory / "summary.json",
            self.geography,
            self.reachability,
            self.tcp_ecn,
            self.paths,
            self.correlation,
            quic=quic if quic.total else None,
        )
        export_traces_csv(directory / "traces.csv", self.traces)
        # Observability artefacts are written only when observation was
        # on: a study run with metrics disabled archives byte-identical
        # output to one from a build without the obs layer at all.
        if self.metrics is not None:
            export_metrics_json(directory / "metrics.json", self.metrics)
        if self.telemetry is not None:
            export_telemetry_json(directory / "telemetry.json", self.telemetry)
        if self.spans is not None:
            export_spans_json(directory / "spans.json", self.spans)
            export_chrome_trace(self.spans, directory / "trace.json")
        if self.events is not None:
            # Canonical form (wall stripped, (shard, seq) order), so a
            # sharded study's events.jsonl is byte-identical to the
            # sequential one's.
            atomic_write_text(
                directory / "events.jsonl",
                render_events_jsonl(canonical_events(self.events)),
            )
        export_figure_data(
            directory / "figures",
            self.reachability,
            self.tcp_ecn,
            self.differential_plain_only,
            self.differential_ect_only,
            self.tcp_ecn.pct_negotiated,
        )
        atomic_write_text(directory / "report.txt", self.report() + "\n")
        if run_id is not None:
            from .serve.index import StudyIndex

            StudyIndex(directory.parent).register(
                run_id, directory, scale=self.scale, seed=self.seed
            )
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "Study":
        """Re-hydrate a saved study (world rebuilt from the manifest)."""
        directory = Path(directory)
        manifest = json.loads((directory / "manifest.json").read_text())
        scale, seed = manifest["scale"], manifest["seed"]
        drift = None
        if "drift" in manifest:
            drift = EpochDrift.from_dict(manifest["drift"])
        spans = None
        spans_path = directory / "spans.json"
        if spans_path.exists():
            spans = json.loads(spans_path.read_text())["spans"]
        return cls(
            world=SyntheticInternet(drifted_params(scale, seed, drift)),
            traces=TraceSet.load(directory / "traces.json"),
            campaign=TracerouteCampaign.load(directory / "traceroutes.json"),
            scale=scale,
            seed=seed,
            spans=spans,
            drift=drift,
        )
