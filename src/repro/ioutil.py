"""Atomic file writes for study artefacts.

A long-lived study server reads archives while studies are still being
written; a reader must never observe a half-written ``traces.json`` or
``metrics.json``.  Every artefact writer in the repo therefore goes
through these helpers: content lands in a temporary file in the target
directory and is moved into place with :func:`os.replace`, which is
atomic on POSIX and Windows for same-filesystem renames — a concurrent
reader sees either the old complete file or the new complete file,
never a prefix.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import IO


@contextmanager
def atomic_open(path: str | Path, newline: str | None = None) -> Iterator[IO[str]]:
    """Open ``path`` for writing such that the write is all-or-nothing.

    Yields a text handle backed by a temporary file alongside the
    target; on clean exit the temp file replaces the target atomically,
    on error it is removed and the target is left untouched.
    """
    target = Path(path)
    handle = tempfile.NamedTemporaryFile(
        mode="w",
        newline=newline,
        encoding="utf-8",
        dir=target.parent,
        prefix=f".{target.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, target)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename)."""
    with atomic_open(path) as handle:
        handle.write(text)


def atomic_write_json(path: str | Path, payload, indent: int | None = None) -> None:
    """Serialise ``payload`` and write it atomically."""
    atomic_write_text(path, json.dumps(payload, indent=indent))
