"""Deterministic process-local metrics: counters and gauges.

The simulator's hot paths (link delivery, router forwarding, scheduler
dispatch) are instrumented with *truthiness-gated* call sites::

    if metrics:
        metrics.incr("router.forwarded")

so a disabled registry — ``None`` or the :data:`NULL_METRICS` sentinel,
both falsey — costs exactly one predicate per call site.  A real
:class:`MetricsRegistry` is always truthy.

Determinism is the design constraint that shapes everything else:

* counters are plain integer sums, so merging shard snapshots is
  commutative and associative — the merged value is bit-identical
  regardless of shard completion order;
* gauges are **high-water marks** merged with ``max``, the only gauge
  semantics that stays order-independent across shards;
* snapshots and merges walk keys in sorted order, so serialised output
  (JSON, reports) is stable byte for byte.

No wall-clock, no RNG, no I/O: a registry observing a measurement
epoch records a pure function of ``(params, epoch index)``, which is
what lets ``tests/obs/test_metrics_equivalence.py`` demand that a
``workers=4`` run's merged counters equal the sequential run's.
"""

from __future__ import annotations

from typing import Iterable, Mapping


class MetricsRegistry:
    """A process-local registry of named counters and gauges."""

    __slots__ = ("_counters", "_gauges")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    # Gauges (high-water marks)
    # ------------------------------------------------------------------
    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if it is a new high."""
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = value

    def gauge(self, name: str, default: float | None = None) -> float | None:
        return self._gauges.get(name, default)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-safe, key-sorted copy of the current state."""
        return {
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
        }

    def clear(self) -> None:
        """Reset every counter and gauge."""
        self._counters.clear()
        self._gauges.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges)"
        )


class NullRegistry:
    """The disabled registry: falsey, and every operation is a no-op.

    Exists so code can hold "a registry" unconditionally and still let
    truthiness-gated call sites skip all work.  :data:`NULL_METRICS` is
    the shared instance; there is no reason to construct more.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def incr(self, name: str, amount: int = 1) -> None:
        pass

    def counter(self, name: str) -> int:
        return 0

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def gauge(self, name: str, default: float | None = None) -> float | None:
        return default

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}}

    def clear(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullRegistry()"


#: Shared disabled-registry sentinel.
NULL_METRICS = NullRegistry()


def empty_snapshot() -> dict:
    """The snapshot of a registry nothing ever touched."""
    return {"counters": {}, "gauges": {}}


def merge_snapshots(snapshots: Iterable[Mapping]) -> dict:
    """Fold metric snapshots into one, deterministically.

    Counters sum; gauges take the max.  Input order cannot influence
    the result (integer addition and ``max`` are commutative), and the
    merged dict is key-sorted, so any permutation of the same snapshot
    set serialises to identical bytes.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            current = gauges.get(name)
            if current is None or value > current:
                gauges[name] = value
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
    }


#: Protocol-number -> short name, for per-protocol host counters.
_PROTO_NAMES = {1: "icmp", 6: "tcp", 17: "udp"}


def proto_name(protocol: int) -> str:
    """Counter-friendly name for an IP protocol number."""
    return _PROTO_NAMES.get(protocol, str(protocol))
