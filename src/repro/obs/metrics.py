"""Deterministic process-local metrics: counters and gauges.

The simulator's hot paths (link delivery, router forwarding, scheduler
dispatch) are instrumented with *truthiness-gated* call sites::

    if metrics:
        metrics.incr("router.forwarded")

so a disabled registry — ``None`` or the :data:`NULL_METRICS` sentinel,
both falsey — costs exactly one predicate per call site.  A real
:class:`MetricsRegistry` is always truthy.

Determinism is the design constraint that shapes everything else:

* counters are plain integer sums, so merging shard snapshots is
  commutative and associative — the merged value is bit-identical
  regardless of shard completion order;
* gauges are **high-water marks** merged with ``max``, the only gauge
  semantics that stays order-independent across shards;
* histograms use **fixed bucket bounds** declared at the observation
  site, integer per-bucket counts, and a fixed-point integer sum
  (micro-units), so merging is pure integer addition — commutative,
  associative, and immune to float accumulation order;
* snapshots and merges walk keys in sorted order, so serialised output
  (JSON, reports) is stable byte for byte.

No wall-clock, no RNG, no I/O: a registry observing a measurement
epoch records a pure function of ``(params, epoch index)``, which is
what lets ``tests/obs/test_metrics_equivalence.py`` demand that a
``workers=4`` run's merged counters equal the sequential run's.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Mapping, Sequence

#: Default bucket bounds (seconds of sim-time) for probe RTT
#: histograms.  Spans the calibrated path latencies: a same-continent
#: probe completes in tens of milliseconds, a retried five-transmission
#: UDP probe against a blackholed server takes multiple seconds.
RTT_BOUNDS: tuple[float, ...] = (0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0)

#: Default bucket bounds (wall-clock seconds) for runner/serve
#: durations — queue wait and shard wall-time.
DURATION_BOUNDS: tuple[float, ...] = (0.1, 0.5, 1.0, 2.0, 5.0, 15.0, 60.0, 300.0)

#: Fixed-point scale for histogram sums: one micro-unit.  Sums are
#: accumulated and merged as integers so the merged value cannot
#: depend on shard completion order the way float addition would.
_SUM_SCALE = 1_000_000


class _Histogram:
    """One fixed-bucket histogram: integer state only (plus min/max)."""

    __slots__ = ("bounds", "buckets", "count", "sum_fp", "min", "max")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        # One bucket per bound (le semantics) plus the overflow bucket.
        self.buckets = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum_fp = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum_fp += round(value * _SUM_SCALE)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum_fp": self.sum_fp,
            "min": self.min,
            "max": self.max,
        }


def histogram_sum(snapshot_entry: Mapping) -> float:
    """The float sum of one snapshot histogram entry."""
    return snapshot_entry.get("sum_fp", 0) / _SUM_SCALE


class MetricsRegistry:
    """A process-local registry of named counters, gauges, histograms."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    # Gauges (high-water marks)
    # ------------------------------------------------------------------
    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if it is a new high."""
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = value

    def gauge(self, name: str, default: float | None = None) -> float | None:
        return self._gauges.get(name, default)

    # ------------------------------------------------------------------
    # Histograms (fixed buckets, integer state)
    # ------------------------------------------------------------------
    def observe(
        self, name: str, value: float, bounds: Sequence[float] = RTT_BOUNDS
    ) -> None:
        """Record ``value`` in histogram ``name``.

        ``bounds`` fixes the bucket upper bounds (``le`` semantics, an
        implicit overflow bucket past the last bound) on first use; the
        call site owns the choice, and every observation site for one
        name must agree — mixed bounds would make the shard merge
        ill-defined, so :func:`merge_snapshots` raises on mismatch.
        """
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = _Histogram(tuple(bounds))
        hist.observe(value)

    def histogram(self, name: str) -> dict | None:
        """Snapshot of histogram ``name`` (None if never observed)."""
        hist = self._histograms.get(name)
        return hist.to_dict() if hist is not None else None

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-safe, key-sorted copy of the current state.

        The ``histograms`` key appears only when at least one histogram
        exists: legacy archives (and every consumer written before
        histograms) see the exact two-key document they always did.
        """
        snap = {
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
        }
        if self._histograms:
            snap["histograms"] = {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            }
        return snap

    def clear(self) -> None:
        """Reset every counter, gauge, and histogram."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )


class NullRegistry:
    """The disabled registry: falsey, and every operation is a no-op.

    Exists so code can hold "a registry" unconditionally and still let
    truthiness-gated call sites skip all work.  :data:`NULL_METRICS` is
    the shared instance; there is no reason to construct more.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def incr(self, name: str, amount: int = 1) -> None:
        pass

    def counter(self, name: str) -> int:
        return 0

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def gauge(self, name: str, default: float | None = None) -> float | None:
        return default

    def observe(
        self, name: str, value: float, bounds: Sequence[float] = RTT_BOUNDS
    ) -> None:
        pass

    def histogram(self, name: str) -> dict | None:
        return None

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}}

    def clear(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullRegistry()"


#: Shared disabled-registry sentinel.
NULL_METRICS = NullRegistry()


def empty_snapshot() -> dict:
    """The snapshot of a registry nothing ever touched."""
    return {"counters": {}, "gauges": {}}


def _merge_histogram(merged: dict, entry: Mapping, name: str) -> None:
    if list(entry.get("bounds", ())) != merged["bounds"]:
        raise ValueError(
            f"histogram {name!r} bucket bounds differ across shards: "
            f"{merged['bounds']} vs {list(entry.get('bounds', ()))}"
        )
    merged["buckets"] = [
        a + b for a, b in zip(merged["buckets"], entry.get("buckets", ()))
    ]
    merged["count"] += entry.get("count", 0)
    merged["sum_fp"] += entry.get("sum_fp", 0)
    for field, pick in (("min", min), ("max", max)):
        value = entry.get(field)
        if value is not None:
            current = merged[field]
            merged[field] = value if current is None else pick(current, value)


def merge_snapshots(snapshots: Iterable[Mapping]) -> dict:
    """Fold metric snapshots into one, deterministically.

    Counters sum; gauges take the max; histogram buckets, counts and
    fixed-point sums sum while min/max fold commutatively.  Input order
    cannot influence the result (integer addition, ``min`` and ``max``
    are commutative), and the merged dict is key-sorted, so any
    permutation of the same snapshot set serialises to identical
    bytes.  Mismatched bucket bounds for the same histogram name raise
    ``ValueError`` — silently mixing them would corrupt the merge.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            current = gauges.get(name)
            if current is None or value > current:
                gauges[name] = value
        for name, entry in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "bounds": list(entry.get("bounds", ())),
                    "buckets": list(entry.get("buckets", ())),
                    "count": entry.get("count", 0),
                    "sum_fp": entry.get("sum_fp", 0),
                    "min": entry.get("min"),
                    "max": entry.get("max"),
                }
            else:
                _merge_histogram(merged, entry, name)
    result = {
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
    }
    if histograms:
        result["histograms"] = {
            name: histograms[name] for name in sorted(histograms)
        }
    return result


#: Protocol-number -> short name, for per-protocol host counters.
_PROTO_NAMES = {1: "icmp", 6: "tcp", 17: "udp"}


def proto_name(protocol: int) -> str:
    """Counter-friendly name for an IP protocol number."""
    return _PROTO_NAMES.get(protocol, str(protocol))
