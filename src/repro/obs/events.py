"""Structured, leveled, rate-limited event log.

The live counterpart of the archival observability layers: while
metrics/spans describe a finished run, the event log is the stream a
running system narrates itself through — shard lifecycle from the
runner, admissions and rejections from the serve layer, injected chaos
from the fault injector, epoch publishes from the campaign driver, and
SLO breaches from the campaign watchdog.

Design constraints, in the order they shaped the module:

* **Deterministic where it must be.**  Worker-shard events participate
  in the same contract as metrics and spans: a ``workers=4`` study's
  merged event list must be byte-identical to ``workers=0``.  So each
  event carries a per-log monotonic ``seq``, merge order is ``(shard,
  seq)``, rate limiting is a pure function of the emission sequence
  (a per-kind cap, not a wall-clock token bucket), and the wall-clock
  stamp is quarantined in one field (``wall``) that
  :func:`canonical_events` strips — exactly the
  :data:`~repro.obs.spans._WALL_FIELDS` discipline.
* **Cheap when off.**  :data:`NULL_EVENTS` is falsey; every emission
  site is truthiness-gated (``if events: events.emit(...)``).
* **Bounded everywhere.**  The buffer is a ring: old events fall off
  the front, ``seq`` keeps rising, and :meth:`EventLog.since` exposes
  the since-cursor window ``GET /events`` serves.

Correlation model: an :class:`EventLog` is constructed with (or later
:meth:`~EventLog.bind`-s) context fields — ``run_id``, ``tenant``,
``shard``, ``epoch`` — that are folded into every event it emits;
``span_id`` is passed per event by emitters that sit inside a span
(``SpanRecorder.current_span_id``).

Shard attribution reuses the span layer's trick: a log built with a
``context_map`` (:func:`repro.runner.shard.shard_context_map`)
resolves :meth:`EventLog.enter_context` calls to shard ids and mints
**per-shard** ``seq`` numbers — a sequential study interleaving many
shards' epochs and a worker running one shard assign every event the
same ``(shard, seq)``, which is what makes the merged stream
byte-identical for any ``workers`` value.  Rate-limit counters are
keyed per ``(shard, kind)`` for the same reason.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Iterable, Mapping

#: Document format tag for events.jsonl exports and flight tails.
EVENTS_FORMAT = "ecn-udp-events/1"

#: Severity levels, least to most severe.
LEVELS = ("debug", "info", "warning", "alert")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}

#: Default ring capacity: enough for a full chaos-heavy study's shard
#: lifecycle plus fault events, small enough to stay cheap to merge.
DEFAULT_EVENT_CAPACITY = 4096

#: Default per-kind emission cap (the deterministic rate limit): after
#: this many events of one kind, further ones are counted, not stored.
DEFAULT_KIND_LIMIT = 512

#: Fields whose values depend on the wall clock, stripped from the
#: canonical (determinism-checked) form.
_WALL_FIELDS = ("wall",)


def level_rank(level: str) -> int:
    """Numeric severity of ``level``; raises on unknown names."""
    try:
        return _LEVEL_RANK[level]
    except KeyError:
        known = ", ".join(LEVELS)
        raise ValueError(f"unknown event level {level!r}; one of: {known}") from None


class EventLog:
    """A bounded, leveled, deterministically rate-limited event buffer."""

    __slots__ = (
        "capacity",
        "kind_limit",
        "_min_rank",
        "_context",
        "_events",
        "_first_index_pos",
        "_pos",
        "_shard_seqs",
        "_shard",
        "_context_map",
        "_kind_counts",
        "_dropped",
        "_lock",
        "_stamp_wall",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_EVENT_CAPACITY,
        min_level: str = "debug",
        kind_limit: int = DEFAULT_KIND_LIMIT,
        stamp_wall: bool = True,
        context_map: Mapping[tuple[str, str, int], int] | None = None,
        **context,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0: {capacity!r}")
        if kind_limit <= 0:
            raise ValueError(f"kind_limit must be > 0: {kind_limit!r}")
        self.capacity = capacity
        self.kind_limit = kind_limit
        self._min_rank = level_rank(min_level)
        self._context = {k: v for k, v in context.items() if v is not None}
        self._events: list[dict] = []
        self._first_index_pos = 0  # stream position of self._events[0]
        self._pos = 0  # global stream position (the ring/tail cursor)
        #: Per-shard seq counters, live only when a context map is set.
        self._shard_seqs: dict[int, int] = {}
        self._shard: int | None = None
        self._context_map = dict(context_map) if context_map else None
        self._kind_counts: dict[tuple[int | None, str], int] = {}
        self._dropped: dict[str, int] = {}
        self._lock = threading.Lock()
        #: Worker-shard logs set this False: their events must be a
        #: pure function of the shard, and the wall stamp is the one
        #: field that is not.  (Canonicalisation strips it anyway;
        #: leaving it off keeps the wire payload honest about it.)
        self._stamp_wall = stamp_wall

    def __bool__(self) -> bool:
        return True

    def bind(self, **context) -> None:
        """Fold more correlation fields into every future event."""
        with self._lock:
            self._context.update(
                {k: v for k, v in context.items() if v is not None}
            )

    def enter_context(self, kind: str, vantage_key: str, batch: int = 0) -> None:
        """Attribute subsequent events to the shard owning this context.

        A no-op without a ``context_map`` (parent/serve/campaign logs
        have no shard structure).  Mirrors
        ``SpanRecorder.enter_context``: the sequential study calls this
        at every epoch boundary, a worker's map only contains its own
        shard, and both resolve the same shard id.
        """
        if self._context_map is None:
            return
        try:
            self._shard = self._context_map[(kind, vantage_key, batch)]
        except KeyError:
            raise ValueError(
                f"no shard owns event context ({kind!r}, {vantage_key!r}, {batch!r})"
            ) from None

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, kind: str, level: str = "info", /, **fields) -> dict | None:
        """Record one event; returns it, or ``None`` if filtered.

        ``kind`` is the event's stable machine name (``shard-retry``,
        ``serve-submit``, ``fault``, ...); ``fields`` are its payload.
        Payload fields never override the envelope (``seq``, ``kind``,
        ``level``) or bound context — the envelope wins, matching the
        FlightRecorder's reserved-field rule.
        """
        rank = level_rank(level)
        if rank < self._min_rank:
            return None
        with self._lock:
            counter_key = (self._shard, kind)
            seen = self._kind_counts.get(counter_key, 0) + 1
            self._kind_counts[counter_key] = seen
            if seen > self.kind_limit:
                self._dropped[kind] = self._dropped.get(kind, 0) + 1
                return None
            event = dict(fields)
            event.update(self._context)
            if self._shard is not None:
                event["shard"] = self._shard
                seq = self._shard_seqs.get(self._shard, 0)
                self._shard_seqs[self._shard] = seq + 1
            else:
                seq = self._pos
            event["seq"] = seq
            event["kind"] = kind
            event["level"] = level
            if self._stamp_wall:
                event["wall"] = time.time()
            self._pos += 1
            self._events.append(event)
            if len(self._events) > self.capacity:
                overflow = len(self._events) - self.capacity
                del self._events[:overflow]
                self._first_index_pos += overflow
            return event

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """The next global stream position (the live since-cursor).

        For logs without a context map this equals the ``seq`` the
        next event will carry, so clients can resume from their last
        seen ``seq + 1``.
        """
        return self._pos

    def since(self, cursor: int, limit: int | None = None) -> list[dict]:
        """Buffered events from stream position ``cursor``, oldest first.

        The since-cursor read behind ``GET /events``: a client replays
        from its last seen ``seq + 1``.  Events that already fell off
        the ring are simply gone — the ring is a tail, not a journal.
        """
        with self._lock:
            start = max(0, cursor - self._first_index_pos)
            window = self._events[start:]
        if limit is not None:
            window = window[:limit]
        return [dict(event) for event in window]

    def tail(self, limit: int) -> list[dict]:
        """The most recent ``limit`` events, oldest first."""
        with self._lock:
            window = self._events[-limit:] if limit > 0 else []
            return [dict(event) for event in window]

    def export(self) -> list[dict]:
        """Every buffered event, oldest first (the shard wire payload)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def dropped(self) -> dict[str, int]:
        """Per-kind counts of rate-limited (dropped) events."""
        with self._lock:
            return dict(self._dropped)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._kind_counts.clear()
            self._dropped.clear()
            self._shard_seqs.clear()
            self._shard = None
            self._pos = 0
            self._first_index_pos = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventLog({len(self._events)} events, next_seq={self._pos})"


class NullEventLog:
    """Disabled event log: falsey, every operation a no-op."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def bind(self, **context) -> None:
        pass

    def enter_context(self, kind: str, vantage_key: str, batch: int = 0) -> None:
        pass

    def emit(self, kind: str, level: str = "info", /, **fields) -> None:
        return None

    @property
    def next_seq(self) -> int:
        return 0

    def since(self, cursor: int, limit: int | None = None) -> list[dict]:
        return []

    def tail(self, limit: int) -> list[dict]:
        return []

    def export(self) -> list[dict]:
        return []

    def dropped(self) -> dict[str, int]:
        return {}

    def clear(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullEventLog()"


#: Shared disabled-event-log sentinel.
NULL_EVENTS = NullEventLog()


# ----------------------------------------------------------------------
# Merging and canonical form
# ----------------------------------------------------------------------
def assemble_study_events(by_shard: Mapping[int, list[dict]]) -> list[dict]:
    """Flatten per-shard event lists into the study's merged stream.

    Deterministic for the same reason span assembly is: events are
    ordered by ``(shard, seq)``, both of which are pure functions of
    the shard's work, never of scheduling.  Shard completion order
    cannot influence the result.
    """
    merged: list[dict] = []
    for shard_id in sorted(by_shard):
        for event in by_shard[shard_id]:
            entry = dict(event)
            entry.setdefault("shard", shard_id)
            merged.append(entry)
    return merged


def canonical_events(events: Iterable[Mapping]) -> list[dict]:
    """The determinism-checked form: wall-clock stripped, key-sorted.

    This is what equivalence tests compare and what ``events.jsonl``
    archives, so a sharded study's export is byte-identical to the
    sequential one.
    """
    canonical = []
    for event in events:
        entry = {
            key: event[key] for key in sorted(event) if key not in _WALL_FIELDS
        }
        canonical.append(entry)
    canonical.sort(key=lambda e: (e.get("shard", -1), e.get("seq", 0)))
    return canonical


def render_events_jsonl(events: Iterable[Mapping]) -> str:
    """Serialise events as JSONL (one compact JSON object per line)."""
    return "".join(
        json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        for event in events
    )


def parse_events_jsonl(text: str) -> list[dict]:
    """Parse a JSONL event stream, loud on garbled lines."""
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"garbled event at line {lineno}: {exc}") from exc
        if not isinstance(event, dict):
            raise ValueError(f"event at line {lineno} is not an object: {event!r}")
        events.append(event)
    return events
