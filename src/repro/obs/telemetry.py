"""Run telemetry: what a campaign cost, shard by shard.

While :mod:`repro.obs.metrics` answers *what happened inside the
simulation* (and must merge bit-identically across any sharding),
telemetry answers *how the run itself behaved*: per-shard wall-clock
timing, retry counts, runner-level recovery events, and the merged
metric snapshot, all bundled into one :class:`RunTelemetry` object
that :meth:`repro.study.Study.save` exports alongside the archival
JSON.

The two halves have different determinism contracts, kept deliberately
separate in the exported document:

* ``metrics`` — deterministic; identical between ``workers=0`` and
  ``workers=N`` for the same ``(scale, seed)``.
* ``shards`` / ``wall_seconds`` — wall-clock facts about *this* run;
  meaningful for performance work, never for result comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import (
    DURATION_BOUNDS,
    MetricsRegistry,
    empty_snapshot,
    histogram_sum,
    merge_snapshots,
)


@dataclass(frozen=True)
class ShardRecord:
    """Timing and retry facts for one completed shard."""

    shard_id: int
    kind: str
    label: str
    #: Executions this shard needed (1 = no retries).
    attempts: int
    #: Worker-side wall-clock seconds for the successful execution.
    elapsed: float
    #: Progress units the shard contributed (traces or probes).
    units: int

    def to_dict(self) -> dict:
        # Wall-clock exports round to the millisecond: sub-ms digits
        # are timer noise that churns diffs between otherwise-equal
        # runs.  Only the export rounds — in-memory values keep full
        # precision so accumulated sums don't drift.
        return {
            "shard_id": self.shard_id,
            "kind": self.kind,
            "label": self.label,
            "attempts": self.attempts,
            "elapsed": round(self.elapsed, 3),
            "units": self.units,
        }


@dataclass
class RunTelemetry:
    """Everything observable about one campaign execution."""

    workers: int = 0
    wall_seconds: float = 0.0
    shards: list[ShardRecord] = field(default_factory=list)
    #: Deterministic simulation metrics, merged across shards.
    metrics: dict = field(default_factory=empty_snapshot)
    #: Parent-side runner counters (dispatched/retried/recovered).
    runner: dict = field(default_factory=dict)
    #: Audit summary of the fault plan applied, when the run was
    #: chaotic (:meth:`repro.faults.FaultPlan.summary`); ``None`` for
    #: an unimpaired run.
    chaos: dict | None = None

    def record_shard(self, record: ShardRecord) -> None:
        self.shards.append(record)

    def merge_metrics(self, snapshots) -> None:
        """Install the deterministic merge of per-shard snapshots."""
        self.metrics = merge_snapshots(snapshots)

    def wall_histograms(self) -> dict:
        """Wall-clock distribution of shard execution times.

        Derived from the shard records at export time, in shard-id
        order, so the same records always produce the same document —
        but the *values* are wall clocks: these histograms live in the
        telemetry half of the export, never in ``metrics``, and are
        excluded from every determinism contract.
        """
        if not self.shards:
            return {}
        registry = MetricsRegistry()
        for record in sorted(self.shards, key=lambda r: r.shard_id):
            registry.observe(
                "runner.shard_wall_seconds", record.elapsed, DURATION_BOUNDS
            )
        return registry.snapshot().get("histograms", {})

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def total_retries(self) -> int:
        return sum(max(0, record.attempts - 1) for record in self.shards)

    def slowest_shards(self, count: int = 5) -> list[ShardRecord]:
        """The ``count`` longest-running shards (stable on ties)."""
        return sorted(
            self.shards, key=lambda r: (-r.elapsed, r.shard_id)
        )[:count]

    def to_dict(self) -> dict:
        """JSON-safe document, shards in shard-id order."""
        document = {
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 3),
            "total_retries": self.total_retries,
            "runner": {name: self.runner[name] for name in sorted(self.runner)},
            "shards": [
                record.to_dict()
                for record in sorted(self.shards, key=lambda r: r.shard_id)
            ],
            "metrics": self.metrics,
        }
        histograms = self.wall_histograms()
        if histograms:
            document["wall_histograms"] = histograms
        if self.chaos is not None:
            document["chaos"] = self.chaos
        return document

    def summary_lines(self) -> list[str]:
        """The human-readable timing section (benchmark / CLI output)."""
        lines = [
            f"workers={self.workers} wall={self.wall_seconds:.2f}s "
            f"shards={len(self.shards)} retries={self.total_retries}"
        ]
        if self.chaos is not None:
            by_kind = self.chaos.get("by_kind", {})
            kinds = " ".join(f"{kind}={by_kind[kind]}" for kind in sorted(by_kind))
            lines.append(
                f"  chaos profile={self.chaos.get('profile')} "
                f"seed={self.chaos.get('chaos_seed')} "
                f"events={self.chaos.get('events')} ({kinds})"
            )
        for name in sorted(self.runner):
            lines.append(f"  {name} = {self.runner[name]}")
        busy = sum(record.elapsed for record in self.shards)
        if self.shards:
            lines.append(f"  shard time total={busy:.2f}s")
            for record in self.slowest_shards():
                lines.append(
                    f"    {record.elapsed:6.2f}s  x{record.attempts}  "
                    f"{record.label}"
                )
        return lines


def histogram_lines(histograms: dict, indent: str = "  ") -> list[str]:
    """Human-readable one-liners for snapshot histograms."""
    lines = []
    for name in sorted(histograms):
        hist = histograms[name]
        count = hist.get("count", 0)
        mean = histogram_sum(hist) / count if count else 0.0
        lo = hist.get("min")
        hi = hist.get("max")
        lines.append(
            f"{indent}{name}  n={count} mean={mean:.4f}"
            + ("" if lo is None else f" min={lo:.4f}")
            + ("" if hi is None else f" max={hi:.4f}")
        )
    return lines


def render_metrics_report(snapshot: dict, telemetry: RunTelemetry | None = None) -> str:
    """Format a metric snapshot (and optional telemetry) as a report."""
    lines = ["== Simulation metrics =="]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if not counters and not gauges:
        lines.append("  (no metrics recorded)")
    width = max((len(name) for name in (*counters, *gauges)), default=0)
    for name in sorted(counters):
        lines.append(f"  {name:<{width}}  {counters[name]}")
    for name in sorted(gauges):
        lines.append(f"  {name:<{width}}  {gauges[name]:g} (gauge)")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("== Histograms (sim-time seconds) ==")
        lines.extend(histogram_lines(histograms))
    if telemetry is not None:
        lines.append("")
        lines.append("== Run telemetry ==")
        lines.extend(telemetry.summary_lines())
        wall = telemetry.wall_histograms()
        if wall:
            lines.append("")
            lines.append("== Histograms (wall-clock seconds) ==")
            lines.extend(histogram_lines(wall))
    return "\n".join(lines)
