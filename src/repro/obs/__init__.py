"""repro.obs — the simulation observability layer.

Three cooperating pieces, all disabled by default and cheap when off:

* :class:`MetricsRegistry` — deterministic named counters and
  high-water gauges, updated by routers, queues, middleboxes, hosts,
  the event engine and the runner.  Shard snapshots merge
  bit-identically regardless of completion order
  (:func:`merge_snapshots`).
* :class:`PathTracer` — opt-in per-packet causality log: the ordered
  ``(hop, action, ECN before/after)`` sequence of every packet
  matching a filter (:func:`parse_filter` compiles the CLI's
  tcpdump-flavoured expressions).
* :class:`RunTelemetry` — per-shard timing, retry counts and the
  merged metric snapshot for one campaign execution, exported next to
  the archival JSON and rendered by ``ecnudp metrics``.

Instrumented call sites are truthiness-gated (``if metrics: ...``), so
with observability off every hot path pays one predicate and the
archival output stays byte-identical to an uninstrumented build; see
DESIGN.md's observability section for the overhead contract.
"""

from __future__ import annotations

from .flight import DEFAULT_CAPACITY, FlightRecorder, load_flight_dump
from .metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullRegistry,
    empty_snapshot,
    merge_snapshots,
    proto_name,
)
from .spans import (
    DETAIL_EPOCH,
    DETAIL_PROBE,
    NULL_SPANS,
    ROOT_SPAN_ID,
    NullSpanRecorder,
    Span,
    SpanRecorder,
    assemble_study_spans,
    canonical_spans,
    chrome_trace_events,
    export_chrome_trace,
    span_children,
    span_id,
)
from .report import (
    RunArtifacts,
    dashboard_sections,
    load_run_artifacts,
    render_dashboard_html,
    render_dashboard_markdown,
    write_dashboard,
)
from .tracing import (
    FilterError,
    PathEvent,
    PathTracer,
    group_flows,
    parse_filter,
)
from .telemetry import RunTelemetry, ShardRecord, render_metrics_report

__all__ = [
    "DEFAULT_CAPACITY",
    "DETAIL_EPOCH",
    "DETAIL_PROBE",
    "FilterError",
    "FlightRecorder",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_SPANS",
    "NullRegistry",
    "NullSpanRecorder",
    "PathEvent",
    "PathTracer",
    "ROOT_SPAN_ID",
    "RunArtifacts",
    "RunTelemetry",
    "ShardRecord",
    "Span",
    "SpanRecorder",
    "assemble_study_spans",
    "canonical_spans",
    "chrome_trace_events",
    "dashboard_sections",
    "empty_snapshot",
    "export_chrome_trace",
    "group_flows",
    "load_flight_dump",
    "load_run_artifacts",
    "merge_snapshots",
    "parse_filter",
    "proto_name",
    "render_dashboard_html",
    "render_dashboard_markdown",
    "render_metrics_report",
    "span_children",
    "span_id",
    "write_dashboard",
]
