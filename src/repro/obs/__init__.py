"""repro.obs — the simulation observability layer.

Three cooperating pieces, all disabled by default and cheap when off:

* :class:`MetricsRegistry` — deterministic named counters and
  high-water gauges, updated by routers, queues, middleboxes, hosts,
  the event engine and the runner.  Shard snapshots merge
  bit-identically regardless of completion order
  (:func:`merge_snapshots`).
* :class:`PathTracer` — opt-in per-packet causality log: the ordered
  ``(hop, action, ECN before/after)`` sequence of every packet
  matching a filter (:func:`parse_filter` compiles the CLI's
  tcpdump-flavoured expressions).
* :class:`RunTelemetry` — per-shard timing, retry counts and the
  merged metric snapshot for one campaign execution, exported next to
  the archival JSON and rendered by ``ecnudp metrics``.

Instrumented call sites are truthiness-gated (``if metrics: ...``), so
with observability off every hot path pays one predicate and the
archival output stays byte-identical to an uninstrumented build; see
DESIGN.md's observability section for the overhead contract.
"""

from __future__ import annotations

from .flight import DEFAULT_CAPACITY, FlightRecorder, load_flight_dump
from .events import (
    DEFAULT_EVENT_CAPACITY,
    EVENTS_FORMAT,
    LEVELS,
    NULL_EVENTS,
    EventLog,
    NullEventLog,
    assemble_study_events,
    canonical_events,
    level_rank,
    parse_events_jsonl,
    render_events_jsonl,
)
from .metrics import (
    DURATION_BOUNDS,
    NULL_METRICS,
    RTT_BOUNDS,
    MetricsRegistry,
    NullRegistry,
    empty_snapshot,
    histogram_sum,
    merge_snapshots,
    proto_name,
)
from .prom import (
    METRIC_PREFIX,
    PROM_CONTENT_TYPE,
    ExpositionError,
    metric_name,
    render_histogram_rows,
    render_prometheus,
    validate_exposition,
)
from .spans import (
    DETAIL_EPOCH,
    DETAIL_PROBE,
    NULL_SPANS,
    ROOT_SPAN_ID,
    NullSpanRecorder,
    Span,
    SpanRecorder,
    assemble_study_spans,
    canonical_spans,
    chrome_trace_events,
    export_chrome_trace,
    span_children,
    span_id,
)
from .report import (
    RunArtifacts,
    dashboard_sections,
    load_run_artifacts,
    render_dashboard_html,
    render_dashboard_markdown,
    write_dashboard,
)
from .tracing import (
    FilterError,
    PathEvent,
    PathTracer,
    group_flows,
    parse_filter,
)
from .telemetry import RunTelemetry, ShardRecord, render_metrics_report

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_EVENT_CAPACITY",
    "DETAIL_EPOCH",
    "DETAIL_PROBE",
    "DURATION_BOUNDS",
    "EVENTS_FORMAT",
    "EventLog",
    "ExpositionError",
    "FilterError",
    "FlightRecorder",
    "LEVELS",
    "METRIC_PREFIX",
    "MetricsRegistry",
    "NULL_EVENTS",
    "NULL_METRICS",
    "NULL_SPANS",
    "NullEventLog",
    "NullRegistry",
    "NullSpanRecorder",
    "PROM_CONTENT_TYPE",
    "PathEvent",
    "PathTracer",
    "ROOT_SPAN_ID",
    "RTT_BOUNDS",
    "RunArtifacts",
    "RunTelemetry",
    "ShardRecord",
    "Span",
    "SpanRecorder",
    "assemble_study_events",
    "assemble_study_spans",
    "canonical_events",
    "canonical_spans",
    "chrome_trace_events",
    "dashboard_sections",
    "empty_snapshot",
    "export_chrome_trace",
    "group_flows",
    "histogram_sum",
    "level_rank",
    "load_flight_dump",
    "load_run_artifacts",
    "merge_snapshots",
    "metric_name",
    "parse_events_jsonl",
    "parse_filter",
    "proto_name",
    "render_dashboard_html",
    "render_dashboard_markdown",
    "render_events_jsonl",
    "render_histogram_rows",
    "render_metrics_report",
    "render_prometheus",
    "span_children",
    "span_id",
    "validate_exposition",
    "write_dashboard",
]
