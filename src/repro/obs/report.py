"""Run dashboards: one page summarising a saved study's run artefacts.

``ecnudp report --dashboard`` folds the observability outputs of a
study directory — ``summary.json``, ``metrics.json``,
``telemetry.json``, ``spans.json``, any ``flight-*.json`` crash dumps
— into a single self-contained document: a per-phase timing table, a
slowest-shard flame summary, the chaos event timeline, and the ECN
mark-survival breakdown the paper's §4 is about.  Everything degrades
gracefully: a study saved without ``--metrics`` or ``--spans`` still
renders, with the missing sections noted rather than omitted silently.

Two renderers share one data model (:class:`RunArtifacts` →
:func:`dashboard_sections`): markdown for terminals and commit
comments, HTML (inline CSS, zero external assets) for browsers.
"""

from __future__ import annotations

import html
import json
from dataclasses import dataclass, field
from pathlib import Path

from .events import parse_events_jsonl
from .prom import render_histogram_rows

#: Span kinds shown in the per-phase timing table, coarse to fine.
_PHASE_KINDS = ("shard", "trace", "sweep", "probe", "phase")

#: Most recent events shown in the dashboard's event-log section.
_EVENT_TAIL_ROWS = 20


@dataclass
class RunArtifacts:
    """Everything the dashboard knows about one saved study."""

    study_dir: Path
    manifest: dict = field(default_factory=dict)
    summary: dict | None = None
    metrics: dict | None = None
    telemetry: dict | None = None
    spans: list[dict] | None = None
    #: Parsed ``flight-*.json`` dumps, sorted by file name.
    flights: list[dict] = field(default_factory=list)
    #: When the directory is a campaign archive: its ``campaign.json``
    #: manifest and merged ``trend.json`` points.  Read structurally
    #: (plain JSON) so the dashboard stays import-cycle-free.
    campaign: dict | None = None
    trend_points: list[dict] = field(default_factory=list)
    #: Parsed ``events.jsonl`` (structured event log), oldest first.
    events: list[dict] = field(default_factory=list)
    #: Parsed campaign ``alerts.jsonl`` (SLO watchdog breaches).
    alerts: list[dict] = field(default_factory=list)


def _load_json(path: Path):
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def _load_jsonl(path: Path) -> list[dict]:
    """Best-effort JSONL load — the dashboard degrades, never raises."""
    try:
        return parse_events_jsonl(path.read_text())
    except (OSError, ValueError):
        return []


def load_run_artifacts(study_dir: str | Path) -> RunArtifacts:
    """Gather whatever observability artefacts the directory holds."""
    directory = Path(study_dir)
    artifacts = RunArtifacts(study_dir=directory)
    artifacts.manifest = _load_json(directory / "manifest.json") or {}
    artifacts.summary = _load_json(directory / "summary.json")
    artifacts.metrics = _load_json(directory / "metrics.json")
    artifacts.telemetry = _load_json(directory / "telemetry.json")
    spans_doc = _load_json(directory / "spans.json")
    if isinstance(spans_doc, dict) and isinstance(spans_doc.get("spans"), list):
        artifacts.spans = spans_doc["spans"]
    for path in sorted(directory.glob("flight-*.json")):
        dump = _load_json(path)
        if isinstance(dump, dict):
            dump.setdefault("file", path.name)
            artifacts.flights.append(dump)
    artifacts.events = _load_jsonl(directory / "events.jsonl")
    campaign_doc = _load_json(directory / "campaign.json")
    if isinstance(campaign_doc, dict) and str(
        campaign_doc.get("format", "")
    ).startswith("ecn-udp-campaign/"):
        artifacts.campaign = campaign_doc
        trend_doc = _load_json(directory / "trend.json")
        if isinstance(trend_doc, dict) and isinstance(trend_doc.get("points"), list):
            artifacts.trend_points = trend_doc["points"]
        artifacts.alerts = _load_jsonl(directory / "alerts.jsonl")
    return artifacts


# ----------------------------------------------------------------------
# Data model: sections of (title, table | lines)
# ----------------------------------------------------------------------
def _fmt(value, digits: int = 2) -> str:
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _header_rows(artifacts: RunArtifacts) -> list[tuple[str, str]]:
    rows = [
        ("study", str(artifacts.study_dir)),
        ("scale", _fmt(artifacts.manifest.get("scale", "?"), 3)),
        ("seed", str(artifacts.manifest.get("seed", "?"))),
    ]
    telemetry = artifacts.telemetry
    if telemetry:
        rows.append(("workers", str(telemetry.get("workers", 0))))
        rows.append(("wall seconds", _fmt(telemetry.get("wall_seconds", 0.0), 3)))
        rows.append(("shards", str(len(telemetry.get("shards", [])))))
        rows.append(("retries", str(telemetry.get("total_retries", 0))))
    chaos = artifacts.manifest.get("chaos") or (
        telemetry.get("chaos") if telemetry else None
    )
    if chaos:
        rows.append(
            (
                "chaos",
                f"profile={chaos.get('profile')} seed={chaos.get('chaos_seed')} "
                f"events={chaos.get('events')}",
            )
        )
    if artifacts.flights:
        rows.append(
            ("flight dumps", ", ".join(d.get("file", "?") for d in artifacts.flights))
        )
    return rows


def _phase_table(spans: list[dict]) -> list[list[str]]:
    """Per-kind timing: count, total simulated time, total wall time."""
    totals: dict[str, list[float]] = {}
    for span in spans:
        kind = span.get("kind")
        if kind not in _PHASE_KINDS:
            continue
        entry = totals.setdefault(kind, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += max(span.get("sim_end", 0.0) - span.get("sim_start", 0.0), 0.0)
        entry[2] += span.get("wall_ms", 0.0)
    rows = []
    for kind in _PHASE_KINDS:
        if kind not in totals:
            continue
        count, sim, wall = totals[kind]
        rows.append([kind, str(int(count)), f"{sim:.1f}", f"{wall:.1f}"])
    return rows


def _flame_rows(artifacts: RunArtifacts, count: int = 5) -> list[list[str]]:
    """Slowest shards with a proportional wall-time bar.

    Prefers telemetry's worker-side timings; falls back to span wall
    times when the study ran without ``--metrics``.
    """
    shards: list[tuple[int, float, int, str]] = []
    telemetry = artifacts.telemetry
    if telemetry and telemetry.get("shards"):
        for record in telemetry["shards"]:
            shards.append(
                (
                    record.get("shard_id", -1),
                    float(record.get("elapsed", 0.0)) * 1000.0,
                    record.get("attempts", 1),
                    record.get("label", "?"),
                )
            )
    elif artifacts.spans:
        for span in artifacts.spans:
            if span.get("kind") != "shard":
                continue
            shard_id = span.get("attrs", {}).get("shard_id", -1)
            shards.append(
                (shard_id, float(span.get("wall_ms", 0.0)), 1, span.get("name", "?"))
            )
    shards.sort(key=lambda item: (-item[1], item[0]))
    top = shards[:count]
    peak = max((wall for _, wall, _, _ in top), default=0.0)
    rows = []
    for shard_id, wall, attempts, label in top:
        bar = "#" * max(1, round(20 * wall / peak)) if peak > 0 else ""
        rows.append([str(shard_id), f"{wall:.1f}", f"x{attempts}", label, bar])
    return rows


def _chaos_rows(artifacts: RunArtifacts) -> list[list[str]]:
    """Fault events in simulated-time order, from span point events."""
    rows = []
    for span in artifacts.spans or []:
        for event in span.get("events", ()):
            if event.get("name") != "fault":
                continue
            attrs = event.get("attrs", {})
            rows.append(
                [
                    f"{event.get('sim_time', 0.0):.1f}",
                    str(attrs.get("epoch", "?")),
                    str(attrs.get("kind", "?")),
                    str(attrs.get("target", "?")),
                    _fmt(attrs.get("magnitude", "")),
                ]
            )
    rows.sort(key=lambda row: float(row[0]))
    return rows


def _survival_rows(summary: dict) -> list[list[str]]:
    """§4 headline numbers: where ECT-marked traffic survives."""
    s41 = summary.get("section_4_1", {})
    s42 = summary.get("section_4_2", {})
    s43 = summary.get("section_4_3", {})
    rows = [
        [
            "UDP servers reachable plain (avg)",
            _fmt(s41.get("avg_udp_plain_reachable", 0.0), 1),
        ],
        [
            "% reachable with ECT given plain",
            _fmt(s41.get("avg_pct_ect_given_plain", 0.0), 2),
        ],
        [
            "% reachable plain given ECT",
            _fmt(s41.get("avg_pct_plain_given_ect", 0.0), 2),
        ],
        [
            "hops passing ECT / measured",
            f"{s42.get('hops_passing', 0)} / {s42.get('hops_measured', 0)} "
            f"({_fmt(s42.get('pct_hops_passing', 0.0), 2)}%)",
        ],
        ["mark-strip events observed", str(s42.get("strip_events", 0))],
        [
            "strips at AS boundaries",
            _fmt(100.0 * s42.get("boundary_fraction", 0.0), 1) + "%",
        ],
        [
            "TCP ECN negotiated (avg)",
            f"{_fmt(s43.get('avg_ecn_negotiated', 0.0), 1)} of "
            f"{_fmt(s43.get('avg_tcp_reachable', 0.0), 1)} "
            f"({_fmt(s43.get('pct_negotiated', 0.0), 2)}%)",
        ],
    ]
    return rows


def _histogram_rows(artifacts: RunArtifacts) -> list[list[str]]:
    """Deterministic sim-time histograms plus wall-clock telemetry ones."""
    rows = [
        ["sim", *row]
        for row in render_histogram_rows(artifacts.metrics or {})
    ]
    wall = (artifacts.telemetry or {}).get("wall_histograms")
    if wall:
        rows.extend(
            ["wall", *row] for row in render_histogram_rows({"histograms": wall})
        )
    return rows


def _event_rows(events: list[dict], limit: int = _EVENT_TAIL_ROWS) -> list[list[str]]:
    """The most recent structured events, one row each."""
    rows = []
    for event in events[-limit:]:
        detail = " ".join(
            f"{key}={event[key]}"
            for key in sorted(event)
            if key not in ("seq", "shard", "level", "kind", "wall", "span_id")
        )
        rows.append(
            [
                str(event.get("shard", "-")),
                str(event.get("seq", "?")),
                str(event.get("level", "?")),
                str(event.get("kind", "?")),
                detail,
            ]
        )
    return rows


def _alert_rows(alerts: list[dict]) -> list[list[str]]:
    """SLO watchdog breaches, one row each."""
    return [
        [
            str(alert.get("epoch", "?")),
            _fmt(alert.get("year", 0.0), 2),
            str(alert.get("rule", "?")),
            str(alert.get("metric", "?")),
            _fmt(alert.get("value", 0.0), 2),
            _fmt(alert.get("reference", 0.0), 2),
            f"{alert.get('delta_pp', 0.0):+.2f}",
        ]
        for alert in alerts
    ]


#: A dashboard section: (title, column headers, rows, empty-note).
Section = tuple[str, list[str], list[list[str]], str]


def _campaign_sections(artifacts: RunArtifacts) -> list[Section]:
    """Sections for a campaign archive: spec plus the epoch time series."""
    campaign = artifacts.campaign or {}
    spec = campaign.get("spec", {})
    checkpoints = artifacts.study_dir / "checkpoints.jsonl"
    completed = (
        sum(1 for line in checkpoints.read_text().splitlines() if line.strip())
        if checkpoints.is_file()
        else 0
    )
    field_rows = [
        ["campaign", str(artifacts.study_dir)],
        ["timeline", str(spec.get("timeline", "?"))],
        ["scale", _fmt(spec.get("scale", "?"), 3)],
        ["seed", str(spec.get("seed", "?"))],
        [
            "cadence",
            f"{_fmt(spec.get('cadence_years', '?'), 2)} simulated years/epoch",
        ],
        [
            "epochs",
            f"{completed} / {campaign.get('target_epochs', '?')} complete, "
            f"{len(artifacts.trend_points)} merged",
        ],
    ]
    if spec.get("chaos"):
        field_rows.append(
            ["chaos", f"profile={spec['chaos']} seed={spec.get('chaos_seed', 0)}"]
        )
    sections: list[Section] = [("Campaign", ["field", "value"], field_rows, "")]
    trend_rows = [
        [
            _fmt(point.get("year", 0.0), 2),
            str(point.get("epoch", "?")),
            _fmt(point.get("mark_survival_pct", 0.0), 2),
            str(point.get("strip_events", 0)),
            _fmt(point.get("negotiation_pct", 0.0), 2),
            _fmt(point.get("udp_blackhole_pct", 0.0), 2),
        ]
        for point in artifacts.trend_points
    ]
    sections.append(
        (
            "Longitudinal trend",
            [
                "year",
                "epoch",
                "mark survival %",
                "strip events",
                "negotiation %",
                "UDP ECT blackhole %",
            ],
            trend_rows,
            "" if trend_rows else "no epochs merged into trend.json yet",
        )
    )
    alert_rows = _alert_rows(artifacts.alerts)
    sections.append(
        (
            "SLO alerts",
            ["epoch", "year", "rule", "metric", "value", "reference", "delta pp"],
            alert_rows,
            "" if alert_rows else "no SLO breaches recorded in alerts.jsonl",
        )
    )
    return sections


def dashboard_sections(artifacts: RunArtifacts) -> list[Section]:
    """The renderer-independent dashboard content."""
    if artifacts.campaign is not None:
        # A campaign archive holds per-epoch studies, not top-level
        # study artefacts — the study sections would all be empty.
        return _campaign_sections(artifacts)
    sections: list[Section] = [
        (
            "Run",
            ["field", "value"],
            [list(row) for row in _header_rows(artifacts)],
            "",
        )
    ]
    if artifacts.spans:
        sections.append(
            (
                "Phase timing",
                ["phase", "count", "sim time total", "wall ms total"],
                _phase_table(artifacts.spans),
                "",
            )
        )
    else:
        sections.append(
            (
                "Phase timing",
                [],
                [],
                "no spans.json — re-run with `ecnudp study --spans`",
            )
        )
    flame = _flame_rows(artifacts)
    sections.append(
        (
            "Slowest shards",
            ["shard", "wall ms", "attempts", "label", ""],
            flame,
            "" if flame else "no telemetry.json or spans.json with shard timings",
        )
    )
    chaos_rows = _chaos_rows(artifacts)
    chaotic = bool(
        artifacts.manifest.get("chaos")
        or (artifacts.telemetry or {}).get("chaos")
    )
    if chaos_rows or chaotic:
        sections.append(
            (
                "Chaos timeline",
                ["sim time", "epoch", "fault", "target", "magnitude"],
                chaos_rows,
                "" if chaos_rows else "chaotic run, but no spans captured fault events",
            )
        )
    hist_rows = _histogram_rows(artifacts)
    if hist_rows or artifacts.metrics is not None:
        sections.append(
            (
                "Histograms",
                ["domain", "histogram", "count", "mean", "min", "max"],
                hist_rows,
                "" if hist_rows else "metrics captured, but no histogram observations",
            )
        )
    if artifacts.events:
        sections.append(
            (
                "Event log (tail)",
                ["shard", "seq", "level", "kind", "detail"],
                _event_rows(artifacts.events),
                "",
            )
        )
    if artifacts.summary:
        sections.append(
            (
                "ECN mark survival",
                ["measure", "value"],
                _survival_rows(artifacts.summary),
                "",
            )
        )
    else:
        sections.append(
            ("ECN mark survival", [], [], "no summary.json in the study directory")
        )
    return sections


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------
def _markdown_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(header), *(len(row[i]) for row in rows))
        for i, header in enumerate(headers)
    ]
    lines = [
        "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |",
        "|" + "|".join("-" * (w + 2) for w in widths) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
        )
    return lines


def render_dashboard_markdown(artifacts: RunArtifacts) -> str:
    """Render the dashboard as GitHub-flavoured markdown."""
    lines = ["# ECN/UDP study run dashboard", ""]
    for title, headers, rows, note in dashboard_sections(artifacts):
        lines.append(f"## {title}")
        lines.append("")
        if rows:
            lines.extend(_markdown_table(headers, rows))
        else:
            lines.append(f"_{note or 'nothing to show'}_")
        lines.append("")
    return "\n".join(lines)


_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto;
       max-width: 60rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #1a1a2e; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: .5rem 0 1.5rem; }
th, td { border: 1px solid #c8c8d8; padding: .25rem .6rem; text-align: left;
         font-size: .9rem; }
th { background: #eef; }
td:last-child { font-family: monospace; color: #364fc7; }
.note { color: #666; font-style: italic; }
""".strip()


def render_dashboard_html(artifacts: RunArtifacts) -> str:
    """Render the dashboard as one self-contained HTML page."""
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        "<title>ECN/UDP study run dashboard</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        "<h1>ECN/UDP study run dashboard</h1>",
    ]
    for title, headers, rows, note in dashboard_sections(artifacts):
        parts.append(f"<h2>{html.escape(title)}</h2>")
        if rows:
            parts.append("<table><tr>")
            parts.extend(f"<th>{html.escape(h)}</th>" for h in headers)
            parts.append("</tr>")
            for row in rows:
                parts.append(
                    "<tr>"
                    + "".join(f"<td>{html.escape(c)}</td>" for c in row)
                    + "</tr>"
                )
            parts.append("</table>")
        else:
            parts.append(f"<p class='note'>{html.escape(note or 'nothing to show')}</p>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_dashboard(study_dir: str | Path, out_path: str | Path) -> Path:
    """Render the dashboard for ``study_dir``; format chosen by suffix.

    ``.md`` / ``.markdown`` produce markdown; anything else (``.html``
    by convention) produces the self-contained HTML page.  Returns the
    written path.
    """
    artifacts = load_run_artifacts(study_dir)
    out = Path(out_path)
    if out.suffix.lower() in (".md", ".markdown"):
        text = render_dashboard_markdown(artifacts)
    else:
        text = render_dashboard_html(artifacts)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text)
    return out
