"""Crash flight recorder: the last N events before things went wrong.

A :class:`FlightRecorder` is a bounded ring buffer of observability
events — span open/close, fault installations, runner dispatch and
recovery decisions — that costs O(1) per event and never grows.  It
buys nothing while a run succeeds; when a run *fails*, the buffer is
dumped to ``flight-<label>.json`` and becomes the black box: the
causal tail of what the process was doing when it died, without
re-running the campaign.

Two recorders exist in a sharded run:

* each **worker process** keeps one, fed by its span recorder and the
  fault injector; :func:`repro.runner.worker.execute_shard` dumps it
  as ``flight-shard-<id>.json`` when a shard execution raises (or,
  for the injected hard-kill fault, immediately before ``os._exit`` —
  approximating the persistent ring file a production recorder would
  keep);
* the **parent scheduler** keeps one recording dispatch, retries and
  gang recoveries, dumped as ``flight-parent.json`` on pool loss,
  global hang recovery, retry-budget exhaustion, or a
  :class:`~repro.runner.progress.ProgressOverflowError`.

Dump files are self-describing JSON: reason, label, pid, the buffer
capacity, and the surviving events oldest-first.  Timestamps are
``time.time()`` wall clock — flight dumps are forensic artefacts of
one run, never part of any determinism contract.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path

#: Default ring capacity: enough for the full span/fault tail of a
#: small study, a bounded sliver of a large one.
DEFAULT_CAPACITY = 512

#: How many structured events an attached EventLog contributes to a
#: dump: the causal tail, not the whole stream.
EVENT_TAIL_LIMIT = 64


class FlightRecorder:
    """Bounded ring buffer of observability events, dumpable on crash."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, label: str = "parent") -> None:
        if capacity <= 0:
            raise ValueError(f"flight recorder capacity must be positive: {capacity!r}")
        self.capacity = capacity
        self.label = label
        self._events: deque[dict] = deque(maxlen=capacity)
        self._recorded = 0
        self._event_log = None

    def attach_events(self, event_log) -> None:
        """Attach a structured :class:`~repro.obs.events.EventLog`.

        Every subsequent :meth:`dump` then embeds the log's bounded
        tail (``event_tail``), so a crash dump carries not just the
        recorder's own span/dispatch ring but the leveled, correlated
        events the process emitted on the way down.  Falsey logs
        (``NULL_EVENTS``) are ignored.
        """
        self._event_log = event_log if event_log else None

    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._events)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (>= len() once the ring wraps)."""
        return self._recorded

    def record(self, kind: str, /, **payload) -> None:
        """Append one event; the oldest event falls out when full.

        ``kind`` is positional-only so arbitrary payload keys —
        including ``kind`` itself — can never collide with it; the
        reserved ``t`` / ``kind`` fields win over payload duplicates.
        """
        event = dict(payload)
        event["t"] = time.time()
        event["kind"] = kind
        self._events.append(event)
        self._recorded += 1

    def events(self) -> list[dict]:
        """The surviving events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def dump(self, directory: str | Path, reason: str, **context) -> Path:
        """Write ``flight-<label>.json`` into ``directory``; returns it.

        Never raises: a failing flight dump must not mask the failure
        being recorded.  On write errors the intended path is returned
        anyway (the caller is already on an error path).
        """
        directory = Path(directory)
        path = directory / f"flight-{self.label}.json"
        document = {
            "format": "ecn-udp-flight/1",
            "label": self.label,
            "reason": reason,
            "pid": os.getpid(),
            "dumped_at": time.time(),
            "capacity": self.capacity,
            "events_recorded": self._recorded,
            "events": self.events(),
        }
        if self._event_log is not None:
            document["event_tail"] = self._event_log.tail(EVENT_TAIL_LIMIT)
            dropped = self._event_log.dropped()
            if dropped:
                document["event_dropped"] = dropped
        if context:
            document["context"] = context
        try:
            directory.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(document, indent=1))
        except OSError:  # pragma: no cover - disk-full / perms edge
            pass
        return path


def load_flight_dump(path: str | Path) -> dict:
    """Read and validate a flight dump; raises ValueError on mismatch."""
    document = json.loads(Path(path).read_text())
    if document.get("format") != "ecn-udp-flight/1":
        raise ValueError(f"not a flight dump: {path} ({document.get('format')!r})")
    return document
