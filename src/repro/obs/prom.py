"""Prometheus text exposition (format 0.0.4) for the metrics layer.

Two halves, deliberately kept in one module so they cannot drift:

* :func:`render_prometheus` turns a metric snapshot (the
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` document, plus
  optional extra gauges from the serve queue/scheduler) into the text
  exposition format scrapers understand — ``# HELP``/``# TYPE``
  comments, counter/gauge samples, and cumulative
  ``_bucket{le="..."}``/``_sum``/``_count`` triples for histograms.
* :func:`validate_exposition` is the in-repo format checker the tests
  and the serve-smoke CI lane run against live output: sample syntax,
  one TYPE per family, histogram bucket monotonicity and the
  ``+Inf``-equals-``_count`` invariant.

Determinism: rendering walks the snapshot's already-sorted keys and
formats numbers with :func:`repr`-stable rules, so the same snapshot
always renders to identical bytes — the exposition of a merged
sharded study equals the sequential one's.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping

from .metrics import _SUM_SCALE

#: Content type a conforming scraper expects for this format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Prefix namespacing every exported metric family.
METRIC_PREFIX = "ecnudp"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_SANITISE = re.compile(r"[^a-zA-Z0-9_:]")

_SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*\Z"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\["\\n])*)"\Z'
)

_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


class ExpositionError(ValueError):
    """The text is not valid Prometheus exposition format 0.0.4."""


def metric_name(name: str, prefix: str = METRIC_PREFIX) -> str:
    """Sanitise a dotted registry name into a legal metric name."""
    flat = _SANITISE.sub("_", name)
    full = f"{prefix}_{flat}" if prefix else flat
    if not _NAME_OK.match(full):
        full = "_" + full
    return full


def _format_value(value: float) -> str:
    """Stable sample-value formatting: ints bare, floats via repr."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    """``le`` label values: trim trailing zeros, keep exactness."""
    text = repr(float(bound))
    if text.endswith(".0"):
        text = text[:-2]
    return text


def render_prometheus(
    snapshot: Mapping,
    extra_gauges: Mapping[str, float] | None = None,
    prefix: str = METRIC_PREFIX,
) -> str:
    """Render a metric snapshot in text exposition format 0.0.4.

    ``extra_gauges`` carries instantaneous values that live outside
    the registry (queue depth, running studies, pool liveness); they
    render as gauges under the same prefix.  Output always ends with a
    newline, as the format requires of non-empty expositions.
    """
    lines: list[str] = []

    def family(name: str, kind: str, help_text: str) -> str:
        full = metric_name(name, prefix)
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} {kind}")
        return full

    for name, value in snapshot.get("counters", {}).items():
        full = family(name, "counter", f"Deterministic counter {name}")
        lines.append(f"{full} {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        full = family(name, "gauge", f"High-water gauge {name}")
        lines.append(f"{full} {_format_value(value)}")
    if extra_gauges:
        for name in sorted(extra_gauges):
            full = family(name, "gauge", f"Instantaneous gauge {name}")
            lines.append(f"{full} {_format_value(extra_gauges[name])}")
    for name, hist in snapshot.get("histograms", {}).items():
        full = family(name, "histogram", f"Fixed-bucket histogram {name}")
        cumulative = 0
        for bound, bucket in zip(hist.get("bounds", ()), hist.get("buckets", ())):
            cumulative += bucket
            lines.append(
                f'{full}_bucket{{le="{_format_bound(bound)}"}} {cumulative}'
            )
        count = hist.get("count", 0)
        lines.append(f'{full}_bucket{{le="+Inf"}} {count}')
        lines.append(
            f"{full}_sum {_format_value(hist.get('sum_fp', 0) / _SUM_SCALE)}"
        )
        lines.append(f"{full}_count {count}")
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Validator
# ----------------------------------------------------------------------
def _parse_sample(line: str, lineno: int) -> tuple[str, dict[str, str], float]:
    match = _SAMPLE_RE.match(line)
    if not match:
        raise ExpositionError(f"line {lineno}: not a valid sample: {line!r}")
    labels: dict[str, str] = {}
    raw = match.group("labels")
    if raw is not None and raw.strip():
        for part in raw.split(","):
            lmatch = _LABEL_RE.match(part.strip())
            if not lmatch:
                raise ExpositionError(
                    f"line {lineno}: malformed label {part.strip()!r}"
                )
            labels[lmatch.group("name")] = lmatch.group("value")
    value_text = match.group("value")
    try:
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        elif value_text == "NaN":
            value = float("nan")
        else:
            value = float(value_text)
    except ValueError:
        raise ExpositionError(
            f"line {lineno}: unparseable sample value {value_text!r}"
        ) from None
    return match.group("name"), labels, value


def _family_of(sample_name: str, types: Mapping[str, str]) -> str:
    """The metric family a sample belongs to, honouring suffixes."""
    for suffix in ("_bucket", "_sum", "_count"):
        base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
        if base and types.get(base) in ("histogram", "summary"):
            return base
    return sample_name


def validate_exposition(text: str) -> dict[str, str]:
    """Check ``text`` against exposition format 0.0.4.

    Returns ``{family: type}`` for every declared family.  Raises
    :class:`ExpositionError` on: malformed sample/label syntax,
    duplicate or post-sample TYPE lines, unknown types, samples typed
    as histograms missing their ``le`` label, non-monotonic cumulative
    buckets, or a ``+Inf`` bucket disagreeing with ``_count``.
    """
    types: dict[str, str] = {}
    sampled: set[str] = set()
    buckets: dict[str, list[tuple[float, float]]] = {}
    counts: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Free-form comments are legal; only HELP/TYPE are parsed.
                continue
            if parts[1] == "TYPE":
                if len(parts) < 4:
                    raise ExpositionError(f"line {lineno}: incomplete TYPE line")
                name, kind = parts[2], parts[3].strip()
                if kind not in _VALID_TYPES:
                    raise ExpositionError(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                if name in types:
                    raise ExpositionError(
                        f"line {lineno}: duplicate TYPE for {name!r}"
                    )
                if name in sampled:
                    raise ExpositionError(
                        f"line {lineno}: TYPE for {name!r} after its samples"
                    )
                types[name] = kind
            continue
        name, labels, value = _parse_sample(line, lineno)
        family = _family_of(name, types)
        sampled.add(family)
        if types.get(family) == "histogram":
            if name.endswith("_bucket"):
                if "le" not in labels:
                    raise ExpositionError(
                        f"line {lineno}: histogram bucket without le label"
                    )
                le = labels["le"]
                bound = float("inf") if le == "+Inf" else float(le)
                buckets.setdefault(family, []).append((bound, value))
            elif name.endswith("_count"):
                counts[family] = value
    for family, series in buckets.items():
        previous = None
        for bound, value in series:
            if previous is not None and value < previous:
                raise ExpositionError(
                    f"histogram {family!r}: cumulative buckets decrease"
                )
            previous = value
        if not series or series[-1][0] != float("inf"):
            raise ExpositionError(f"histogram {family!r}: missing +Inf bucket")
        if family in counts and series[-1][1] != counts[family]:
            raise ExpositionError(
                f"histogram {family!r}: +Inf bucket != _count "
                f"({series[-1][1]} vs {counts[family]})"
            )
    return types


def render_histogram_rows(snapshot: Mapping) -> list[list[str]]:
    """Histogram summary rows for text reports and dashboards."""
    rows: list[list[str]] = []
    for name, hist in snapshot.get("histograms", {}).items():
        count = hist.get("count", 0)
        mean = (hist.get("sum_fp", 0) / _SUM_SCALE / count) if count else 0.0
        lo = hist.get("min")
        hi = hist.get("max")
        rows.append(
            [
                name,
                str(count),
                f"{mean:.4f}",
                "-" if lo is None else f"{lo:.4f}",
                "-" if hi is None else f"{hi:.4f}",
            ]
        )
    return rows


def iter_histogram_names(snapshot: Mapping) -> Iterable[str]:
    """The histogram names present in a snapshot, sorted."""
    return sorted(snapshot.get("histograms", {}))
