"""Hierarchical spans: the causal timeline of a campaign.

Where :mod:`repro.obs.metrics` answers *how much* happened and
:mod:`repro.obs.telemetry` answers *how long the run took*, spans
answer *when and where inside the campaign* things happened: the
study decomposes into shards, shards into measurement epochs (one
trace or one traceroute sweep), epochs into per-server probes, probes
into protocol phases.  Every span carries two clocks:

* **simulated time** (``sim_start`` / ``sim_end``) — read from the
  event engine's clock, which :meth:`SyntheticInternet.begin_epoch`
  resets to a pure function of the epoch index.  Simulated times are
  therefore *deterministic*: identical between ``workers=0`` and
  ``workers=N`` for the same ``(scale, seed, chaos_seed)``.
* **wall-clock time** (``wall_ms``) — how long this process really
  spent inside the span.  Wall times are facts about one run and are
  excluded from the determinism contract (strip them with
  :func:`canonical_spans` before comparing trees).

Span identifiers are derived from ``(shard_id, sequence counter)``:
the ``n``-th span recorded while executing shard ``k``'s work is
``s<k>.<n>`` in *both* execution modes, because the sequential study
and a shard worker walk a shard's epochs in the same order.  That is
what makes the merged span forest of a sharded run bit-identical (in
canonical form) to the sequential run's — the property
``tests/obs/test_span_equivalence.py`` enforces.

The assembled span list exports to Chrome Trace Event Format
(:func:`export_chrome_trace`), loadable in Perfetto or
``chrome://tracing``: shards map to processes, the simulated clock is
the timeline, and wall-clock attribution rides in ``args``.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Iterable, Mapping

#: Span detail levels, coarse to fine.
DETAIL_EPOCH = "epoch"  # study / shard / trace / sweep
DETAIL_PROBE = "probe"  # ... plus per-server probes and protocol phases

#: Execution-context kinds (match the runner's shard kinds).
CTX_TRACES = "traces"
CTX_TRACEROUTES = "traceroutes"

#: Identifier of the synthetic study root span.
ROOT_SPAN_ID = "root"

#: Wall-clock fields excluded from the determinism contract.
_WALL_FIELDS = ("wall_ms",)


def span_id(shard_id: int, seq: int) -> str:
    """Deterministic span identifier: ``s<shard>.<seq>``."""
    return f"s{shard_id}.{seq}"


class Span:
    """One open or closed span (mutable while open)."""

    __slots__ = (
        "id",
        "parent",
        "kind",
        "name",
        "sim_start",
        "sim_end",
        "attrs",
        "events",
        "_wall_start",
        "_wall_ms",
    )

    def __init__(
        self,
        id: str,
        parent: str | None,
        kind: str,
        name: str,
        sim_start: float,
        attrs: dict | None = None,
    ) -> None:
        self.id = id
        self.parent = parent
        self.kind = kind
        self.name = name
        self.sim_start = sim_start
        self.sim_end = sim_start
        self.attrs = attrs or {}
        self.events: list[dict] = []
        self._wall_start = perf_counter()
        self._wall_ms = 0.0

    def close(self, sim_now: float) -> None:
        self.sim_end = sim_now
        self._wall_ms += (perf_counter() - self._wall_start) * 1000.0

    def add_event(self, name: str, sim_time: float, attrs: Mapping | None = None) -> None:
        event: dict = {"name": name, "sim_time": sim_time}
        if attrs:
            event["attrs"] = dict(attrs)
        self.events.append(event)

    def to_dict(self) -> dict:
        """JSON-safe export (wall-clock rounded to microseconds)."""
        document: dict = {
            "id": self.id,
            "parent": self.parent,
            "kind": self.kind,
            "name": self.name,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "wall_ms": round(self._wall_ms, 3),
        }
        if self.attrs:
            document["attrs"] = self.attrs
        if self.events:
            document["events"] = self.events
        return document


class SpanRecorder:
    """Records the span tree of one execution context.

    One recorder observes either a whole sequential study or a single
    shard inside a worker process.  ``context_map`` translates the
    measurement application's ``(kind, vantage, batch)`` coordinates
    into shard ids (built by :func:`repro.runner.shard.shard_context_map`);
    a worker passes the one-entry map for its own shard, the
    sequential study passes the full map, and both therefore mint
    identical ``(shard_id, seq)`` identifiers for identical work.

    Truthiness-gated like :class:`~repro.obs.metrics.MetricsRegistry`:
    instrumented call sites pay one predicate when no recorder is
    installed.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        detail: str = DETAIL_EPOCH,
        context_map: Mapping[tuple[str, str, int], int] | None = None,
        flight=None,
    ) -> None:
        if detail not in (DETAIL_EPOCH, DETAIL_PROBE):
            raise ValueError(f"unknown span detail level: {detail!r}")
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.detail = detail
        self._context_map = dict(context_map or {})
        self._flight = flight
        #: shard_id -> its (still open) shard span.
        self._shard_spans: dict[int, Span] = {}
        #: shard_id -> next sequence number.
        self._seq: dict[int, int] = {}
        #: Closed + open spans below the shard level, per shard.
        self._spans_by_shard: dict[int, list[Span]] = {}
        #: Open spans of the *current* context, innermost last.
        self._stack: list[Span] = []
        #: Events recorded while no span is open (fault installation
        #: runs inside ``begin_epoch``, before the epoch span opens);
        #: flushed into the next span that opens.
        self._pending_events: list[tuple[str, float, dict | None]] = []
        self._shard_id: int | None = None

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Context management
    # ------------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulated clock spans read their sim times from."""
        self._clock = clock

    def enter_context(self, kind: str, vantage_key: str, batch: int = 0) -> None:
        """Switch to the shard owning ``(kind, vantage, batch)`` work.

        Requires every non-shard span of the previous context to be
        closed (epochs never interleave).  Unknown coordinates fall
        back to shard 0 so a recorder without a map still works.
        """
        if self._stack:
            raise RuntimeError(
                "cannot switch span context with open spans: "
                + " > ".join(span.name for span in self._stack)
            )
        shard = self._context_map.get((kind, vantage_key, batch), 0)
        self._set_shard(shard)

    def _set_shard(self, shard_id: int) -> None:
        self._shard_id = shard_id
        if shard_id not in self._shard_spans:
            seq = self._next_seq(shard_id)
            span = Span(
                id=span_id(shard_id, seq),
                parent=ROOT_SPAN_ID,
                kind="shard",
                name=f"shard-{shard_id}",
                sim_start=0.0,
                attrs={"shard_id": shard_id},
            )
            self._shard_spans[shard_id] = span
            self._spans_by_shard[shard_id] = [span]
            if self._flight:
                self._flight.record("span-open", id=span.id, kind="shard", name=span.name)

    def _next_seq(self, shard_id: int) -> int:
        seq = self._seq.get(shard_id, 0)
        self._seq[shard_id] = seq + 1
        return seq

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, kind: str, name: str, **attrs):
        """Open a child span of the innermost open span (or the shard)."""
        if self._shard_id is None:
            self._set_shard(0)
        shard = self._shard_id
        parent = self._stack[-1].id if self._stack else self._shard_spans[shard].id
        span = Span(
            id=span_id(shard, self._next_seq(shard)),
            parent=parent,
            kind=kind,
            name=name,
            sim_start=self._clock(),
            attrs=dict(attrs) if attrs else None,
        )
        for event_name, sim_time, event_attrs in self._pending_events:
            span.add_event(event_name, sim_time, event_attrs)
        self._pending_events.clear()
        self._spans_by_shard[shard].append(span)
        self._stack.append(span)
        if self._flight:
            self._flight.record("span-open", id=span.id, kind=kind, name=name)
        try:
            yield span
        finally:
            span.close(self._clock())
            self._stack.pop()
            if self._flight:
                self._flight.record(
                    "span-close", id=span.id, name=name, sim_end=span.sim_end
                )

    def event(self, name: str, **attrs) -> None:
        """Attach a point event to the innermost open span.

        Events recorded between spans (fault installation during
        ``begin_epoch``) are buffered and flushed into the next span
        that opens — the epoch they impair.
        """
        sim_time = self._clock()
        if self._stack:
            self._stack[-1].add_event(name, sim_time, attrs or None)
        else:
            self._pending_events.append((name, sim_time, dict(attrs) if attrs else None))
        if self._flight:
            self._flight.record("span-event", name=name, attrs=dict(attrs))

    def annotate(self, **attrs) -> None:
        """Merge attributes into the innermost open span."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    @property
    def current_span_id(self) -> str | None:
        """Id of the innermost open span — the event-log correlation id."""
        return self._stack[-1].id if self._stack else None

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def shard_exports(self) -> dict[int, list[dict]]:
        """Per-shard span subtrees (shard span first), JSON-safe.

        The shard span's simulated interval is synthesized from its
        children — a sequential run executes one shard's epochs
        interleaved with other shards', so recording order cannot
        define it deterministically.
        """
        exports: dict[int, list[dict]] = {}
        for shard_id, spans in self._spans_by_shard.items():
            shard_span = self._shard_spans[shard_id]
            shard_span._wall_ms = sum(s._wall_ms for s in spans if s is not shard_span)
            children = [s for s in spans if s is not shard_span]
            if children:
                shard_span.sim_start = min(s.sim_start for s in children)
                shard_span.sim_end = max(s.sim_end for s in children)
            exports[shard_id] = [span.to_dict() for span in spans]
        return exports

    def export(self) -> list[dict]:
        """The full study span list (root first), for a sequential run."""
        return assemble_study_spans(self.shard_exports())


class NullSpanRecorder:
    """Disabled recorder: falsey, every operation a no-op."""

    __slots__ = ()
    detail = DETAIL_EPOCH

    def __bool__(self) -> bool:
        return False

    def bind_clock(self, clock) -> None:
        pass

    def enter_context(self, kind: str, vantage_key: str, batch: int = 0) -> None:
        pass

    @contextmanager
    def span(self, kind: str, name: str, **attrs):
        yield None

    def event(self, name: str, **attrs) -> None:
        pass

    def annotate(self, **attrs) -> None:
        pass

    @property
    def current_span_id(self) -> None:
        return None


#: Shared disabled-recorder sentinel.
NULL_SPANS = NullSpanRecorder()


# ----------------------------------------------------------------------
# Assembly and comparison
# ----------------------------------------------------------------------
def assemble_study_spans(shard_exports: Mapping[int, list[dict]]) -> list[dict]:
    """Merge per-shard span subtrees under a synthetic study root.

    This is the single assembly path shared by the sequential recorder
    (:meth:`SpanRecorder.export`) and the parallel runner's merge of
    worker-shipped subtrees, so the two modes produce structurally
    identical documents by construction: spans sorted by
    ``(shard_id, seq)``, root first.
    """
    spans: list[dict] = []
    for shard_id in sorted(shard_exports):
        spans.extend(shard_exports[shard_id])
    root: dict = {
        "id": ROOT_SPAN_ID,
        "parent": None,
        "kind": "study",
        "name": "study",
        "sim_start": min((s["sim_start"] for s in spans), default=0.0),
        "sim_end": max((s["sim_end"] for s in spans), default=0.0),
        "wall_ms": round(
            sum(s["wall_ms"] for s in spans if s["kind"] == "shard"), 3
        ),
    }
    return [root] + spans


def canonical_spans(spans: Iterable[Mapping]) -> list[dict]:
    """The deterministic projection of a span list.

    Strips wall-clock fields — facts about one run — leaving exactly
    the fields the sharded-equals-sequential contract covers.
    """
    canonical = []
    for span in spans:
        entry = {k: v for k, v in span.items() if k not in _WALL_FIELDS}
        canonical.append(entry)
    return canonical


def span_children(spans: Iterable[Mapping]) -> dict[str | None, list[dict]]:
    """Index a span list by parent id (document order preserved)."""
    children: dict[str | None, list[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent"), []).append(dict(span))
    return children


# ----------------------------------------------------------------------
# Chrome Trace Event Format export
# ----------------------------------------------------------------------
def chrome_trace_events(spans: Iterable[Mapping]) -> list[dict]:
    """Span list -> Chrome Trace Event Format event list.

    Shards become processes (``pid`` = shard id + 1, the study root is
    pid 0), the simulated clock is the timeline (µs), and point events
    become instant events.  Wall-clock attribution rides in ``args``.
    """
    events: list[dict] = []
    named_pids: set[int] = set()
    for span in spans:
        if span["kind"] == "study":
            pid = 0
        else:
            shard = int(span["id"][1:].split(".", 1)[0])
            pid = shard + 1
        if pid not in named_pids:
            named_pids.add(pid)
            label = "study" if pid == 0 else f"shard {pid - 1}"
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": label},
                }
            )
        args = dict(span.get("attrs", {}))
        args["wall_ms"] = span.get("wall_ms", 0.0)
        ts = span["sim_start"] * 1e6
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "ts": ts,
                "dur": max((span["sim_end"] - span["sim_start"]) * 1e6, 0.0),
                "name": span["name"],
                "cat": span["kind"],
                "args": args,
            }
        )
        for event in span.get("events", ()):
            events.append(
                {
                    "ph": "i",
                    "s": "p",
                    "pid": pid,
                    "tid": 0,
                    "ts": event["sim_time"] * 1e6,
                    "name": event["name"],
                    "cat": "event",
                    "args": dict(event.get("attrs", {})),
                }
            )
    return events


def export_chrome_trace(spans: Iterable[Mapping], path) -> dict:
    """Write ``trace.json`` (Chrome Trace Event Format); returns it.

    Load the file in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing`` to browse the campaign timeline.
    """
    import json
    from pathlib import Path

    document = {
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "generator": "repro.obs.spans"},
        "traceEvents": chrome_trace_events(spans),
    }
    Path(path).write_text(json.dumps(document, indent=1))
    return document
