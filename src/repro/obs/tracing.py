"""Packet-path tracing: tcpdump plus causality.

A :class:`PathTracer` records, for every packet matching its filter,
the ordered sequence of ``(hop, action, ECN before, ECN after)`` the
packet experienced — which router forwarded it, which middlebox
rewrote or dropped it, which queue CE-marked it, where an ICMP error
was born.  This is exactly the evidence the paper's forensic analyses
need (locating the hop that strips an ECT(0) mark, §4.2; explaining a
transient unreachability from packet-level events, §4.1) and that a
plain end-host capture cannot provide.

Tracing is opt-in and filtered: a disabled tracer is ``None`` at the
call sites, costing one predicate; an enabled one first runs its
match predicate, so unmatched traffic pays one call per hop.  Filters
are either any ``Callable[[IPv4Packet], bool]`` or a tcpdump-flavoured
expression parsed by :func:`parse_filter`::

    udp and dst 10.3.0.7
    icmp or (udp and ect)

Events carry the packet's ``(src, dst, protocol, ident)`` 4-tuple so a
flow's hops can be regrouped after the fact with :meth:`events_for`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..netsim.ecn import ECN
from ..netsim.ipv4 import IPv4Packet, PROTO_ICMP, PROTO_TCP, PROTO_UDP, format_addr

#: Filter predicate over raw packets.
PacketFilter = Callable[[IPv4Packet], bool]


class FilterError(ValueError):
    """A trace-filter expression could not be parsed."""


@dataclass(frozen=True)
class PathEvent:
    """One observation of a traced packet at one hop."""

    time: float
    src: int
    dst: int
    protocol: int
    ident: int
    hop: str
    action: str
    ecn_before: int
    ecn_after: int

    def describe(self) -> str:
        """One line of the causality log."""
        before = ECN(self.ecn_before).describe()
        after = ECN(self.ecn_after).describe()
        ecn = before if before == after else f"{before} -> {after}"
        return (
            f"{self.time:.6f} {format_addr(self.src)} > {format_addr(self.dst)} "
            f"ident={self.ident} @{self.hop} {self.action} [{ecn}]"
        )


class PathTracer:
    """Records the per-hop history of packets matching a filter.

    Parameters
    ----------
    match:
        Packet predicate (or expression string for
        :func:`parse_filter`); ``None`` traces every packet.
    limit:
        Hard cap on recorded events; once reached further events are
        counted in :attr:`dropped` instead of stored, so a too-broad
        filter degrades instead of exhausting memory.
    """

    def __init__(
        self,
        match: PacketFilter | str | None = None,
        limit: int = 100_000,
    ) -> None:
        self.match: PacketFilter | None = (
            parse_filter(match) if isinstance(match, str) else match
        )
        self.limit = limit
        self.events: list[PathEvent] = []
        self.dropped = 0
        #: Timestamp source for call sites that don't pass ``time``
        #: (installed by ``Network.set_observability``).
        self.clock: Callable[[], float] | None = None

    def __bool__(self) -> bool:
        return True

    def wants(self, packet: IPv4Packet) -> bool:
        """Whether ``packet`` should be recorded at this hop."""
        return self.match is None or self.match(packet)

    def record(
        self,
        packet: IPv4Packet,
        hop: str,
        action: str,
        ecn_before: ECN,
        ecn_after: ECN,
        time: float | None = None,
    ) -> None:
        """Append one hop observation for ``packet``."""
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        if time is None:
            time = self.clock() if self.clock is not None else 0.0
        self.events.append(
            PathEvent(
                time=time,
                src=packet.src,
                dst=packet.dst,
                protocol=packet.protocol,
                ident=packet.ident,
                hop=hop,
                action=action,
                ecn_before=int(ecn_before),
                ecn_after=int(ecn_after),
            )
        )

    # ------------------------------------------------------------------
    # Reading the log
    # ------------------------------------------------------------------
    def events_for(
        self,
        src: int | None = None,
        dst: int | None = None,
        ident: int | None = None,
    ) -> list[PathEvent]:
        """The recorded events of one flow, in observation order."""
        return [
            event
            for event in self.events
            if (src is None or event.src == src)
            and (dst is None or event.dst == dst)
            and (ident is None or event.ident == ident)
        ]

    def dump(self, max_lines: int | None = None) -> str:
        """The whole trace as text, one event per line."""
        events = self.events if max_lines is None else self.events[:max_lines]
        lines = [event.describe() for event in events]
        omitted = len(self.events) - len(events) + self.dropped
        if omitted > 0:
            lines.append(f"... {omitted} more events not shown")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)


# ----------------------------------------------------------------------
# Filter expressions
# ----------------------------------------------------------------------
_PROTO_TERMS = {"udp": PROTO_UDP, "tcp": PROTO_TCP, "icmp": PROTO_ICMP}
_ECN_TERMS = {
    "not-ect": (ECN.NOT_ECT,),
    "ect": (ECN.ECT_0, ECN.ECT_1, ECN.CE),
    "ect0": (ECN.ECT_0,),
    "ect1": (ECN.ECT_1,),
    "ce": (ECN.CE,),
}


def _parse_addr_token(token: str) -> int:
    if token.isdigit():
        return int(token)
    from ..netsim.ipv4 import parse_addr
    from ..netsim.errors import AddressError

    try:
        return parse_addr(token)
    except AddressError as exc:
        raise FilterError(f"bad address {token!r}") from exc


def _parse_term(tokens: list[str], index: int) -> tuple[PacketFilter, int]:
    token = tokens[index]
    if token in _PROTO_TERMS:
        proto = _PROTO_TERMS[token]
        return (lambda p: p.protocol == proto), index + 1
    if token in _ECN_TERMS:
        codepoints = _ECN_TERMS[token]
        return (lambda p: p.ecn in codepoints), index + 1
    if token in ("src", "dst"):
        if index + 1 >= len(tokens):
            raise FilterError(f"{token!r} needs an address")
        addr = _parse_addr_token(tokens[index + 1])
        if token == "src":
            return (lambda p: p.src == addr), index + 2
        return (lambda p: p.dst == addr), index + 2
    raise FilterError(f"unknown filter term {token!r}")


def parse_filter(expression: str) -> PacketFilter:
    """Compile a tcpdump-flavoured expression into a packet predicate.

    Grammar (lowest to highest precedence)::

        expr     = conjunct ("or" conjunct)*
        conjunct = term ("and" term)*
        term     = "udp" | "tcp" | "icmp"
                 | "ect" | "ect0" | "ect1" | "ce" | "not-ect"
                 | ("src" | "dst") <dotted-quad-or-int>

    Parentheses are not supported; the two-level and/or precedence
    covers every filter the CLI needs (``udp and dst 10.3.0.7``).
    """
    tokens = expression.replace("(", " ").replace(")", " ").lower().split()
    if not tokens:
        raise FilterError("empty filter expression")
    disjuncts: list[list[PacketFilter]] = [[]]
    index = 0
    expect_term = True
    while index < len(tokens):
        token = tokens[index]
        if token == "or":
            if expect_term:
                raise FilterError("misplaced 'or'")
            disjuncts.append([])
            index += 1
            expect_term = True
        elif token == "and":
            if expect_term:
                raise FilterError("misplaced 'and'")
            index += 1
            expect_term = True
        else:
            term, index = _parse_term(tokens, index)
            disjuncts[-1].append(term)
            expect_term = False
    if expect_term:
        raise FilterError(f"dangling operator in {expression!r}")

    def predicate(packet: IPv4Packet) -> bool:
        return any(
            all(term(packet) for term in conjunct) for conjunct in disjuncts
        )

    return predicate


def group_flows(events: Sequence[PathEvent]) -> dict[tuple[int, int, int, int], list[PathEvent]]:
    """Group events by ``(src, dst, protocol, ident)`` flow key,
    preserving per-flow observation order and first-seen flow order."""
    flows: dict[tuple[int, int, int, int], list[PathEvent]] = {}
    for event in events:
        flows.setdefault(
            (event.src, event.dst, event.protocol, event.ident), []
        ).append(event)
    return flows
