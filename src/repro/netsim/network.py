"""The network: moves packets across a topology under an event engine.

Two execution modes share identical per-hop semantics (router
middleboxes, TTL, link AQM/loss — see :mod:`repro.netsim.router` and
:mod:`repro.netsim.link`):

* ``"event"`` — every hop is a scheduled event.  Faithful queue-level
  interleaving; right for protocol unit tests and small scenarios.
* ``"fast"`` — the whole path is evaluated analytically when the packet
  is sent, and a single delivery event is scheduled.  Per-hop sampling
  (loss, AQM, middleboxes, TTL) is exactly the same code; only the
  event bookkeeping is folded.  This is what makes probing 2500
  servers from 13 vantage points tractable in pure Python.

ICMP errors generated mid-path (TTL expiry — the traceroute mechanism)
are routed back to the original source along the reverse path, subject
to that path's loss, because real traceroutes lose ICMP responses too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from heapq import heappush

from .ecn import ECN, ECT_CAPABLE
from .engine import Event, EventScheduler
from .errors import NetSimError, RoutingError
from .host import Host
from .ipv4 import IPv4Packet, PROTO_ICMP
from .link import Link
from .queues import AQMDecision, BernoulliLoss, NoCongestion, NoLoss
from .router import TRANSIT_DROP, Router
from .routing import RoutingTable
from .topology import Topology

FAST = "fast"
EVENT = "event"

#: Cache-miss sentinel (``None`` is a valid cached route result).
_MISSING = object()


@dataclass
class NetworkCounters:
    """Aggregate statistics, mostly for tests and sanity reports."""

    sent: int = 0
    delivered: int = 0
    dropped_middlebox: int = 0
    dropped_loss: int = 0
    dropped_aqm: int = 0
    dropped_no_route: int = 0
    dropped_host_filter: int = 0
    ttl_expired: int = 0
    icmp_generated: int = 0
    by_reason: dict[str, int] = field(default_factory=dict)

    def note(self, reason: str) -> None:
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1


class Network:
    """Binds a topology, a routing table, and an event scheduler."""

    def __init__(
        self,
        topology: Topology,
        scheduler: EventScheduler | None = None,
        seed: int = 0,
        mode: str = FAST,
        metrics=None,
        tracer=None,
    ) -> None:
        if mode not in (FAST, EVENT):
            raise NetSimError(f"unknown network mode {mode!r}")
        topology.validate()
        self.topology = topology
        self.scheduler = scheduler if scheduler is not None else EventScheduler()
        self.routing = RoutingTable(topology.graph)
        self.rng = random.Random(seed)
        self.mode = mode
        self.counters = NetworkCounters()
        #: Observability hooks (:mod:`repro.obs`); both falsey when
        #: disabled so instrumented paths pay one predicate each.
        self.metrics = metrics
        self.tracer = tracer
        self.scheduler.metrics = metrics
        if tracer is not None:
            tracer.clock = lambda: self.scheduler.now
        self._hop_cache: dict[tuple[str, str], tuple[tuple[Router, Link], ...]] = {}
        #: Destination route table: ``(src_router, dst_addr)`` straight
        #: to the hop sequence (or ``None`` for unroutable), skipping
        #: the per-send prefix-trie walk and hop-cache lookup.  Shares
        #: the hop cache's invalidation (topology change, blackhole set).
        self._route_cache: dict[tuple[str, int], tuple | None] = {}
        #: Reverse-path link sequences for ICMP returns, same lifecycle.
        self._icmp_return_cache: dict[tuple[str, str], tuple[Link, ...] | None] = {}
        #: Measurement epochs this network has begun (telemetry only;
        #: see :meth:`begin_epoch`).
        self.epoch_index: int = 0
        #: Routers currently blackholed by the fault layer; see
        #: :meth:`set_excluded_routers`.
        self.excluded_routers: frozenset[str] = frozenset()
        for index, host in enumerate(topology.hosts.values()):
            host.attach(self, rng_seed=seed ^ (0x9E3779B1 * (index + 1) & 0xFFFFFFFF))

    def set_observability(self, metrics=None, tracer=None) -> None:
        """(Un)install the metrics registry and packet tracer.

        Passing ``None`` for either restores the zero-cost disabled
        state; installation is instantaneous, so callers can scope
        observation to exactly one campaign on a long-lived world (the
        runner installs a fresh registry per shard this way).
        """
        self.metrics = metrics
        self.tracer = tracer
        self.scheduler.metrics = metrics
        if tracer is not None:
            tracer.clock = lambda: self.scheduler.now

    # ------------------------------------------------------------------
    # Path plumbing
    # ------------------------------------------------------------------
    def hops_between(self, src_router: str, dst_router: str) -> tuple[tuple[Router, Link], ...]:
        """Cached ``(router, egress_link)`` hop sequence, destination
        access router included as a final entry with ``link=None``."""
        key = (src_router, dst_router)
        cached = self._hop_cache.get(key)
        if cached is not None:
            return cached
        nodes = self.routing.path(src_router, dst_router)
        graph = self.topology.graph
        routers = self.topology.routers
        hops = []
        for here, there in zip(nodes, nodes[1:]):
            hops.append((routers[here], graph.edges[here, there]["link"]))
        hops.append((routers[nodes[-1]], None))
        result = tuple(hops)
        self._hop_cache[key] = result
        return result

    def invalidate_routes(self) -> None:
        """Drop cached routes/hops after a topology change."""
        self.routing.invalidate()
        self._hop_cache.clear()
        self._route_cache.clear()
        self._icmp_return_cache.clear()

    def set_excluded_routers(self, excluded: frozenset[str]) -> None:
        """Blackhole a set of routers: paths reroute around them.

        Models a control-plane event (router death + IGP reconvergence)
        rather than a per-packet impairment, so it is epoch-scoped by
        the fault layer.  The routing table's path cache and this
        network's derived route tables are invalidated when the
        excluded set changes; passing an empty set restores the built
        topology.
        """
        excluded = frozenset(excluded)
        if excluded == self.excluded_routers:
            return
        self.excluded_routers = excluded
        self.routing.set_excluded(excluded)
        self._hop_cache.clear()
        self._route_cache.clear()
        self._icmp_return_cache.clear()

    def begin_epoch(self) -> None:
        """Mark a measurement-epoch boundary for route-table bookkeeping.

        The per-epoch routing tables (:attr:`_route_cache` /
        :attr:`_icmp_return_cache`) are epoch-stable by construction:
        chaos blackholes arrive via :meth:`set_excluded_routers` at
        exactly this boundary (the fault injector is epoch-scoped), and
        that call clears the tables for precisely the epochs a new
        excluded set covers.  Epochs that share an excluded set
        therefore reuse fully warmed tables instead of rebuilding them
        — strictly cheaper than a per-epoch rebuild, with the same
        invalidation guarantee.  The counter feeds telemetry and tests.
        """
        self.epoch_index += 1

    def _route_to(self, src_router: str, dst_addr: int):
        """Fast-hop sequence from ``src_router`` to the host owning
        ``dst_addr``, or ``None`` when unroutable (cached either way).

        Entries are ``(router, link, l_clean, delay, jitter, p)``:
        the link's static cleanliness (uncongested queue, trivially
        sampled loss) and its sampling parameters are resolved once at
        route-build time, so the per-packet loop reads tuple slots
        instead of chasing ``link.aqm.__class__``-style attribute
        chains.  Safe to precompute because AQM/loss *models* are fixed
        at topology build; the only post-build mutation is
        ``link.fault`` (the chaos layer), which the send loop reads
        live.  Cache lifecycle matches :attr:`_hop_cache`.
        """
        key = (src_router, dst_addr)
        cache = self._route_cache
        hit = cache.get(key, _MISSING)
        if hit is not _MISSING:
            return hit
        dst_router = self.topology.router_for_addr(dst_addr)
        if dst_router is None:
            hops = None
        else:
            try:
                raw = self.hops_between(src_router, dst_router)
            except RoutingError:
                hops = None
            else:
                hops = tuple(self._fast_hop(router, link) for router, link in raw)
        cache[key] = hops
        return hops

    @staticmethod
    def _fast_hop(router: Router, link: Link | None):
        """Precomputed per-hop descriptor for the fast-path send loop."""
        if link is None:
            return (router, None, False, 0.0, 0.0, 0.0)
        loss = link.loss
        loss_cls = loss.__class__
        if loss_cls is NoLoss:
            p = 0.0
        elif loss_cls is BernoulliLoss:
            p = loss.probability
        else:
            return (router, link, False, link.delay, link.jitter, 0.0)
        clean = link.aqm.__class__ is NoCongestion
        return (router, link, clean, link.delay, link.jitter, p)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, packet: IPv4Packet, src_host: Host) -> None:
        """Inject a packet from ``src_host`` into the network.

        The caller keeps ownership of ``packet``: the network clones it
        once at this boundary and every downstream rewrite (TTL
        decrement, CE mark, bleaching) happens on — or replaces — the
        simulator-owned clone, never the caller's object.  That single
        copy is what lets the per-hop machinery mutate in place.
        """
        counters = self.counters
        counters.sent += 1
        # Inline the route-table hit; misses take the full lookup.
        hops = self._route_cache.get((src_host.router_id, packet.dst), _MISSING)
        if hops is _MISSING:
            hops = self._route_to(src_host.router_id, packet.dst)
        if hops is None:
            counters.dropped_no_route += 1
            counters.note("no-route")
            return
        packet = packet.copy()
        access = src_host.access
        loss = access.loss
        loss_cls = None if loss is None else loss.__class__
        if access.upstream_aqm is None and (
            loss is None or loss_cls is NoLoss or loss_cls is BernoulliLoss
        ):
            # Clean-ish access link (no upstream AQM, trivially sampled
            # loss): inline the draw — order and count matching
            # ``_cross_access`` exactly.
            access_delay = access.delay
            if loss_cls is BernoulliLoss:
                p = loss.probability
                if p > 0 and self.rng.random() < p:
                    if self.metrics:
                        self.metrics.incr("link.loss")
                    counters.dropped_loss += 1
                    counters.note("access-loss")
                    return
        else:
            survived, packet, access_delay = self._cross_access(
                src_host, packet, outbound=True
            )
            if not survived:
                return
        if self.mode == FAST:
            self._send_fast(packet, src_host, hops, access_delay)
        else:
            self.scheduler.schedule(
                access_delay, self._send_event, packet, src_host, hops, 0, access_delay
            ) if access_delay > 0 else self._send_event(
                packet, src_host, hops, index=0, elapsed=0.0
            )

    def _cross_access(
        self, host: Host, packet: IPv4Packet, outbound: bool
    ) -> tuple[bool, IPv4Packet, float]:
        """Sample a host's access link; returns (survived, packet, delay).

        ``packet`` is simulator-owned by the time it crosses an access
        link (cloned in :meth:`send`, or a delivered/ICMP reply
        object), so the upstream CE mark rewrites it in place.
        """
        access = host.access
        metrics = self.metrics
        if outbound and access.upstream_aqm is not None:
            decision = access.upstream_aqm.sample(
                self.rng, ECT_CAPABLE[packet.tos & 3]
            )
            if metrics:
                metrics.incr("queue." + decision)
            if decision == AQMDecision.DROP:
                self.counters.dropped_aqm += 1
                self.counters.note("access-aqm-drop")
                return False, packet, access.delay
            if decision == AQMDecision.MARK:
                packet.set_ecn(ECN.CE)
        loss = access.loss
        if loss is not None:
            # Inline the dominant loss models (same rng draw count and
            # order as their ``sample_loss``); others delegate.
            loss_cls = loss.__class__
            if loss_cls is NoLoss:
                lost = False
            elif loss_cls is BernoulliLoss:
                p = loss.probability
                lost = p > 0 and self.rng.random() < p
            else:
                lost = loss.sample_loss(self.rng)
            if lost:
                if metrics:
                    metrics.incr("link.loss")
                self.counters.dropped_loss += 1
                self.counters.note("access-loss")
                return False, packet, access.delay
        return True, packet, access.delay

    # ------------------------------------------------------------------
    # Fast mode: fold the whole path at send time
    # ------------------------------------------------------------------
    def _send_fast(
        self,
        packet: IPv4Packet,
        src_host: Host,
        hops: tuple[tuple, ...],
        access_delay: float = 0.0,
    ) -> None:
        rng = self.rng
        metrics = self.metrics
        tracer = self.tracer
        counters = self.counters
        elapsed = access_delay
        for router, link, l_clean, delay, jitter, p in hops:
            # Clean router hop (no middleboxes, no tracer, TTL fine):
            # one in-place decrement, no call.  The rng draw order is
            # untouched — this path never samples.
            if packet.ttl > 1 and not router.middleboxes and not tracer:
                packet.ttl -= 1
                if metrics:
                    metrics.incr("router.forwarded")
            else:
                verdict, packet, icmp, reason = router._transit(
                    packet, rng, metrics, tracer
                )
                if verdict:  # anything but TRANSIT_FORWARD (0)
                    if verdict == TRANSIT_DROP:
                        counters.dropped_middlebox += 1
                        counters.note(reason)
                    else:
                        counters.ttl_expired += 1
                        if icmp is not None:
                            self._return_icmp(
                                router, icmp, packet, src_host, elapsed
                            )
                    return
            if link is None:
                break
            # Clean link hop: uncongested queue, no active fault, no
            # tracer, trivially-sampled loss.  Draw order matches
            # ``Link._transit`` exactly: jitter first, then loss (and
            # the fault check before the draws never samples rng).
            fault = link.fault
            if l_clean and not tracer and (fault is None or not fault.active()):
                if jitter > 0.0:
                    delay += rng.random() * jitter
                if metrics:
                    metrics.incr("queue.pass")
                elapsed += delay
                if p > 0.0 and rng.random() < p:
                    if metrics:
                        metrics.incr("link.loss")
                    counters.dropped_loss += 1
                    counters.note("loss")
                    return
            else:
                delivered, delay, reason = link._transit(
                    packet, rng, metrics, tracer
                )
                elapsed += delay
                if not delivered:
                    if reason == "aqm-drop":
                        counters.dropped_aqm += 1
                    else:
                        counters.dropped_loss += 1
                    counters.note(reason)
                    return
        self._deliver_to_host(packet, elapsed)

    # ------------------------------------------------------------------
    # Event mode: one event per hop
    # ------------------------------------------------------------------
    def _send_event(
        self,
        packet: IPv4Packet,
        src_host: Host,
        hops: tuple[tuple, ...],
        index: int,
        elapsed: float,
    ) -> None:
        rng = self.rng
        counters = self.counters
        entry = hops[index]
        router, link = entry[0], entry[1]
        verdict, packet, icmp, reason = router._transit(
            packet, rng, self.metrics, self.tracer
        )
        if verdict:
            if verdict == TRANSIT_DROP:
                counters.dropped_middlebox += 1
                counters.note(reason)
            else:
                counters.ttl_expired += 1
                if icmp is not None:
                    # The clock already advanced by the forward delay in
                    # event mode; only the return path remains.
                    self._return_icmp(router, icmp, packet, src_host, 0.0)
            return
        if link is None:
            self._deliver_to_host(packet, 0.0)
            return
        delivered, delay, reason = link._transit(packet, rng, self.metrics, self.tracer)
        if not delivered:
            if reason == "aqm-drop":
                counters.dropped_aqm += 1
            else:
                counters.dropped_loss += 1
            counters.note(reason)
            return
        self.scheduler.schedule(
            delay,
            self._send_event,
            packet,
            src_host,
            hops,
            index + 1,
            elapsed + delay,
        )

    # ------------------------------------------------------------------
    # Delivery and ICMP return
    # ------------------------------------------------------------------
    def _deliver_to_host(self, packet: IPv4Packet, delay: float) -> None:
        host = self.topology.hosts.get(packet.dst)
        if host is None:
            self.counters.dropped_no_route += 1
            self.counters.note("no-host")
            return
        access = host.access
        loss = access.loss
        loss_cls = None if loss is None else loss.__class__
        if loss is None or loss_cls is NoLoss or loss_cls is BernoulliLoss:
            # Inbound crossings only sample loss (AQM is upstream-only);
            # inline the trivial models, draw order matching
            # ``_cross_access`` exactly.
            if loss_cls is BernoulliLoss:
                p = loss.probability
                if p > 0 and self.rng.random() < p:
                    if self.metrics:
                        self.metrics.incr("link.loss")
                    self.counters.dropped_loss += 1
                    self.counters.note("access-loss")
                    return
            delay += access.delay
        else:
            survived, packet, access_delay = self._cross_access(
                host, packet, outbound=False
            )
            if not survived:
                return
            delay += access_delay
        self.counters.delivered += 1
        # Inlined ``scheduler.schedule`` (this is the single hottest
        # schedule site; ``delay`` is a sum of non-negative link
        # delays, so the negative-delay guard is statically satisfied).
        scheduler = self.scheduler
        when = scheduler.clock._now + delay
        seq = scheduler._seq
        event = Event(when, seq, host.deliver, (packet, when), scheduler)
        scheduler._seq = seq + 1
        scheduler._pending += 1
        heappush(scheduler._heap, (when, seq, event))
        metrics = scheduler.metrics
        if metrics:
            metrics.incr("engine.scheduled")
            metrics.gauge_max("engine.heap_peak", len(scheduler._heap))

    def _icmp_return_links(
        self, origin_router: str, dst_router: str
    ) -> tuple[Link, ...] | None:
        """Cached reverse-path link sequence for ICMP returns.

        ``None`` (also cached) means no return route exists under the
        current excluded-router set.
        """
        key = (origin_router, dst_router)
        cache = self._icmp_return_cache
        hit = cache.get(key, _MISSING)
        if hit is not _MISSING:
            return hit
        links: tuple[Link, ...] | None
        try:
            nodes = self.routing.path(origin_router, dst_router)
        except RoutingError:
            links = None
        else:
            edges = self.topology.graph.edges
            links = tuple(
                edges[here, there]["link"] for here, there in zip(nodes, nodes[1:])
            )
        cache[key] = links
        return links

    def _return_icmp(
        self,
        origin: Router,
        icmp,
        original: IPv4Packet,
        src_host: Host,
        forward_elapsed: float,
    ) -> None:
        """Route an ICMP error from ``origin`` back to the prober.

        The reverse path contributes its propagation delays and loss
        sampling; middlebox chains and AQM are not re-applied to ICMP
        (errors are small, rarely policed by the behaviours we model,
        and never ECT-marked).
        """
        self.counters.icmp_generated += 1
        reply = IPv4Packet(
            src=origin.interface_addr,
            dst=original.src,
            protocol=PROTO_ICMP,
            payload=icmp.encode(),
        )
        links = self._icmp_return_links(origin.router_id, src_host.router_id)
        if links is None:
            self.counters.note("icmp-no-return-route")
            return
        rng = self.rng
        elapsed = forward_elapsed
        for link in links:
            elapsed += link.delay + (rng.random() * link.jitter if link.jitter > 0 else 0.0)
            if link.loss.sample_loss(rng):
                self.counters.note("icmp-return-loss")
                return
        survived, reply, access_delay = self._cross_access(src_host, reply, outbound=False)
        if not survived:
            self.counters.note("icmp-return-loss")
            return
        elapsed += access_delay
        self.scheduler.schedule(
            max(elapsed, 0.0),
            src_host.deliver,
            reply,
            self.scheduler.now + max(elapsed, 0.0),
        )

    def __repr__(self) -> str:
        return f"Network(mode={self.mode}, {self.topology!r})"
