"""The network: moves packets across a topology under an event engine.

Two execution modes share identical per-hop semantics (router
middleboxes, TTL, link AQM/loss — see :mod:`repro.netsim.router` and
:mod:`repro.netsim.link`):

* ``"event"`` — every hop is a scheduled event.  Faithful queue-level
  interleaving; right for protocol unit tests and small scenarios.
* ``"fast"`` — the whole path is evaluated analytically when the packet
  is sent, and a single delivery event is scheduled.  Per-hop sampling
  (loss, AQM, middleboxes, TTL) is exactly the same code; only the
  event bookkeeping is folded.  This is what makes probing 2500
  servers from 13 vantage points tractable in pure Python.

ICMP errors generated mid-path (TTL expiry — the traceroute mechanism)
are routed back to the original source along the reverse path, subject
to that path's loss, because real traceroutes lose ICMP responses too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .ecn import ECN
from .engine import EventScheduler
from .errors import NetSimError, RoutingError
from .host import Host
from .ipv4 import IPv4Packet, PROTO_ICMP
from .link import Link
from .queues import AQMDecision
from .router import HOP_DROP, HOP_TTL_EXPIRED, Router
from .routing import RoutingTable
from .topology import Topology

FAST = "fast"
EVENT = "event"


@dataclass
class NetworkCounters:
    """Aggregate statistics, mostly for tests and sanity reports."""

    sent: int = 0
    delivered: int = 0
    dropped_middlebox: int = 0
    dropped_loss: int = 0
    dropped_aqm: int = 0
    dropped_no_route: int = 0
    dropped_host_filter: int = 0
    ttl_expired: int = 0
    icmp_generated: int = 0
    by_reason: dict[str, int] = field(default_factory=dict)

    def note(self, reason: str) -> None:
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1


class Network:
    """Binds a topology, a routing table, and an event scheduler."""

    def __init__(
        self,
        topology: Topology,
        scheduler: EventScheduler | None = None,
        seed: int = 0,
        mode: str = FAST,
        metrics=None,
        tracer=None,
    ) -> None:
        if mode not in (FAST, EVENT):
            raise NetSimError(f"unknown network mode {mode!r}")
        topology.validate()
        self.topology = topology
        self.scheduler = scheduler if scheduler is not None else EventScheduler()
        self.routing = RoutingTable(topology.graph)
        self.rng = random.Random(seed)
        self.mode = mode
        self.counters = NetworkCounters()
        #: Observability hooks (:mod:`repro.obs`); both falsey when
        #: disabled so instrumented paths pay one predicate each.
        self.metrics = metrics
        self.tracer = tracer
        self.scheduler.metrics = metrics
        if tracer is not None:
            tracer.clock = lambda: self.scheduler.now
        self._hop_cache: dict[tuple[str, str], tuple[tuple[Router, Link], ...]] = {}
        #: Routers currently blackholed by the fault layer; see
        #: :meth:`set_excluded_routers`.
        self.excluded_routers: frozenset[str] = frozenset()
        for index, host in enumerate(topology.hosts.values()):
            host.attach(self, rng_seed=seed ^ (0x9E3779B1 * (index + 1) & 0xFFFFFFFF))

    def set_observability(self, metrics=None, tracer=None) -> None:
        """(Un)install the metrics registry and packet tracer.

        Passing ``None`` for either restores the zero-cost disabled
        state; installation is instantaneous, so callers can scope
        observation to exactly one campaign on a long-lived world (the
        runner installs a fresh registry per shard this way).
        """
        self.metrics = metrics
        self.tracer = tracer
        self.scheduler.metrics = metrics
        if tracer is not None:
            tracer.clock = lambda: self.scheduler.now

    # ------------------------------------------------------------------
    # Path plumbing
    # ------------------------------------------------------------------
    def hops_between(self, src_router: str, dst_router: str) -> tuple[tuple[Router, Link], ...]:
        """Cached ``(router, egress_link)`` hop sequence, destination
        access router included as a final entry with ``link=None``."""
        key = (src_router, dst_router)
        cached = self._hop_cache.get(key)
        if cached is not None:
            return cached
        nodes = self.routing.path(src_router, dst_router)
        graph = self.topology.graph
        routers = self.topology.routers
        hops = []
        for here, there in zip(nodes, nodes[1:]):
            hops.append((routers[here], graph.edges[here, there]["link"]))
        hops.append((routers[nodes[-1]], None))
        result = tuple(hops)
        self._hop_cache[key] = result
        return result

    def invalidate_routes(self) -> None:
        """Drop cached routes/hops after a topology change."""
        self.routing.invalidate()
        self._hop_cache.clear()

    def set_excluded_routers(self, excluded: frozenset[str]) -> None:
        """Blackhole a set of routers: paths reroute around them.

        Models a control-plane event (router death + IGP reconvergence)
        rather than a per-packet impairment, so it is epoch-scoped by
        the fault layer.  Both the routing table's path cache and this
        network's derived hop cache are invalidated when the excluded
        set changes; passing an empty set restores the built topology.
        """
        excluded = frozenset(excluded)
        if excluded == self.excluded_routers:
            return
        self.excluded_routers = excluded
        self.routing.set_excluded(excluded)
        self._hop_cache.clear()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, packet: IPv4Packet, src_host: Host) -> None:
        """Inject a packet from ``src_host`` into the network."""
        self.counters.sent += 1
        dst_router = self.topology.router_for_addr(packet.dst)
        if dst_router is None:
            self.counters.dropped_no_route += 1
            self.counters.note("no-route")
            return
        try:
            hops = self.hops_between(src_host.router_id, dst_router)
        except RoutingError:
            self.counters.dropped_no_route += 1
            self.counters.note("no-route")
            return
        survived, packet, access_delay = self._cross_access(
            src_host, packet, outbound=True
        )
        if not survived:
            return
        if self.mode == FAST:
            self._send_fast(packet, src_host, hops, access_delay)
        else:
            self.scheduler.schedule(
                access_delay, self._send_event, packet, src_host, hops, 0, access_delay
            ) if access_delay > 0 else self._send_event(
                packet, src_host, hops, index=0, elapsed=0.0
            )

    def _cross_access(
        self, host: Host, packet: IPv4Packet, outbound: bool
    ) -> tuple[bool, IPv4Packet, float]:
        """Sample a host's access link; returns (survived, packet, delay)."""
        access = host.access
        metrics = self.metrics
        if access.upstream_aqm is not None and outbound:
            decision = access.upstream_aqm.sample(self.rng, packet.ecn.is_ect)
            if metrics:
                metrics.incr(f"queue.{decision}")
            if decision == AQMDecision.DROP:
                self.counters.dropped_aqm += 1
                self.counters.note("access-aqm-drop")
                return False, packet, access.delay
            if decision == AQMDecision.MARK:
                packet = packet.with_ecn(ECN.CE)
        if access.loss is not None and access.loss.sample_loss(self.rng):
            if metrics:
                metrics.incr("link.loss")
            self.counters.dropped_loss += 1
            self.counters.note("access-loss")
            return False, packet, access.delay
        return True, packet, access.delay

    # ------------------------------------------------------------------
    # Fast mode: fold the whole path at send time
    # ------------------------------------------------------------------
    def _send_fast(
        self,
        packet: IPv4Packet,
        src_host: Host,
        hops: tuple[tuple[Router, Link], ...],
        access_delay: float = 0.0,
    ) -> None:
        rng = self.rng
        metrics = self.metrics
        tracer = self.tracer
        elapsed = access_delay
        for router, link in hops:
            result = router.process_transit(packet, rng, metrics, tracer)
            if result.verdict == HOP_DROP:
                self.counters.dropped_middlebox += 1
                self.counters.note(result.reason)
                return
            if result.verdict == HOP_TTL_EXPIRED:
                self.counters.ttl_expired += 1
                if result.icmp is not None:
                    self._return_icmp(router, result.icmp, packet, src_host, elapsed)
                return
            packet = result.packet
            if link is None:
                break
            outcome = link.transit(packet, rng, metrics, tracer)
            elapsed += outcome.delay
            if not outcome.delivered:
                if outcome.reason == "aqm-drop":
                    self.counters.dropped_aqm += 1
                else:
                    self.counters.dropped_loss += 1
                self.counters.note(outcome.reason)
                return
            packet = outcome.packet
        self._deliver_to_host(packet, elapsed)

    # ------------------------------------------------------------------
    # Event mode: one event per hop
    # ------------------------------------------------------------------
    def _send_event(
        self,
        packet: IPv4Packet,
        src_host: Host,
        hops: tuple[tuple[Router, Link], ...],
        index: int,
        elapsed: float,
    ) -> None:
        rng = self.rng
        router, link = hops[index]
        result = router.process_transit(packet, rng, self.metrics, self.tracer)
        if result.verdict == HOP_DROP:
            self.counters.dropped_middlebox += 1
            self.counters.note(result.reason)
            return
        if result.verdict == HOP_TTL_EXPIRED:
            self.counters.ttl_expired += 1
            if result.icmp is not None:
                # The clock already advanced by the forward delay in
                # event mode; only the return path remains.
                self._return_icmp(router, result.icmp, packet, src_host, 0.0)
            return
        packet = result.packet
        if link is None:
            self._deliver_to_host(packet, 0.0)
            return
        outcome = link.transit(packet, rng, self.metrics, self.tracer)
        if not outcome.delivered:
            if outcome.reason == "aqm-drop":
                self.counters.dropped_aqm += 1
            else:
                self.counters.dropped_loss += 1
            self.counters.note(outcome.reason)
            return
        self.scheduler.schedule(
            outcome.delay,
            self._send_event,
            outcome.packet,
            src_host,
            hops,
            index + 1,
            elapsed + outcome.delay,
        )

    # ------------------------------------------------------------------
    # Delivery and ICMP return
    # ------------------------------------------------------------------
    def _deliver_to_host(self, packet: IPv4Packet, delay: float) -> None:
        host = self.topology.host_by_addr(packet.dst)
        if host is None:
            self.counters.dropped_no_route += 1
            self.counters.note("no-host")
            return
        survived, packet, access_delay = self._cross_access(host, packet, outbound=False)
        if not survived:
            return
        delay += access_delay
        self.counters.delivered += 1
        self.scheduler.schedule(delay, host.deliver, packet, self.scheduler.now + delay)

    def _return_icmp(
        self,
        origin: Router,
        icmp,
        original: IPv4Packet,
        src_host: Host,
        forward_elapsed: float,
    ) -> None:
        """Route an ICMP error from ``origin`` back to the prober.

        The reverse path contributes its propagation delays and loss
        sampling; middlebox chains and AQM are not re-applied to ICMP
        (errors are small, rarely policed by the behaviours we model,
        and never ECT-marked).
        """
        self.counters.icmp_generated += 1
        reply = IPv4Packet(
            src=origin.interface_addr,
            dst=original.src,
            protocol=PROTO_ICMP,
            payload=icmp.encode(),
        )
        try:
            nodes = self.routing.path(origin.router_id, src_host.router_id)
        except RoutingError:
            self.counters.note("icmp-no-return-route")
            return
        rng = self.rng
        graph = self.topology.graph
        elapsed = forward_elapsed
        for here, there in zip(nodes, nodes[1:]):
            link: Link = graph.edges[here, there]["link"]
            elapsed += link.delay + (rng.random() * link.jitter if link.jitter > 0 else 0.0)
            if link.loss.sample_loss(rng):
                self.counters.note("icmp-return-loss")
                return
        survived, reply, access_delay = self._cross_access(src_host, reply, outbound=False)
        if not survived:
            self.counters.note("icmp-return-loss")
            return
        elapsed += access_delay
        self.scheduler.schedule(
            max(elapsed, 0.0),
            src_host.deliver,
            reply,
            self.scheduler.now + max(elapsed, 0.0),
        )

    def __repr__(self) -> str:
        return f"Network(mode={self.mode}, {self.topology!r})"
