"""Routers: per-hop packet processing.

A router applies its middlebox chain, enforces TTL, and (optionally)
originates ICMP errors.  The per-hop logic is a pure function of
(router state, packet, RNG) so the same code runs under the hop-by-hop
event engine and the analytic fast path — keeping the two execution
modes behaviourally identical is a core design requirement (see
DESIGN.md §2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .icmp import CLASSIC_QUOTE_PAYLOAD, ICMPMessage, time_exceeded
from .ipv4 import IPv4Packet
from .middlebox import Middlebox

#: Hop verdicts returned by :meth:`Router.process_transit`.
HOP_FORWARD = "forward"
HOP_DROP = "drop"
HOP_TTL_EXPIRED = "ttl-expired"

#: Integer verdicts used by the allocation-free :meth:`Router._transit`
#: core (the network's fast path); indexes into :data:`_VERDICT_NAMES`.
TRANSIT_FORWARD = 0
TRANSIT_DROP = 1
TRANSIT_TTL_EXPIRED = 2

_VERDICT_NAMES = (HOP_FORWARD, HOP_DROP, HOP_TTL_EXPIRED)


@dataclass
class HopResult:
    """Outcome of one router's transit processing.

    ``icmp`` is the error message the router originates (None when it
    does not respond, e.g. ICMP rate-limited or suppressed routers —
    the reason traceroutes show missing hops).
    """

    verdict: str
    packet: IPv4Packet
    icmp: ICMPMessage | None = None
    reason: str = ""


@dataclass
class Router:
    """A router (or layer-3 middlebox host) in the topology.

    Parameters
    ----------
    router_id:
        Unique name within the topology.
    asn:
        Autonomous system the router belongs to (drives the paper's
        AS-boundary analysis of where ECT marks are stripped).
    interface_addr:
        The address this router sources ICMP errors from; also the
        address a traceroute shows for this hop.
    middleboxes:
        Policy chain applied to transit packets, in order.
    sends_icmp_errors:
        False models routers/firewalls that silently discard expired
        packets; traceroute sees a missing hop.
    icmp_quote_payload:
        How many payload bytes past the IP header this router quotes
        in ICMP errors (8 = RFC 792 classic; larger = RFC 1812-style).
    icmp_response_rate:
        Probability of answering a TTL expiry (models ICMP rate
        limiting, which makes real traceroutes lossy).
    """

    router_id: str
    asn: int
    interface_addr: int
    middleboxes: list[Middlebox] = field(default_factory=list)
    sends_icmp_errors: bool = True
    icmp_quote_payload: int = CLASSIC_QUOTE_PAYLOAD
    icmp_response_rate: float = 1.0

    def add_middlebox(self, box: Middlebox) -> None:
        """Append a policy to the transit chain."""
        self.middleboxes.append(box)

    def process_transit(
        self,
        packet: IPv4Packet,
        rng: random.Random,
        metrics=None,
        tracer=None,
    ) -> HopResult:
        """Process a packet transiting this router.

        Order: middlebox chain first (a firewall in front of the
        routing engine), then TTL check, then decrement.  The ICMP
        quotation is built from the packet *after* middlebox rewrites,
        so an upstream bleached mark is visible in the quote — exactly
        the observable the paper's Section 4.2 measures.

        The packet handed in is treated as simulator-owned: the TTL
        decrement mutates it in place (middlebox rewrites still return
        fresh objects, so caller-held references never see a policy
        rewrite they didn't apply).  ``result.packet`` is the packet to
        keep using.

        ``metrics`` / ``tracer`` are the optional observability hooks
        (:mod:`repro.obs`); both are falsey when disabled, so the hop
        stays a pure function of (router state, packet, RNG) and pays
        one predicate per hook.  Instrumentation never draws from
        ``rng``.
        """
        verdict, packet, icmp, reason = self._transit(packet, rng, metrics, tracer)
        return HopResult(_VERDICT_NAMES[verdict], packet, icmp=icmp, reason=reason)

    def _transit(
        self,
        packet: IPv4Packet,
        rng: random.Random,
        metrics,
        tracer,
    ):
        """Allocation-free transit core: ``(verdict, packet, icmp, reason)``.

        The network's per-hop loop calls this directly so the dominant
        case — no middleboxes, TTL fine, observability off — costs one
        in-place decrement and a tuple, not a :class:`HopResult` (and,
        before this rewrite, a full ``dataclasses.replace`` copy).
        """
        if self.middleboxes or tracer:
            return self._transit_slow(packet, rng, metrics, tracer)
        if packet.ttl <= 1:
            icmp = None
            if self.sends_icmp_errors and (
                self.icmp_response_rate >= 1.0
                or rng.random() < self.icmp_response_rate
            ):
                # The quotation must show TTL 0 (the value on the wire
                # when the counter expired).  Flip it just for the
                # immediate encode inside time_exceeded, then restore,
                # so observers of the live object see the arrival TTL.
                saved_ttl = packet.ttl
                packet.ttl = 0
                icmp = time_exceeded(packet, self.icmp_quote_payload)
                packet.ttl = saved_ttl
            if metrics:
                metrics.incr("router.ttl_expired")
                if icmp is not None:
                    metrics.incr("router.icmp_generated")
            return TRANSIT_TTL_EXPIRED, packet, icmp, "ttl expired"
        packet.ttl -= 1
        if metrics:
            metrics.incr("router.forwarded")
        return TRANSIT_FORWARD, packet, None, ""

    def _transit_slow(
        self,
        packet: IPv4Packet,
        rng: random.Random,
        metrics,
        tracer,
    ):
        """Full transit path: middlebox chain and/or packet tracing."""
        traced = tracer and tracer.wants(packet)
        for box in self.middleboxes:
            before = packet.ecn
            verdict = box.process(packet, rng)
            if verdict.dropped:
                if metrics:
                    metrics.incr(f"middlebox.{box.name}")
                if traced:
                    tracer.record(
                        packet, self.router_id, f"drop:{box.name}", before, before
                    )
                return (
                    TRANSIT_DROP,
                    packet,
                    None,
                    f"{box.name}: {verdict.reason}",
                )
            if verdict.reason:
                if metrics:
                    metrics.incr(f"middlebox.{box.name}")
                if traced:
                    tracer.record(
                        verdict.packet,
                        self.router_id,
                        f"middlebox:{box.name}",
                        before,
                        verdict.packet.ecn,
                    )
            packet = verdict.packet

        if packet.ttl <= 1:
            icmp = None
            if self.sends_icmp_errors and (
                self.icmp_response_rate >= 1.0
                or rng.random() < self.icmp_response_rate
            ):
                saved_ttl = packet.ttl
                packet.ttl = 0
                icmp = time_exceeded(packet, self.icmp_quote_payload)
                packet.ttl = saved_ttl
            if metrics:
                metrics.incr("router.ttl_expired")
                if icmp is not None:
                    metrics.incr("router.icmp_generated")
            if traced:
                action = "ttl-expired" if icmp is None else "ttl-expired+icmp"
                tracer.record(packet, self.router_id, action, packet.ecn, packet.ecn)
            return TRANSIT_TTL_EXPIRED, packet, icmp, "ttl expired"

        packet.ttl -= 1
        if metrics:
            metrics.incr("router.forwarded")
        if traced:
            tracer.record(packet, self.router_id, "forward", packet.ecn, packet.ecn)
        return TRANSIT_FORWARD, packet, None, ""

    def __repr__(self) -> str:
        return f"Router({self.router_id}, AS{self.asn})"
