"""Loss models and active queue management.

Two families of behaviour live here:

* **Loss models** sample whether a transit packet is lost for reasons
  unrelated to congestion signalling (random drops, bursty wireless
  loss).  The paper's methodology — five retransmissions with one
  second timeouts — exists precisely to tolerate this, and its
  false-unreachable analysis depends on it being present.
* **AQM models** decide, per packet, whether a congested queue drops
  the packet or (for ECT-marked packets) sets ECN-CE instead, per
  RFC 3168.  The congested access link at one author's home is the
  paper's motivating example of how this shows up in measurements.

All models draw randomness from a caller-supplied ``random.Random`` so
simulations are reproducible, and all are usable both by the hop-by-hop
event engine and by the analytic fast path (they are pure samplers over
explicit state).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


class LossModel:
    """Base class: decides whether a packet is lost on a link."""

    def sample_loss(self, rng: random.Random) -> bool:
        """Return True if the packet should be dropped."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget any evolved state (burst/outage position).

        Called at measurement-epoch boundaries so that a shard's
        outcome is a pure function of the epoch seed; stateless models
        inherit this no-op.
        """


@dataclass
class NoLoss(LossModel):
    """A lossless link (typical of datacentre and core hops)."""

    def sample_loss(self, rng: random.Random) -> bool:
        return False


@dataclass
class BernoulliLoss(LossModel):
    """Independent per-packet loss with fixed probability."""

    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"loss probability out of range: {self.probability}")

    def sample_loss(self, rng: random.Random) -> bool:
        return self.probability > 0 and rng.random() < self.probability


@dataclass
class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (good/bad), the classic wireless model.

    ``p_good_to_bad`` / ``p_bad_to_good`` are the per-packet transition
    probabilities; ``loss_good`` / ``loss_bad`` the loss rates within
    each state.  Used for the University of Glasgow wireless vantage,
    whose traces the paper notes show more variation than wired ones.
    """

    p_good_to_bad: float = 0.01
    p_bad_to_good: float = 0.2
    loss_good: float = 0.001
    loss_bad: float = 0.25
    in_bad_state: bool = field(default=False, compare=False)

    def sample_loss(self, rng: random.Random) -> bool:
        if self.in_bad_state:
            if rng.random() < self.p_bad_to_good:
                self.in_bad_state = False
        else:
            if rng.random() < self.p_good_to_bad:
                self.in_bad_state = True
        rate = self.loss_bad if self.in_bad_state else self.loss_good
        return rate > 0 and rng.random() < rate

    def steady_state_loss(self) -> float:
        """Long-run average loss rate (for calibration and tests)."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0:
            return self.loss_good
        frac_bad = self.p_good_to_bad / denom
        return frac_bad * self.loss_bad + (1 - frac_bad) * self.loss_good

    def reset(self) -> None:
        self.in_bad_state = False


@dataclass
class TimedOutageLoss(LossModel):
    """Wall-clock outage bursts over a base loss rate.

    Models wireless access the way campus WiFi actually fails: mostly
    a small random loss rate, punctuated by outages lasting seconds
    (interference, roaming, contention) during which *everything* is
    lost.  Outages arrive as a Poisson process of ``outage_rate`` per
    second with exponentially distributed durations.

    Because an outage spans several seconds of simulated time, it can
    swallow an entire 5-retransmission probe sequence — which is what
    produces the paper's transiently unreachable servers and the
    elevated wireless row of Table 2, effects a per-packet burst model
    cannot reproduce.

    The model needs the simulation clock: call :meth:`bind_clock`
    before first use (the scenario builder does this for all vantage
    access links).
    """

    base: float = 0.002
    outage_rate: float = 1.0 / 240.0  # one outage every ~4 minutes
    outage_duration: float = 5.0  # mean seconds
    #: Loss rate *during* an outage.  Deliberately below 1.0: real
    #: wireless outages are heavy contention, not silence, and the
    #: partial survival is what makes one probe sequence succeed while
    #: its neighbour's five retransmissions all die — the transient
    #: differential reachability of §4.1.
    outage_loss: float = 0.8
    _clock: object = field(default=None, repr=False, compare=False)
    _next_outage: float = field(default=-1.0, repr=False, compare=False)
    _outage_until: float = field(default=0.0, repr=False, compare=False)

    def bind_clock(self, clock) -> None:
        """Attach the simulation clock (required before sampling)."""
        self._clock = clock

    def sample_loss(self, rng: random.Random) -> bool:
        if self._clock is None:
            raise RuntimeError("TimedOutageLoss has no clock bound")
        now = self._clock.now
        if self._next_outage < 0:
            self._next_outage = now + rng.expovariate(self.outage_rate)
        # Advance the outage schedule up to the present.
        while now >= self._next_outage:
            self._outage_until = self._next_outage + rng.expovariate(
                1.0 / self.outage_duration
            )
            self._next_outage = self._outage_until + rng.expovariate(
                self.outage_rate
            )
        if now < self._outage_until:
            return rng.random() < self.outage_loss
        return self.base > 0 and rng.random() < self.base

    def in_outage(self, now: float) -> bool:
        """Whether ``now`` falls inside the current outage window."""
        return now < self._outage_until

    def reset(self) -> None:
        self._next_outage = -1.0
        self._outage_until = 0.0


class AQMDecision:
    """Outcome of an AQM check: pass, mark (CE), or drop."""

    PASS = "pass"
    MARK = "mark"
    DROP = "drop"


class AQMModel:
    """Base class: congestion response of a queue to one packet."""

    def sample(self, rng: random.Random, ect_capable: bool) -> str:
        """Return one of the :class:`AQMDecision` constants.

        ``ect_capable`` tells the queue whether the packet carries
        ECT(0)/ECT(1); per RFC 3168 a marking AQM sets CE on those and
        drops the rest.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Forget evolved queue state (see :meth:`LossModel.reset`)."""


@dataclass
class NoCongestion(AQMModel):
    """An uncongested queue: every packet passes."""

    def sample(self, rng: random.Random, ect_capable: bool) -> str:
        return AQMDecision.PASS


@dataclass
class StaticCongestion(AQMModel):
    """Congestion with a fixed signalling probability.

    With probability ``signal_probability`` the queue signals
    congestion for this packet: CE-mark if the packet is ECT-capable
    (and the queue supports ECN), drop otherwise.  This is the
    steady-state abstraction of RED used on calibrated scenario links.
    """

    signal_probability: float
    ecn_capable_queue: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.signal_probability <= 1.0:
            raise ValueError(
                f"signal probability out of range: {self.signal_probability}"
            )

    def sample(self, rng: random.Random, ect_capable: bool) -> str:
        if self.signal_probability <= 0 or rng.random() >= self.signal_probability:
            return AQMDecision.PASS
        if ect_capable and self.ecn_capable_queue:
            return AQMDecision.MARK
        return AQMDecision.DROP


@dataclass
class REDQueue(AQMModel):
    """Random Early Detection with an EWMA of queue occupancy.

    A faithful (if simplified) RED: the average queue size is an EWMA
    updated per packet from the instantaneous ``queue_len`` the caller
    maintains; between ``min_threshold`` and ``max_threshold`` the
    signalling probability ramps linearly to ``max_probability``, and
    above ``max_threshold`` every packet is signalled.  When
    ``ecn_capable_queue`` is set, ECT packets are CE-marked rather than
    dropped (RFC 3168 §5).
    """

    min_threshold: float = 5.0
    max_threshold: float = 15.0
    max_probability: float = 0.1
    weight: float = 0.2
    ecn_capable_queue: bool = True
    avg_queue: float = field(default=0.0, compare=False)
    queue_len: int = field(default=0, compare=False)

    def observe_queue(self, instantaneous_len: int) -> None:
        """Feed the current instantaneous queue length into the EWMA."""
        self.queue_len = instantaneous_len
        self.avg_queue += self.weight * (instantaneous_len - self.avg_queue)

    def signal_probability(self) -> float:
        """Current probability that a packet is marked/dropped."""
        if self.avg_queue < self.min_threshold:
            return 0.0
        if self.avg_queue >= self.max_threshold:
            return 1.0
        span = self.max_threshold - self.min_threshold
        return self.max_probability * (self.avg_queue - self.min_threshold) / span

    def sample(self, rng: random.Random, ect_capable: bool) -> str:
        prob = self.signal_probability()
        if prob <= 0 or rng.random() >= prob:
            return AQMDecision.PASS
        if ect_capable and self.ecn_capable_queue:
            return AQMDecision.MARK
        return AQMDecision.DROP

    def reset(self) -> None:
        self.avg_queue = 0.0
        self.queue_len = 0
