"""Middlebox behaviours that interfere with ECN.

The paper's central question is whether middleboxes treat ECT-marked
UDP as suspicious.  Each behaviour observed (or hypothesised) in the
paper is a small policy object attached to a router:

* :class:`ECTBleacher` — rewrites ECT(0)/ECT(1) back to not-ECT but
  forwards the packet.  Section 4.2 finds ~1143 of 155 439 hops doing
  this, 125 of them only *sometimes* (``probability < 1``).  By
  default it also bleaches CE → not-ECT (``bleach_ce=True``) —
  destroying the congestion signal itself, the exact event QUIC's
  §13.4 count validation exists to detect; set ``bleach_ce=False``
  for gear that only normalises ECT capability bits and lets CE
  through.
* :class:`ECTDropper` — silently discards ECT-marked packets, for UDP
  only or for all protocols.  Section 4.1's dozen persistently
  ECT-unreachable servers sit behind UDP-scoped instances; Section 4.4
  shows most of those still pass ECT-marked **TCP**, which is exactly
  the ``protocols={PROTO_UDP}`` scoping.
* :class:`NotECTDropper` — the oddballs of Figure 3b: servers
  reachable with ECT(0) but not with not-ECT packets (two of them,
  run by the Phoenix Public Library, only from EC2 source addresses —
  expressed with ``src_prefixes``).
* :class:`TOSBleacher` — zeroes the whole TOS byte (DSCP + ECN), a
  behaviour older "TOS-washing" gear exhibits.

Every policy filters on protocol, destination addresses and source
prefixes, so scenario code can scope interference to specific servers
or vantage points, matching the paper's per-path observations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from .ecn import ECN
from .ipv4 import IPv4Packet, Prefix, PROTO_TCP, PROTO_UDP

#: Verdict constants returned by :meth:`Middlebox.process`.
FORWARD = "forward"
DROP = "drop"


@dataclass
class Verdict:
    """Result of passing a packet through one middlebox."""

    action: str
    packet: IPv4Packet
    reason: str = ""

    @property
    def dropped(self) -> bool:
        return self.action == DROP


@dataclass
class Middlebox:
    """Base middlebox: match conditions plus an action hook.

    Subclasses override :meth:`apply`; this base class handles scoping.
    ``probability`` makes the behaviour intermittent (route-flap or
    load-balancer effects in the paper's "sometimes strip" hops).
    """

    name: str = "middlebox"
    protocols: frozenset[int] | None = None
    dst_addrs: frozenset[int] | None = None
    src_prefixes: tuple[Prefix, ...] | None = None
    probability: float = 1.0

    def matches(self, packet: IPv4Packet) -> bool:
        """True if the packet is in scope for this policy."""
        if self.protocols is not None and packet.protocol not in self.protocols:
            return False
        if self.dst_addrs is not None and packet.dst not in self.dst_addrs:
            return False
        if self.src_prefixes is not None and not any(
            prefix.contains(packet.src) for prefix in self.src_prefixes
        ):
            return False
        return True

    def process(self, packet: IPv4Packet, rng: random.Random) -> Verdict:
        """Apply the policy (subject to scope and probability)."""
        if not self.matches(packet):
            return Verdict(FORWARD, packet)
        if self.probability < 1.0 and rng.random() >= self.probability:
            return Verdict(FORWARD, packet)
        return self.apply(packet)

    def apply(self, packet: IPv4Packet) -> Verdict:
        raise NotImplementedError


@dataclass
class ECTBleacher(Middlebox):
    """Rewrite ECT(0)/ECT(1) to not-ECT; forward the packet.

    ``bleach_ce`` controls what happens to CE-marked packets: True
    (the default, matching the golden-pinned behaviour) erases the
    congestion signal too; False forwards CE untouched, modelling
    middleboxes that only strip the capability codepoints.
    """

    name: str = "ect-bleacher"
    bleach_ce: bool = True

    def apply(self, packet: IPv4Packet) -> Verdict:
        if packet.ecn is ECN.NOT_ECT:
            return Verdict(FORWARD, packet)
        if packet.ecn is ECN.CE and not self.bleach_ce:
            return Verdict(FORWARD, packet)
        return Verdict(
            FORWARD,
            packet.with_ecn(ECN.NOT_ECT),
            reason="ECN field bleached to not-ECT",
        )


@dataclass
class ECTDropper(Middlebox):
    """Silently drop packets carrying any ECT/CE codepoint."""

    name: str = "ect-dropper"

    def apply(self, packet: IPv4Packet) -> Verdict:
        if packet.ecn is ECN.NOT_ECT:
            return Verdict(FORWARD, packet)
        return Verdict(DROP, packet, reason="ECT-marked packet dropped")


@dataclass
class NotECTDropper(Middlebox):
    """Drop packets whose ECN field is not-ECT (the Figure 3b oddity)."""

    name: str = "not-ect-dropper"

    def apply(self, packet: IPv4Packet) -> Verdict:
        if packet.ecn is not ECN.NOT_ECT:
            return Verdict(FORWARD, packet)
        return Verdict(DROP, packet, reason="not-ECT packet dropped")


@dataclass
class ProtocolBlackhole(Middlebox):
    """Silently drop every in-scope packet, regardless of marking.

    Models a service (or box) that has gone entirely dark for some
    traffic class — e.g. an NTP daemon browning out while the host's
    IP stays live.  The fault-injection layer scopes instances by
    protocol and wraps them in time windows (:mod:`repro.faults`).
    """

    name: str = "blackhole"

    def apply(self, packet: IPv4Packet) -> Verdict:
        return Verdict(DROP, packet, reason="blackholed")


@dataclass
class TOSBleacher(Middlebox):
    """Zero the entire TOS byte (clears DSCP and ECN together)."""

    name: str = "tos-bleacher"

    def apply(self, packet: IPv4Packet) -> Verdict:
        if packet.tos == 0:
            return Verdict(FORWARD, packet)
        cleaned = packet.replace(tos=0)
        return Verdict(FORWARD, cleaned, reason="TOS byte zeroed")


def udp_ect_firewall(
    dst_addrs: Iterable[int],
    name: str = "udp-ect-firewall",
    probability: float = 1.0,
) -> ECTDropper:
    """A destination-scoped firewall dropping ECT-marked **UDP** only.

    This is the paper's inferred explanation for servers reachable with
    not-ECT UDP but never with ECT(0) UDP, while still negotiating ECN
    over TCP (Section 4.4).
    """
    return ECTDropper(
        name=name,
        protocols=frozenset({PROTO_UDP}),
        dst_addrs=frozenset(dst_addrs),
        probability=probability,
    )


def any_ect_firewall(
    dst_addrs: Iterable[int],
    name: str = "any-ect-firewall",
    probability: float = 1.0,
) -> ECTDropper:
    """A destination-scoped firewall dropping ECT marks on UDP and TCP."""
    return ECTDropper(
        name=name,
        protocols=frozenset({PROTO_UDP, PROTO_TCP}),
        dst_addrs=frozenset(dst_addrs),
        probability=probability,
    )
