"""Unidirectional links between routers.

A link contributes propagation delay (plus optional jitter), a loss
model, and an AQM behaviour.  Links are unidirectional so asymmetric
paths — and asymmetric impairments, such as a congested upstream on a
home ADSL line — can be modelled; :func:`link_pair` builds the common
symmetric case.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field

from .ecn import DSCP_MASK, ECN, ECT_CAPABLE
from .ipv4 import IPv4Packet
from .queues import (
    AQMDecision,
    AQMModel,
    BernoulliLoss,
    LossModel,
    NoCongestion,
    NoLoss,
    StaticCongestion,
)


@dataclass
class LinkOutcome:
    """Result of offering one packet to a link."""

    delivered: bool
    packet: IPv4Packet
    delay: float
    reason: str = ""


@dataclass
class Link:
    """A unidirectional link from ``src`` router to ``dst`` router.

    ``delay`` is the one-way propagation delay in seconds; ``jitter``
    adds a uniform random component in ``[0, jitter]``.  ``loss`` and
    ``aqm`` supply the impairment behaviour; both default to clean.
    """

    src: str
    dst: str
    delay: float = 0.005
    jitter: float = 0.0
    loss: LossModel = field(default_factory=NoLoss)
    aqm: AQMModel = field(default_factory=NoCongestion)
    #: Windowed impairment installed by :mod:`repro.faults` (a
    #: :class:`~repro.faults.windows.LinkFault`); ``None`` in normal
    #: operation, so an unfaulted link pays one attribute check.
    fault: object | None = field(default=None, compare=False, repr=False)

    def transit(
        self,
        packet: IPv4Packet,
        rng: random.Random,
        metrics=None,
        tracer=None,
    ) -> LinkOutcome:
        """Sample the fate of ``packet`` crossing this link.

        Order of operations matches a real egress interface: the AQM
        inspects the packet as it is enqueued (possibly dropping or
        CE-marking it), then the wire may lose it.  A CE mark rewrites
        only the ECN bits, preserving DSCP (RFC 3168) — **in place**:
        link transit operates on simulator-owned packets (see
        :class:`~repro.netsim.ipv4.IPv4Packet`), so ``outcome.packet``
        is the same object that was passed in.

        ``metrics`` / ``tracer`` are the :mod:`repro.obs` hooks; falsey
        when disabled (one predicate each), and never sampling ``rng``.
        """
        delivered, delay, reason = self._transit(packet, rng, metrics, tracer)
        return LinkOutcome(delivered, packet, delay, reason)

    def _transit(
        self,
        packet: IPv4Packet,
        rng: random.Random,
        metrics,
        tracer,
    ) -> tuple[bool, float, str]:
        """Allocation-free transit core: ``(delivered, delay, reason)``.

        The dominant links in a study are clean (no fault, uncongested
        queue, no or Bernoulli loss), so those samplers are inlined —
        drawing from ``rng`` in exactly the order and count the model
        objects themselves would — and the per-hop cost is a handful of
        attribute reads instead of three method calls plus a
        :class:`LinkOutcome`.
        """
        delay = self.delay
        jitter = self.jitter
        if jitter > 0:
            delay += rng.random() * jitter
        if tracer:
            return self._transit_traced(packet, rng, metrics, tracer, delay)
        fault = self.fault
        if fault is not None and fault.active():
            # A flapping physical layer loses (or delays) the packet
            # before any queueing discipline sees it.
            delay += fault.extra_delay
            if fault.sample_loss(rng):
                if metrics:
                    metrics.incr("faults.link_flap_drop")
                return False, delay, "fault-flap"
        aqm = self.aqm
        aqm_cls = aqm.__class__
        if aqm_cls is NoCongestion:
            if metrics:
                metrics.incr("queue.pass")
        else:
            if aqm_cls is StaticCongestion:
                sp = aqm.signal_probability
                if sp <= 0 or rng.random() >= sp:
                    decision = AQMDecision.PASS
                elif ECT_CAPABLE[packet.tos & 3] and aqm.ecn_capable_queue:
                    decision = AQMDecision.MARK
                else:
                    decision = AQMDecision.DROP
            else:
                decision = aqm.sample(rng, ECT_CAPABLE[packet.tos & 3])
            if metrics:
                metrics.incr("queue." + decision)
            if decision == AQMDecision.DROP:
                return False, delay, "aqm-drop"
            if decision == AQMDecision.MARK:
                packet.tos = (packet.tos & DSCP_MASK) | 3
        loss = self.loss
        loss_cls = loss.__class__
        if loss_cls is NoLoss:
            return True, delay, ""
        if loss_cls is BernoulliLoss:
            p = loss.probability
            if p > 0 and rng.random() < p:
                if metrics:
                    metrics.incr("link.loss")
                return False, delay, "loss"
            return True, delay, ""
        if loss.sample_loss(rng):
            if metrics:
                metrics.incr("link.loss")
            return False, delay, "loss"
        return True, delay, ""

    def _transit_traced(
        self,
        packet: IPv4Packet,
        rng: random.Random,
        metrics,
        tracer,
        delay: float,
    ) -> tuple[bool, float, str]:
        """Transit with a live packet tracer (jitter already sampled)."""
        traced = tracer.wants(packet)
        hop = f"{self.src}->{self.dst}" if traced else ""
        fault = self.fault
        if fault is not None and fault.active():
            delay += fault.extra_delay
            if fault.sample_loss(rng):
                if metrics:
                    metrics.incr("faults.link_flap_drop")
                if traced:
                    tracer.record(packet, hop, "fault-flap", packet.ecn, packet.ecn)
                return False, delay, "fault-flap"
        decision = self.aqm.sample(rng, ECT_CAPABLE[packet.tos & 3])
        if metrics:
            metrics.incr("queue." + decision)
        if decision == AQMDecision.DROP:
            if traced:
                tracer.record(packet, hop, "aqm-drop", packet.ecn, packet.ecn)
            return False, delay, "aqm-drop"
        if decision == AQMDecision.MARK:
            before = packet.ecn
            packet.set_ecn(ECN.CE)
            if traced:
                tracer.record(packet, hop, "aqm-mark", before, packet.ecn)
        if self.loss.sample_loss(rng):
            if metrics:
                metrics.incr("link.loss")
            if traced:
                tracer.record(packet, hop, "loss", packet.ecn, packet.ecn)
            return False, delay, "loss"
        return True, delay, ""

    def __repr__(self) -> str:
        return f"Link({self.src} -> {self.dst}, delay={self.delay * 1000:.1f}ms)"


def link_pair(
    a: str,
    b: str,
    delay: float = 0.005,
    jitter: float = 0.0,
    loss: LossModel | None = None,
    aqm: AQMModel | None = None,
    reverse_loss: LossModel | None = None,
    reverse_aqm: AQMModel | None = None,
) -> tuple[Link, Link]:
    """Build the two directions of a symmetric link.

    Distinct loss/AQM objects are used per direction (stateful models
    such as Gilbert-Elliott must not share state across directions);
    pass ``reverse_*`` to make the directions differ.
    """
    forward = Link(
        a,
        b,
        delay=delay,
        jitter=jitter,
        loss=loss if loss is not None else NoLoss(),
        aqm=aqm if aqm is not None else NoCongestion(),
    )
    if reverse_loss is None:
        reverse_loss = copy.deepcopy(loss) if loss is not None else NoLoss()
    if reverse_aqm is None:
        reverse_aqm = copy.deepcopy(aqm) if aqm is not None else NoCongestion()
    backward = Link(b, a, delay=delay, jitter=jitter, loss=reverse_loss, aqm=reverse_aqm)
    return forward, backward
