"""Unidirectional links between routers.

A link contributes propagation delay (plus optional jitter), a loss
model, and an AQM behaviour.  Links are unidirectional so asymmetric
paths — and asymmetric impairments, such as a congested upstream on a
home ADSL line — can be modelled; :func:`link_pair` builds the common
symmetric case.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field

from .ecn import ECN
from .ipv4 import IPv4Packet
from .queues import AQMDecision, AQMModel, LossModel, NoCongestion, NoLoss


@dataclass
class LinkOutcome:
    """Result of offering one packet to a link."""

    delivered: bool
    packet: IPv4Packet
    delay: float
    reason: str = ""


@dataclass
class Link:
    """A unidirectional link from ``src`` router to ``dst`` router.

    ``delay`` is the one-way propagation delay in seconds; ``jitter``
    adds a uniform random component in ``[0, jitter]``.  ``loss`` and
    ``aqm`` supply the impairment behaviour; both default to clean.
    """

    src: str
    dst: str
    delay: float = 0.005
    jitter: float = 0.0
    loss: LossModel = field(default_factory=NoLoss)
    aqm: AQMModel = field(default_factory=NoCongestion)
    #: Windowed impairment installed by :mod:`repro.faults` (a
    #: :class:`~repro.faults.windows.LinkFault`); ``None`` in normal
    #: operation, so an unfaulted link pays one attribute check.
    fault: object | None = field(default=None, compare=False, repr=False)

    def transit(
        self,
        packet: IPv4Packet,
        rng: random.Random,
        metrics=None,
        tracer=None,
    ) -> LinkOutcome:
        """Sample the fate of ``packet`` crossing this link.

        Order of operations matches a real egress interface: the AQM
        inspects the packet as it is enqueued (possibly dropping or
        CE-marking it), then the wire may lose it.  A CE mark rewrites
        only the ECN bits, preserving DSCP (RFC 3168).

        ``metrics`` / ``tracer`` are the :mod:`repro.obs` hooks; falsey
        when disabled (one predicate each), and never sampling ``rng``.
        """
        sample_delay = self.delay
        if self.jitter > 0:
            sample_delay += rng.random() * self.jitter

        traced = tracer and tracer.wants(packet)
        hop = f"{self.src}->{self.dst}" if traced else ""
        fault = self.fault
        if fault is not None and fault.active():
            # A flapping physical layer loses (or delays) the packet
            # before any queueing discipline sees it.
            sample_delay += fault.extra_delay
            if fault.sample_loss(rng):
                if metrics:
                    metrics.incr("faults.link_flap_drop")
                if traced:
                    tracer.record(packet, hop, "fault-flap", packet.ecn, packet.ecn)
                return LinkOutcome(False, packet, sample_delay, reason="fault-flap")
        decision = self.aqm.sample(rng, packet.ecn.is_ect)
        if metrics:
            metrics.incr(f"queue.{decision}")
        if decision == AQMDecision.DROP:
            if traced:
                tracer.record(packet, hop, "aqm-drop", packet.ecn, packet.ecn)
            return LinkOutcome(False, packet, sample_delay, reason="aqm-drop")
        if decision == AQMDecision.MARK:
            before = packet.ecn
            packet = packet.with_ecn(ECN.CE)
            if traced:
                tracer.record(packet, hop, "aqm-mark", before, packet.ecn)

        if self.loss.sample_loss(rng):
            if metrics:
                metrics.incr("link.loss")
            if traced:
                tracer.record(packet, hop, "loss", packet.ecn, packet.ecn)
            return LinkOutcome(False, packet, sample_delay, reason="loss")
        return LinkOutcome(True, packet, sample_delay)

    def __repr__(self) -> str:
        return f"Link({self.src} -> {self.dst}, delay={self.delay * 1000:.1f}ms)"


def link_pair(
    a: str,
    b: str,
    delay: float = 0.005,
    jitter: float = 0.0,
    loss: LossModel | None = None,
    aqm: AQMModel | None = None,
    reverse_loss: LossModel | None = None,
    reverse_aqm: AQMModel | None = None,
) -> tuple[Link, Link]:
    """Build the two directions of a symmetric link.

    Distinct loss/AQM objects are used per direction (stateful models
    such as Gilbert-Elliott must not share state across directions);
    pass ``reverse_*`` to make the directions differ.
    """
    forward = Link(
        a,
        b,
        delay=delay,
        jitter=jitter,
        loss=loss if loss is not None else NoLoss(),
        aqm=aqm if aqm is not None else NoCongestion(),
    )
    if reverse_loss is None:
        reverse_loss = copy.deepcopy(loss) if loss is not None else NoLoss()
    if reverse_aqm is None:
        reverse_aqm = copy.deepcopy(aqm) if aqm is not None else NoCongestion()
    backward = Link(b, a, delay=delay, jitter=jitter, loss=reverse_loss, aqm=reverse_aqm)
    return forward, backward
