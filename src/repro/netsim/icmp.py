"""ICMP message codec (RFC 792), with configurable quotations.

The paper's Section 4.2 technique hinges on ICMP *quotations*: a router
that discards a TTL-expired probe returns a Time Exceeded message
quoting the discarded datagram's IP header plus (at least) the first
8 bytes of its payload.  Comparing the quoted TOS byte against the TOS
byte originally sent reveals whether any hop so far rewrote the ECN
field — the technique of Malone & Luckie that the paper reuses.

Real routers differ in how much they quote (RFC 792 minimum of 8
payload bytes vs RFC 1812 "as much as possible"), so the quotation
length is a parameter of the generating router.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .checksum import internet_checksum
from .errors import CodecError
from .ipv4 import IPv4Packet

TYPE_ECHO_REPLY = 0
TYPE_DEST_UNREACHABLE = 3
TYPE_ECHO_REQUEST = 8
TYPE_TIME_EXCEEDED = 11

CODE_TTL_EXCEEDED = 0
CODE_PORT_UNREACHABLE = 3
CODE_HOST_UNREACHABLE = 1
CODE_ADMIN_PROHIBITED = 13

#: RFC 792 routers quote the IP header + 8 bytes of payload.
CLASSIC_QUOTE_PAYLOAD = 8
#: RFC 1812 routers quote as much of the datagram as fits (we cap at
#: 128 bytes of the original datagram, a common implementation choice).
FULL_QUOTE_LIMIT = 128

_HEADER = struct.Struct("!BBHI")
HEADER_LEN = _HEADER.size  # 8


@dataclass
class ICMPMessage:
    """A parsed ICMP message.

    ``rest`` is the 4-byte field after the checksum (unused/zero for
    errors, identifier+sequence for echo).  ``body`` carries the quoted
    datagram for error messages, or echo payload for echo messages.
    """

    icmp_type: int
    code: int = 0
    rest: int = 0
    body: bytes = b""

    def encode(self) -> bytes:
        """Serialise to wire format with a correct ICMP checksum."""
        header = _HEADER.pack(self.icmp_type, self.code, 0, self.rest)
        csum = internet_checksum(header + self.body)
        return (
            header[:2] + struct.pack("!H", csum) + header[4:] + self.body
        )

    @classmethod
    def decode(cls, data: bytes, verify: bool = True) -> "ICMPMessage":
        """Parse wire bytes; verifies the checksum unless disabled."""
        if len(data) < HEADER_LEN:
            raise CodecError(f"ICMP header truncated: {len(data)} bytes")
        if verify and internet_checksum(data) != 0:
            raise CodecError("ICMP checksum mismatch")
        icmp_type, code, _csum, rest = _HEADER.unpack_from(data)
        return cls(icmp_type=icmp_type, code=code, rest=rest, body=data[HEADER_LEN:])

    @property
    def is_error(self) -> bool:
        """True for error messages that quote an offending datagram."""
        return self.icmp_type in (TYPE_DEST_UNREACHABLE, TYPE_TIME_EXCEEDED)

    def quoted_packet(self) -> IPv4Packet:
        """Decode the quoted (possibly truncated) original datagram.

        Only valid for error messages.  Checksum verification is
        disabled because quotations legitimately truncate the payload,
        and some routers corrupt quoted bytes (Malone & Luckie).
        """
        if not self.is_error:
            raise CodecError(f"ICMP type {self.icmp_type} carries no quotation")
        return IPv4Packet.decode(self.body, verify=False)

    def __repr__(self) -> str:
        return (
            f"ICMPMessage(type={self.icmp_type}, code={self.code}, "
            f"body={len(self.body)}B)"
        )


def quote_datagram(original: IPv4Packet, payload_bytes: int = CLASSIC_QUOTE_PAYLOAD) -> bytes:
    """Build the quotation body from the datagram being reported.

    ``payload_bytes`` is how much of the transport payload the router
    includes beyond the IP header; pass :data:`FULL_QUOTE_LIMIT`-style
    values for RFC 1812 behaviour.  The quoted header reflects the
    datagram *as the router saw it* — TTL already decremented along the
    path, and any upstream ECN rewrites visible — which is precisely
    what makes the traceroute analysis work.
    """
    wire = original.encode()
    # Read the header length from the encoded datagram itself rather
    # than assuming the 20-byte minimum: a quote must include the whole
    # IP header (options and all) plus ``payload_bytes`` of transport.
    ihl = (wire[0] & 0x0F) * 4
    limit = ihl + max(0, payload_bytes)
    return wire[:limit]


def time_exceeded(original: IPv4Packet, quote_payload: int = CLASSIC_QUOTE_PAYLOAD) -> ICMPMessage:
    """Construct a Time Exceeded (TTL) error quoting ``original``."""
    return ICMPMessage(
        icmp_type=TYPE_TIME_EXCEEDED,
        code=CODE_TTL_EXCEEDED,
        body=quote_datagram(original, quote_payload),
    )


def port_unreachable(original: IPv4Packet, quote_payload: int = CLASSIC_QUOTE_PAYLOAD) -> ICMPMessage:
    """Construct a Destination Unreachable (port) error quoting ``original``."""
    return ICMPMessage(
        icmp_type=TYPE_DEST_UNREACHABLE,
        code=CODE_PORT_UNREACHABLE,
        body=quote_datagram(original, quote_payload),
    )


def admin_prohibited(original: IPv4Packet, quote_payload: int = CLASSIC_QUOTE_PAYLOAD) -> ICMPMessage:
    """Construct an administratively-prohibited error (firewall reject)."""
    return ICMPMessage(
        icmp_type=TYPE_DEST_UNREACHABLE,
        code=CODE_ADMIN_PROHIBITED,
        body=quote_datagram(original, quote_payload),
    )
