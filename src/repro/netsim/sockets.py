"""Socket-style endpoint API for simulated hosts.

The measurement application is written against these the way the real
one was written against Berkeley sockets: a UDP socket with a receive
callback, per-packet control of the TOS byte (the ``IP_TOS`` sockopt
the authors used to set ECT(0)), and a raw escape hatch for the
TTL-limited traceroute probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from .checksum import internet_checksum, pseudo_header
from .ecn import ECN, tos_byte
from .errors import CodecError, SocketError
from .ipv4 import DEFAULT_TTL, IPv4Packet, PROTO_UDP
from .udp import _HEADER as _UDP_HEADER
from .udp import UDPDatagram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .host import Host

#: Receive callback signature: (datagram, ip_packet, sim_time).
UDPHandler = Callable[[UDPDatagram, IPv4Packet, float], None]

EPHEMERAL_BASE = 49152
EPHEMERAL_LIMIT = 65535


@dataclass
class UDPSocket:
    """A bound UDP endpoint on a simulated host."""

    host: "Host"
    port: int
    handler: UDPHandler | None = None
    closed: bool = False
    #: One-slot memo of the folded checksum base for the last
    #: ``(dst_addr, payload)`` pair.  The UDP checksum of a probe is
    #: that base plus ``dst_port`` (one's-complement add) — so a
    #: traceroute, which walks ``dst_port`` across TTLs while keeping
    #: destination and payload fixed, sums the datagram bytes once per
    #: flow instead of once per probe.
    _csum_key: tuple | None = field(default=None, repr=False, compare=False)
    _csum_base: int = field(default=0, repr=False, compare=False)

    def send(
        self,
        dst_addr: int,
        dst_port: int,
        payload: bytes,
        ecn: ECN = ECN.NOT_ECT,
        dscp: int = 0,
        ttl: int = DEFAULT_TTL,
        ident: int = 0,
    ) -> IPv4Packet:
        """Send a datagram; returns the IP packet handed to the network.

        ``ecn`` and ``dscp`` set the TOS byte exactly as the real
        client's ``setsockopt(IP_TOS)`` did; ``ttl`` and ``ident``
        support the traceroute probes.
        """
        if self.closed:
            raise SocketError(f"socket on port {self.port} is closed")
        if not 0 <= dst_port <= 0xFFFF:
            raise CodecError(f"UDP dst port out of range: {dst_port}")
        key = (dst_addr, payload)
        if key == self._csum_key:
            base = self._csum_base
        else:
            if not 0 <= self.port <= 0xFFFF:
                raise CodecError(f"UDP src port out of range: {self.port}")
            length = 8 + len(payload)
            header = _UDP_HEADER.pack(self.port, 0, length, 0)
            pseudo = pseudo_header(self.host.addr, dst_addr, PROTO_UDP, length)
            # internet_checksum returns ~fold(S); recover the folded
            # one's-complement sum so dst_port can be added per probe.
            base = 0xFFFF - internet_checksum(pseudo + header + payload)
            self._csum_key = key
            self._csum_base = base
        total = base + dst_port
        total = (total & 0xFFFF) + (total >> 16)
        csum = 0xFFFF - total
        if csum == 0:
            csum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
        wire = (
            _UDP_HEADER.pack(self.port, dst_port, 8 + len(payload), csum) + payload
        )
        packet = IPv4Packet(
            src=self.host.addr,
            dst=dst_addr,
            protocol=PROTO_UDP,
            payload=wire,
            ttl=ttl,
            # Inline tos_byte for the in-range case; the helper keeps
            # the range checks (and error messages) for bad DSCP/ECN.
            tos=(
                ((dscp << 2) | ecn)
                if 0 <= dscp <= 0x3F and 0 <= ecn <= 0b11
                else tos_byte(dscp, ecn)
            ),
            ident=ident,
        )
        self.host.send_ip(packet)
        return packet

    def deliver(self, datagram: UDPDatagram, packet: IPv4Packet, now: float) -> None:
        """Called by the host demux when a datagram arrives."""
        if self.closed or self.handler is None:
            return
        self.handler(datagram, packet, now)

    def close(self) -> None:
        """Release the port binding.  Idempotent."""
        if not self.closed:
            self.closed = True
            self.host.release_udp_port(self.port)
