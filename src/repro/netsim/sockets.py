"""Socket-style endpoint API for simulated hosts.

The measurement application is written against these the way the real
one was written against Berkeley sockets: a UDP socket with a receive
callback, per-packet control of the TOS byte (the ``IP_TOS`` sockopt
the authors used to set ECT(0)), and a raw escape hatch for the
TTL-limited traceroute probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .ecn import ECN, tos_byte
from .errors import SocketError
from .ipv4 import DEFAULT_TTL, IPv4Packet, PROTO_UDP
from .udp import UDPDatagram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .host import Host

#: Receive callback signature: (datagram, ip_packet, sim_time).
UDPHandler = Callable[[UDPDatagram, IPv4Packet, float], None]

EPHEMERAL_BASE = 49152
EPHEMERAL_LIMIT = 65535


@dataclass
class UDPSocket:
    """A bound UDP endpoint on a simulated host."""

    host: "Host"
    port: int
    handler: UDPHandler | None = None
    closed: bool = False

    def send(
        self,
        dst_addr: int,
        dst_port: int,
        payload: bytes,
        ecn: ECN = ECN.NOT_ECT,
        dscp: int = 0,
        ttl: int = DEFAULT_TTL,
        ident: int = 0,
    ) -> IPv4Packet:
        """Send a datagram; returns the IP packet handed to the network.

        ``ecn`` and ``dscp`` set the TOS byte exactly as the real
        client's ``setsockopt(IP_TOS)`` did; ``ttl`` and ``ident``
        support the traceroute probes.
        """
        if self.closed:
            raise SocketError(f"socket on port {self.port} is closed")
        datagram = UDPDatagram(src_port=self.port, dst_port=dst_port, payload=payload)
        packet = IPv4Packet(
            src=self.host.addr,
            dst=dst_addr,
            protocol=PROTO_UDP,
            payload=datagram.encode(self.host.addr, dst_addr),
            ttl=ttl,
            tos=tos_byte(dscp, ecn),
            ident=ident,
        )
        self.host.send_ip(packet)
        return packet

    def deliver(self, datagram: UDPDatagram, packet: IPv4Packet, now: float) -> None:
        """Called by the host demux when a datagram arrives."""
        if self.closed or self.handler is None:
            return
        self.handler(datagram, packet, now)

    def close(self) -> None:
        """Release the port binding.  Idempotent."""
        if not self.closed:
            self.closed = True
            self.host.release_udp_port(self.port)
