"""Buffered (bandwidth-limited) links with real queue dynamics.

The plain :class:`~repro.netsim.link.Link` models congestion
*statistically* (a calibrated signalling probability), which is right
for the wide-area measurement scenario.  For studying ECN's actual
mechanism — queues growing, RED marking ECT packets instead of
dropping them — this module provides a link with a service rate and a
bounded FIFO:

* each packet takes ``bytes * 8 / bandwidth`` seconds to serialise;
* a packet arriving while earlier ones are still in service queues
  behind them; the backlog is tracked analytically as the time the
  link next falls idle, so no per-packet buffer objects are needed;
* when the backlog exceeds ``queue_limit`` packets the arrival is
  tail-dropped — unless a :class:`~repro.netsim.queues.REDQueue` is
  attached, in which case RED sees the instantaneous occupancy and
  marks (ECT) or drops (not-ECT) early, before the tail.

The link needs to know the current time; bind it to the network's
clock with :meth:`bind_clock` (the conftest helpers and examples show
the pattern).  Because the backlog model is "virtual work remaining",
it is exact for FIFO service and correct in both execution modes when
the buffered link is the sender-side bottleneck — the configuration
every example uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .clock import SimClock
from .errors import SimulationError
from .ipv4 import IPv4Packet
from .link import Link, LinkOutcome
from .queues import AQMDecision, REDQueue
from .ecn import ECN


@dataclass
class BufferedLink(Link):
    """A unidirectional link with finite bandwidth and a FIFO queue."""

    bandwidth: float = 1_000_000.0  # bits per second
    queue_limit: int = 20  # packets
    red: REDQueue | None = None

    _clock: SimClock | None = field(default=None, repr=False, compare=False)
    _next_free: float = field(default=0.0, repr=False, compare=False)

    #: Counters for tests and reporting.
    delivered: int = field(default=0, compare=False)
    tail_drops: int = field(default=0, compare=False)
    red_drops: int = field(default=0, compare=False)
    ce_marks: int = field(default=0, compare=False)

    def bind_clock(self, clock: SimClock) -> None:
        """Attach the simulation clock (required before transit)."""
        self._clock = clock

    # ------------------------------------------------------------------
    # Queue state
    # ------------------------------------------------------------------
    def service_time(self, packet: IPv4Packet) -> float:
        """Serialisation delay of one packet at the link rate."""
        return packet.total_length * 8 / self.bandwidth

    def occupancy(self, now: float, service: float) -> int:
        """Instantaneous backlog in packets (approximated from the
        remaining virtual work at the nominal service time)."""
        backlog_seconds = max(self._next_free - now, 0.0)
        return int(backlog_seconds / service) if service > 0 else 0

    # ------------------------------------------------------------------
    # Transit
    # ------------------------------------------------------------------
    def transit(
        self,
        packet: IPv4Packet,
        rng: random.Random,
        metrics=None,
        tracer=None,
    ) -> LinkOutcome:
        delivered, delay, reason = self._transit(packet, rng, metrics, tracer)
        return LinkOutcome(delivered, packet, delay, reason)

    def _transit(
        self,
        packet: IPv4Packet,
        rng: random.Random,
        metrics,
        tracer,
    ) -> tuple[bool, float, str]:
        if self._clock is None:
            raise SimulationError(
                f"BufferedLink {self.src}->{self.dst} has no clock bound"
            )
        now = self._clock.now
        service = self.service_time(packet)
        backlog = self.occupancy(now, service)
        traced = tracer and tracer.wants(packet)
        hop = f"{self.src}->{self.dst}" if traced else ""

        if self.red is not None:
            self.red.observe_queue(backlog)
            decision = self.red.sample(rng, packet.ecn.is_ect)
            if metrics:
                metrics.incr(f"queue.{decision}")
            if decision == AQMDecision.DROP:
                self.red_drops += 1
                if traced:
                    tracer.record(packet, hop, "aqm-drop", packet.ecn, packet.ecn)
                return False, self.delay, "aqm-drop"
            if decision == AQMDecision.MARK:
                self.ce_marks += 1
                before = packet.ecn
                packet.set_ecn(ECN.CE)
                if traced:
                    tracer.record(packet, hop, "aqm-mark", before, packet.ecn)

        if backlog >= self.queue_limit:
            self.tail_drops += 1
            if metrics:
                metrics.incr("queue.tail_drop")
            if traced:
                tracer.record(packet, hop, "tail-drop", packet.ecn, packet.ecn)
            return False, self.delay, "aqm-drop"

        if self.loss.sample_loss(rng):
            if metrics:
                metrics.incr("link.loss")
            if traced:
                tracer.record(packet, hop, "loss", packet.ecn, packet.ecn)
            return False, self.delay, "loss"

        depart = max(now, self._next_free) + service
        self._next_free = depart
        self.delivered += 1
        queueing_and_service = depart - now
        jitter = rng.random() * self.jitter if self.jitter > 0 else 0.0
        return True, queueing_and_service + self.delay + jitter, ""


def buffered_pair(
    a: str,
    b: str,
    bandwidth: float,
    delay: float = 0.005,
    queue_limit: int = 20,
    red: REDQueue | None = None,
    reverse_bandwidth: float | None = None,
) -> tuple[BufferedLink, BufferedLink]:
    """Build both directions of a buffered link.

    Each direction gets its own queue state and (if requested) its own
    RED instance; ``reverse_bandwidth`` supports asymmetric links such
    as ADSL.
    """
    import copy

    forward = BufferedLink(
        a, b, delay=delay, bandwidth=bandwidth, queue_limit=queue_limit, red=red
    )
    backward = BufferedLink(
        b,
        a,
        delay=delay,
        bandwidth=reverse_bandwidth if reverse_bandwidth is not None else bandwidth,
        queue_limit=queue_limit,
        red=copy.deepcopy(red) if red is not None else None,
    )
    return forward, backward
