"""Static route computation over the router graph.

Routes are shortest paths (hop count, with optional link weights)
computed once after the topology is built.  Paths are cached per
(source router, destination router) pair; the measurement harness
probes the same 2500 destinations from 13 vantage routers repeatedly,
so caching makes the difference between minutes and hours.

A :class:`PrefixTrie` provides longest-prefix matching from a
destination address to its attached router; the same structure backs
the IP→AS mapping in :mod:`repro.asmap`.
"""

from __future__ import annotations

from typing import Hashable, Iterator

import networkx as nx

from .errors import RoutingError
from .ipv4 import Prefix, format_addr


class PrefixTrie:
    """Binary trie mapping IPv4 prefixes to arbitrary values.

    Longest-prefix match semantics, as in a router FIB.  Lookups walk
    at most 32 bits; insertion is O(prefix length).
    """

    __slots__ = ("_root",)

    def __init__(self) -> None:
        # Node layout: [zero-child, one-child, value-or-sentinel]
        self._root: list = [None, None, _MISSING]

    def insert(self, prefix: Prefix, value) -> None:
        """Map ``prefix`` to ``value`` (replacing any previous value)."""
        node = self._root
        for bit_index in range(prefix.length):
            bit = (prefix.network >> (31 - bit_index)) & 1
            if node[bit] is None:
                node[bit] = [None, None, _MISSING]
            node = node[bit]
        node[2] = value

    def lookup(self, addr: int):
        """Return the value of the longest prefix containing ``addr``.

        Raises :class:`KeyError` if no prefix matches; use
        :meth:`lookup_default` for a non-raising variant.
        """
        node = self._root
        best = _MISSING
        for bit_index in range(32):
            if node[2] is not _MISSING:
                best = node[2]
            child = node[(addr >> (31 - bit_index)) & 1]
            if child is None:
                break
            node = child
        else:
            if node[2] is not _MISSING:
                best = node[2]
        if best is _MISSING:
            raise KeyError(format_addr(addr))
        return best

    def lookup_default(self, addr: int, default=None):
        """Longest-prefix match returning ``default`` when none matches."""
        try:
            return self.lookup(addr)
        except KeyError:
            return default


_MISSING = object()


class RoutingTable:
    """Shortest-path routing over a topology's router graph.

    Parameters
    ----------
    graph:
        ``networkx.DiGraph`` whose nodes are router ids and whose edges
        carry the :class:`~repro.netsim.link.Link` objects under the
        ``"link"`` attribute and an optional ``"weight"``.
    """

    def __init__(self, graph: nx.DiGraph) -> None:
        self._graph = graph
        self._path_cache: dict[tuple[Hashable, Hashable], tuple[Hashable, ...]] = {}
        self._excluded: frozenset[Hashable] = frozenset()

    @property
    def excluded(self) -> frozenset[Hashable]:
        """Routers currently withdrawn from path computation."""
        return self._excluded

    def set_excluded(self, excluded: frozenset[Hashable]) -> None:
        """Withdraw a set of routers (blackholes) and recompute lazily.

        Paths route *around* the excluded set, exactly as an IGP would
        converge after the routers died; endpoints whose only access
        router is excluded become unreachable (:class:`RoutingError`).
        The path cache is dropped whenever the set actually changes —
        callers holding derived caches (the network's hop cache) must
        invalidate alongside.
        """
        excluded = frozenset(excluded)
        if excluded == self._excluded:
            return
        self._excluded = excluded
        self._path_cache.clear()

    def path(self, src: Hashable, dst: Hashable) -> tuple[Hashable, ...]:
        """Router-id sequence from ``src`` to ``dst`` inclusive.

        Deterministic (ties broken by node order via Dijkstra's heap)
        and cached.  Raises :class:`RoutingError` if disconnected.
        """
        excluded = self._excluded
        if excluded and (src in excluded or dst in excluded):
            raise RoutingError(f"no route from {src!r} to {dst!r} (blackholed)")
        if src == dst:
            return (src,)
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        graph = (
            nx.restricted_view(self._graph, excluded, ()) if excluded else self._graph
        )
        try:
            nodes = nx.shortest_path(graph, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise RoutingError(f"no route from {src!r} to {dst!r}") from exc
        result = tuple(nodes)
        self._path_cache[key] = result
        return result

    def hops(self, src: Hashable, dst: Hashable) -> Iterator[tuple[Hashable, object]]:
        """Yield ``(router_id, egress_link)`` pairs along the path.

        The final router is the destination's access router; its egress
        link is the host attachment and is not included here (host
        delivery is the network's job).
        """
        nodes = self.path(src, dst)
        for here, there in zip(nodes, nodes[1:]):
            yield here, self._graph.edges[here, there]["link"]

    def invalidate(self) -> None:
        """Drop all cached paths (call after topology changes)."""
        self._path_cache.clear()
