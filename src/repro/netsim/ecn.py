"""ECN codepoints and TOS-byte helpers (RFC 3168).

The two least-significant bits of the IPv4 TOS byte carry the ECN
field; the upper six bits are the DSCP.  The paper probes with ECT(0)
(binary ``10``) because that is the codepoint TCP implementations
typically use, and looks for middleboxes that either *bleach* the field
back to not-ECT or *drop* ECT-marked packets outright.
"""

from __future__ import annotations

import enum


class ECN(enum.IntEnum):
    """The four ECN codepoints, as encoded in the low two TOS bits."""

    NOT_ECT = 0b00
    ECT_1 = 0b01
    ECT_0 = 0b10
    CE = 0b11

    @property
    def is_ect(self) -> bool:
        """True for ECT(0) and ECT(1): the sender declared ECN capability."""
        return 0 < self._value_ < 3

    @property
    def is_ce(self) -> bool:
        """True if a router has marked the packet Congestion Experienced."""
        return self._value_ == 3

    def describe(self) -> str:
        """Human-readable name used in reports (matches paper terminology)."""
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    ECN.NOT_ECT: "not-ECT",
    ECN.ECT_1: "ECT(1)",
    ECN.ECT_0: "ECT(0)",
    ECN.CE: "ECN-CE",
}

#: Mask selecting the ECN bits within the TOS byte.
ECN_MASK = 0b0000_0011
#: Mask selecting the DSCP bits within the TOS byte.
DSCP_MASK = 0b1111_1100

#: ECN members indexed by codepoint — ``ECN_BY_CODE[tos & ECN_MASK]``
#: skips the ``EnumMeta.__call__`` value lookup on the packet hot path.
ECN_BY_CODE = (ECN.NOT_ECT, ECN.ECT_1, ECN.ECT_0, ECN.CE)

#: ECT-capability indexed by codepoint — ``ECT_CAPABLE[tos & ECN_MASK]``
#: is the branch AQMs take per packet; a tuple index beats two enum
#: identity checks.
ECT_CAPABLE = (False, True, True, False)


def ecn_from_tos(tos: int) -> ECN:
    """Extract the ECN codepoint from a TOS byte."""
    return ECN_BY_CODE[tos & ECN_MASK]


def dscp_from_tos(tos: int) -> int:
    """Extract the 6-bit DSCP value from a TOS byte."""
    return (tos & DSCP_MASK) >> 2


def tos_byte(dscp: int = 0, ecn: ECN = ECN.NOT_ECT) -> int:
    """Compose a TOS byte from a DSCP value and an ECN codepoint.

    Both arguments are range-checked: a raw int outside 0–3 passed as
    ``ecn`` would otherwise smear into the DSCP bits and silently
    change the packet's traffic class.
    """
    if not 0 <= dscp <= 0x3F:
        raise ValueError(f"DSCP out of range: {dscp!r}")
    if not 0 <= int(ecn) <= 0b11:
        raise ValueError(f"ECN codepoint out of range: {ecn!r}")
    return (dscp << 2) | int(ecn)


def replace_ecn(tos: int, ecn: ECN) -> int:
    """Return ``tos`` with its ECN bits replaced (DSCP preserved).

    This is what a standards-conforming AQM does when marking CE, and
    what an ECN-bleaching middlebox does when clearing ECT.
    """
    return (tos & DSCP_MASK) | int(ecn)
