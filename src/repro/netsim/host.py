"""End hosts.

A host owns one address, attaches to one access router, and demuxes
arriving packets to UDP sockets, a TCP stack (attached by
:mod:`repro.tcp`), and ICMP handlers.  Packet taps provide the
tcpdump-equivalent observation point used by the measurement
application; they see both directions, before any demux decision.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol

from .errors import CodecError, SocketError
from .queues import AQMModel, LossModel
from .icmp import ICMPMessage, port_unreachable
from .ipv4 import IPv4Packet, PROTO_ICMP, PROTO_TCP, PROTO_UDP, format_addr
from .middlebox import Middlebox
from .sockets import EPHEMERAL_BASE, EPHEMERAL_LIMIT, UDPHandler, UDPSocket
from .udp import UDPDatagram
from ..obs.metrics import proto_name

#: Pre-built counter names for the protocols every study sends
#: constantly; the f-string + proto_name fallback handles the rest.
_TX_COUNTERS = {
    PROTO_UDP: "host.tx.udp",
    PROTO_TCP: "host.tx.tcp",
    PROTO_ICMP: "host.tx.icmp",
}
_RX_COUNTERS = {
    PROTO_UDP: "host.rx.udp",
    PROTO_TCP: "host.rx.tcp",
    PROTO_ICMP: "host.rx.icmp",
}

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network

#: Tap signature: (direction, packet, sim_time); direction is "in"/"out".
TapFn = Callable[[str, IPv4Packet, float], None]
#: ICMP handler signature: (message, ip_packet, sim_time).
ICMPHandler = Callable[[ICMPMessage, IPv4Packet, float], None]


@dataclass
class AccessLink:
    """The host's attachment to its access router.

    Hosts hang directly off a router in the topology; this descriptor
    carries the last-mile properties: one-way ``delay``, a ``loss``
    model sampled in both directions, and an optional ``upstream_aqm``
    applied to outbound packets only (the congested-upstream home
    broadband case the paper highlights for one author's vantage).
    """

    delay: float = 0.0
    loss: LossModel | None = None
    upstream_aqm: AQMModel | None = None


class TCPStackProtocol(Protocol):
    """What a host requires from an attached TCP stack."""

    def deliver(self, packet: IPv4Packet, now: float) -> None:  # pragma: no cover
        ...


class Host:
    """A simulated end host."""

    def __init__(
        self,
        hostname: str,
        addr: int,
        router_id: str,
        respond_port_unreachable: bool = False,
    ) -> None:
        self.hostname = hostname
        self.addr = addr
        self.router_id = router_id
        self.respond_port_unreachable = respond_port_unreachable
        self.network: "Network | None" = None
        self.tcp: TCPStackProtocol | None = None
        self.access = AccessLink()
        self.inbound_filters: list[Middlebox] = []
        self.outbound_filters: list[Middlebox] = []
        self._udp_sockets: dict[int, UDPSocket] = {}
        self._icmp_handlers: list[ICMPHandler] = []
        self._taps: list[TapFn] = []
        self._next_ephemeral = EPHEMERAL_BASE
        #: Host-local RNG for inbound-filter sampling (set on attach).
        self._rng = random.Random(0)

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, network: "Network", rng_seed: int) -> None:
        """Called by the :class:`~repro.netsim.network.Network` on build."""
        self.network = network
        self._rng = random.Random(rng_seed)

    def reset_measurement_state(self, rng_seed: int) -> None:
        """Reseed/reset every bit of state that evolves while probing.

        Part of the hermetic-epoch contract (see
        :meth:`repro.scenario.internet.SyntheticInternet.begin_epoch`):
        after this call the host behaves exactly like a freshly built
        one seeded with ``rng_seed``, so a shard replayed in another
        process reproduces the same packets bit for bit.  Bound
        listening sockets (NTP 123, HTTP 80) are configuration, not
        evolved state, and are left alone.
        """
        self._rng = random.Random(rng_seed)
        self._next_ephemeral = EPHEMERAL_BASE
        if self.access.loss is not None:
            self.access.loss.reset()
        if self.access.upstream_aqm is not None:
            self.access.upstream_aqm.reset()
        reset_tcp = getattr(self.tcp, "reset_ephemeral_state", None)
        if reset_tcp is not None:
            reset_tcp()

    @property
    def now(self) -> float:
        """Current simulation time (requires attachment)."""
        if self.network is None:
            raise SocketError(f"host {self.hostname!r} is not attached to a network")
        return self.network.scheduler.now

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_ip(self, packet: IPv4Packet) -> None:
        """Hand a fully formed IP packet to the network.

        Taps observe the packet first (tcpdump runs on the host, inside
        any home-gateway middleboxes), then outbound filters may drop
        or rewrite it before it reaches the access link.
        """
        network = self.network
        if network is None:
            raise SocketError(f"host {self.hostname!r} is not attached to a network")
        metrics = network.metrics
        tracer = network.tracer
        taps = self._taps
        if metrics or tracer or taps:
            # Only observers need the clock; the bare forwarding path
            # (most hosts, observability off) skips the property chain.
            now = network.scheduler.now
            if metrics:
                name = _TX_COUNTERS.get(packet.protocol)
                metrics.incr(name or f"host.tx.{proto_name(packet.protocol)}")
            if tracer and tracer.wants(packet):
                tracer.record(
                    packet, self.hostname, "tx", packet.ecn, packet.ecn, time=now
                )
            for tap in taps:
                tap("out", packet, now)
        for box in self.outbound_filters:
            verdict = box.process(packet, self._rng)
            if verdict.dropped:
                if metrics:
                    metrics.incr(f"middlebox.{box.name}")
                return
            if verdict.reason and metrics:
                metrics.incr(f"middlebox.{box.name}")
            packet = verdict.packet
        network.send(packet, self)

    def udp_bind(self, port: int | None, handler: UDPHandler | None = None) -> UDPSocket:
        """Bind a UDP socket.

        ``port=None`` allocates an ephemeral port.  Raises
        :class:`SocketError` if the requested port is taken.
        """
        if port is None:
            port = self._allocate_ephemeral()
        if port in self._udp_sockets:
            raise SocketError(f"UDP port {port} already bound on {self.hostname}")
        sock = UDPSocket(host=self, port=port, handler=handler)
        self._udp_sockets[port] = sock
        return sock

    def _allocate_ephemeral(self) -> int:
        for _ in range(EPHEMERAL_LIMIT - EPHEMERAL_BASE + 1):
            candidate = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > EPHEMERAL_LIMIT:
                self._next_ephemeral = EPHEMERAL_BASE
            if candidate not in self._udp_sockets:
                return candidate
        raise SocketError(f"no ephemeral UDP ports left on {self.hostname}")

    def release_udp_port(self, port: int) -> None:
        """Unbind a UDP port (called by :meth:`UDPSocket.close`)."""
        self._udp_sockets.pop(port, None)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def add_tap(self, tap: TapFn) -> Callable[[], None]:
        """Install a packet tap; returns a removal function."""
        self._taps.append(tap)

        def remove() -> None:
            if tap in self._taps:
                self._taps.remove(tap)

        return remove

    def on_icmp(self, handler: ICMPHandler) -> Callable[[], None]:
        """Register an ICMP handler; returns a removal function."""
        self._icmp_handlers.append(handler)

        def remove() -> None:
            if handler in self._icmp_handlers:
                self._icmp_handlers.remove(handler)

        return remove

    def deliver(self, packet: IPv4Packet, now: float) -> None:
        """Entry point for packets arriving from the network."""
        network = self.network
        if network is not None:
            metrics = network.metrics
            tracer = network.tracer
        else:  # pragma: no cover - detached host in unit tests
            metrics = tracer = None
        for box in self.inbound_filters:
            verdict = box.process(packet, self._rng)
            if verdict.dropped:
                if metrics:
                    metrics.incr(f"middlebox.{box.name}")
                return
            if verdict.reason and metrics:
                metrics.incr(f"middlebox.{box.name}")
            packet = verdict.packet
        if metrics:
            name = _RX_COUNTERS.get(packet.protocol)
            metrics.incr(name or f"host.rx.{proto_name(packet.protocol)}")
        if tracer and tracer.wants(packet):
            tracer.record(packet, self.hostname, "rx", packet.ecn, packet.ecn, time=now)
        for tap in self._taps:
            tap("in", packet, now)
        if packet.protocol == PROTO_UDP:
            self._deliver_udp(packet, now)
        elif packet.protocol == PROTO_TCP:
            if self.tcp is not None:
                self.tcp.deliver(packet, now)
        elif packet.protocol == PROTO_ICMP:
            self._deliver_icmp(packet, now)

    def _deliver_udp(self, packet: IPv4Packet, now: float) -> None:
        try:
            datagram = UDPDatagram.decode(packet.payload)
        except CodecError:
            return
        sock = self._udp_sockets.get(datagram.dst_port)
        if sock is not None:
            sock.deliver(datagram, packet, now)
            return
        if self.respond_port_unreachable:
            icmp = port_unreachable(packet)
            reply = IPv4Packet(
                src=self.addr,
                dst=packet.src,
                protocol=PROTO_ICMP,
                payload=icmp.encode(),
            )
            self.send_ip(reply)

    def _deliver_icmp(self, packet: IPv4Packet, now: float) -> None:
        try:
            message = ICMPMessage.decode(packet.payload)
        except CodecError:
            return
        for handler in list(self._icmp_handlers):
            handler(message, packet, now)

    def __repr__(self) -> str:
        return f"Host({self.hostname!r}, {format_addr(self.addr)} @ {self.router_id})"
