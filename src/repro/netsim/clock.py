"""Simulated clocks.

The simulator is fully deterministic: no component reads wall-clock
time.  Every timestamp comes from a :class:`SimClock`, which only moves
when the event engine advances it.  Protocol code (NTP in particular)
needs an epoch-based notion of "current time"; :class:`SimClock`
therefore tracks both a monotonic simulation time (seconds since the
start of the run) and an absolute origin (seconds since the Unix epoch)
so that wire-format timestamps look realistic.
"""

from __future__ import annotations

from .errors import SimulationError

#: Offset between the NTP epoch (1900-01-01) and the Unix epoch
#: (1970-01-01), in seconds.  Used when converting to NTP timestamps.
NTP_UNIX_EPOCH_DELTA = 2_208_988_800

#: Default absolute origin for simulations: 2015-04-01T00:00:00Z, the
#: start of the paper's measurement campaign.
DEFAULT_EPOCH_ORIGIN = 1_427_846_400.0


class SimClock:
    """A monotonic simulated clock.

    Parameters
    ----------
    origin:
        Absolute time (seconds since the Unix epoch) corresponding to
        simulation time zero.  Defaults to the start of the paper's
        measurement campaign so NTP timestamps decode to plausible
        2015 dates.
    """

    __slots__ = ("_now", "_origin")

    def __init__(self, origin: float = DEFAULT_EPOCH_ORIGIN) -> None:
        self._now = 0.0
        self._origin = float(origin)

    @property
    def now(self) -> float:
        """Current simulation time, in seconds since the run started."""
        return self._now

    @property
    def origin(self) -> float:
        """Unix timestamp corresponding to simulation time zero."""
        return self._origin

    def unix_time(self) -> float:
        """Current absolute time as seconds since the Unix epoch."""
        return self._origin + self._now

    def ntp_time(self) -> float:
        """Current absolute time as seconds since the NTP epoch (1900)."""
        return self.unix_time() + NTP_UNIX_EPOCH_DELTA

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when`` (simulation seconds).

        Raises
        ------
        SimulationError
            If ``when`` is earlier than the current time: simulated
            time never flows backwards.
        """
        if when < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {when!r} < {self._now!r}"
            )
        self._now = when

    def reset_to(self, when: float) -> None:
        """Set the clock to ``when``, forwards or backwards.

        Monotonicity is the invariant of a *running* simulation; a
        hermetic epoch reset (no events pending, all stochastic state
        reseeded) is the one place time may legally jump.  Use
        :meth:`EventScheduler.reset_time`, which enforces the
        empty-queue precondition, rather than calling this directly.
        """
        self._now = float(when)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds (``delta >= 0``)."""
        if delta < 0:
            raise SimulationError(f"negative clock delta: {delta!r}")
        self._now += delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f}, origin={self._origin:.0f})"
