"""Discrete event engine.

A small, fast, heap-based scheduler.  Events are callbacks bound to a
simulation time; ties are broken by insertion order so the simulation
is deterministic.  Cancellation is *lazy*: a cancelled event stays in
the heap but is skipped when popped, which keeps :meth:`Event.cancel`
O(1) — important because retransmission timers are cancelled far more
often than they fire.  When dead entries come to dominate (more than
half the heap, above a small floor) the scheduler compacts in place,
so a workload that schedules-and-cancels in a loop stays O(live)
rather than O(ever-scheduled).

A calendar-queue backend (:class:`CalendarQueue`) is provided for
benchmarking; see its docstring for why the binary heap remains the
production backend.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable

from .clock import SimClock
from .errors import SimulationError


class Event:
    """A scheduled callback.  Returned by :meth:`EventScheduler.schedule`."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_scheduler")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        scheduler: "EventScheduler | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            scheduler = self._scheduler
            if scheduler is not None:
                scheduler._note_cancelled(self)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class EventScheduler:
    """Heap-based discrete event scheduler driving a :class:`SimClock`.

    The scheduler owns the clock: time only advances when events are
    dispatched.  Use :meth:`schedule` to enqueue work, then one of the
    ``run*`` methods to execute it.
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        #: Heap of ``(time, seq, event)`` entries: ordering compares
        #: plain tuples in C instead of calling ``Event.__lt__`` per
        #: sift step, which is measurable at hundreds of thousands of
        #: pushes per study.  Tie-break by ``seq`` is unchanged.
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._dispatched = 0
        self._pending = 0
        #: Observability registry (``repro.obs``); falsey when disabled,
        #: so dispatch/schedule pay one predicate per event when off.
        self.metrics = None

    @property
    def now(self) -> float:
        """Current simulation time (delegates to the clock)."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.

        Maintained as a live counter (updated on schedule, cancel and
        dispatch) rather than recounted by scanning the heap: probe
        code reads this on hot paths, and cancelled retransmission
        timers stay in the heap lazily.
        """
        return self._pending

    #: Compaction floor: below this heap size, lazily-cancelled entries
    #: are too cheap to be worth a rebuild.
    _COMPACT_MIN = 64

    def _note_removed(self, event: Event) -> None:
        """A queued event left the pending set (cancel or dispatch)."""
        self._pending -= 1
        event._scheduler = None

    def _note_cancelled(self, event: Event) -> None:
        """A queued event was cancelled (still physically in the heap)."""
        self._pending -= 1
        event._scheduler = None
        if self.metrics:
            self.metrics.incr("engine.cancelled")
        # Compact when dead entries outnumber live ones: drop them and
        # re-heapify **in place** (callers — and the run loops — hold
        # references to the heap list, so its identity must survive).
        heap = self._heap
        if len(heap) > self._COMPACT_MIN and self._pending * 2 < len(heap):
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            if self.metrics:
                self.metrics.incr("engine.compactions")

    @property
    def dispatched(self) -> int:
        """Total number of events executed so far."""
        return self._dispatched

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled before it
        fires.  ``delay`` must be non-negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay!r}")
        time = self.clock._now + delay
        seq = self._seq
        event = Event(time, seq, callback, args, scheduler=self)
        self._seq = seq + 1
        self._pending += 1
        heapq.heappush(self._heap, (time, seq, event))
        if self.metrics:
            self.metrics.incr("engine.scheduled")
            self.metrics.gauge_max("engine.heap_peak", len(self._heap))
        return event

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``when``."""
        return self.schedule(when - self.clock.now, callback, *args)

    def _pop_runnable(self) -> Event | None:
        while self._heap:
            event = heapq.heappop(self._heap)[2]
            if not event.cancelled:
                return event
        return None

    def step(self) -> bool:
        """Dispatch the single next event.  Returns False if none remain."""
        event = self._pop_runnable()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self._dispatched += 1
        self._note_removed(event)
        if self.metrics:
            self.metrics.incr("engine.dispatched")
        event.callback(*event.args)
        return True

    def run(self, max_events: int | None = None) -> int:
        """Run until the event queue drains.

        Parameters
        ----------
        max_events:
            Optional safety valve; raises :class:`SimulationError` if
            the queue still holds runnable events after exactly this
            many dispatches (useful to catch runaway feedback loops in
            tests).  The valve fires *before* event ``N + 1`` runs, so
            a runaway loop never executes past its budget.

        Returns the number of events dispatched by this call.
        """
        count = 0
        if max_events is None:
            # Unbounded drain: the common case, with the pop/dispatch
            # cycle inlined (no per-event ``step`` + ``_pop_runnable``
            # call pair).  ``heap`` aliases ``self._heap`` — safe
            # because compaction rebuilds that list in place.
            heap = self._heap
            pop = heapq.heappop
            clock = self.clock
            metrics = self.metrics
            while heap:
                event = pop(heap)[2]
                if event.cancelled:
                    continue
                # Heap pops are time-ordered, so the monotonicity check
                # in ``advance_to`` is redundant here.
                clock._now = event.time
                self._dispatched += 1
                self._pending -= 1
                event._scheduler = None
                if metrics:
                    metrics.incr("engine.dispatched")
                event.callback(*event.args)
                count += 1
            return count
        while True:
            if count >= max_events:
                if self._pending:
                    raise SimulationError(f"exceeded max_events={max_events}")
                break
            if not self.step():
                break
            count += 1
        return count

    def run_until(self, deadline: float) -> int:
        """Run events with ``time <= deadline``, then advance the clock.

        The clock is left at ``deadline`` even if the queue drained
        earlier, so timeouts measured against :attr:`now` behave as a
        caller expects.  Returns the number of events dispatched.
        """
        count = 0
        heap = self._heap
        pop = heapq.heappop
        clock = self.clock
        metrics = self.metrics
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                pop(heap)
                continue
            if entry[0] > deadline:
                break
            pop(heap)
            # Time-ordered pops: monotonicity holds by construction.
            clock._now = entry[0]
            self._dispatched += 1
            self._pending -= 1
            event._scheduler = None
            if metrics:
                metrics.incr("engine.dispatched")
            count += 1
            event.callback(*event.args)
        if deadline > clock._now:
            clock._now = deadline
        return count

    def reset_time(self, when: float) -> None:
        """Jump the clock to ``when``, in any direction.

        Only legal while no pending events are queued (the hermetic
        boundary between measurement epochs — see
        :meth:`repro.scenario.internet.SyntheticInternet.begin_epoch`).
        Lingering lazily-cancelled events are discarded, so the heap
        does not accumulate dead timers across epochs.
        """
        if self._pending:
            raise SimulationError(
                f"cannot reset time with {self._pending} pending events"
            )
        self._heap.clear()
        self.clock.reset_to(when)


class CalendarQueue:
    """Calendar-queue priority queue, kept for benchmark evaluation.

    A calendar queue buckets events by time modulo a "year" so that
    push and pop-min are O(1) amortised when event times are spread
    evenly — the textbook alternative to a binary heap for discrete
    event simulation.  This implementation preserves the scheduler's
    determinism contract: within a bucket, entries are kept ordered by
    ``(time, seq)``, so ties break by insertion order exactly as the
    heap does.

    **Evaluation outcome** (see ``benchmarks/test_engine_microbench.py``):
    on this workload the binary heap wins — ~20 % faster on the
    schedule/cancel/drain churn benchmark, and the gap widens on the
    real study profile where the pending population is small (tens to
    hundreds) and bimodal: a dense cluster of in-flight packet hops
    plus sparse retransmission timers.  ``heapq``'s C-implemented
    push/pop beats pure-Python bucket bookkeeping at these sizes; a
    calendar queue only pays off with thousands of uniformly spread
    pending events, which the sharded runner's per-epoch structure
    never produces.  The heap therefore remains
    :class:`EventScheduler`'s backend; this class is exercised by the
    microbenchmark and equivalence tests so the comparison stays
    honest as the hot path evolves.
    """

    __slots__ = ("_buckets", "_width", "_last_time", "_len")

    def __init__(self, bucket_width: float = 0.01, num_buckets: int = 64) -> None:
        self._buckets: list[list[Event]] = [[] for _ in range(num_buckets)]
        self._width = bucket_width
        self._last_time = 0.0
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def push(self, event: Event) -> None:
        index = int(event.time / self._width) % len(self._buckets)
        insort(self._buckets[index], event)
        self._len += 1

    def pop(self) -> Event:
        """Remove and return the earliest event (ties by ``seq``)."""
        if not self._len:
            raise IndexError("pop from empty CalendarQueue")
        buckets = self._buckets
        num = len(buckets)
        width = self._width
        year = width * num
        # Scan one "year" of buckets starting from the current time's
        # bucket; any event due within that bucket's current-year slice
        # is the minimum.  Fall back to a full min scan (far-future
        # events beyond the current year) if the sweep finds nothing.
        start = int(self._last_time / width)
        for offset in range(num):
            index = (start + offset) % num
            bucket = buckets[index]
            if bucket and bucket[0].time < (start + offset + 1) * width:
                event = bucket.pop(0)
                self._last_time = event.time
                self._len -= 1
                return event
        best_index = -1
        best = None
        for index, bucket in enumerate(buckets):
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
                best_index = index
        event = buckets[best_index].pop(0)
        self._last_time = event.time
        self._len -= 1
        return event
