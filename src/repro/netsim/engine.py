"""Discrete event engine.

A small, fast, heap-based scheduler.  Events are callbacks bound to a
simulation time; ties are broken by insertion order so the simulation
is deterministic.  Cancellation is *lazy*: a cancelled event stays in
the heap but is skipped when popped, which keeps :meth:`Event.cancel`
O(1) — important because retransmission timers are cancelled far more
often than they fire.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from .clock import SimClock
from .errors import SimulationError


class Event:
    """A scheduled callback.  Returned by :meth:`EventScheduler.schedule`."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_scheduler")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        scheduler: "EventScheduler | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            scheduler = self._scheduler
            if scheduler is not None:
                scheduler._note_removed(self)
                if scheduler.metrics:
                    scheduler.metrics.incr("engine.cancelled")

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class EventScheduler:
    """Heap-based discrete event scheduler driving a :class:`SimClock`.

    The scheduler owns the clock: time only advances when events are
    dispatched.  Use :meth:`schedule` to enqueue work, then one of the
    ``run*`` methods to execute it.
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[Event] = []
        self._seq = 0
        self._dispatched = 0
        self._pending = 0
        #: Observability registry (``repro.obs``); falsey when disabled,
        #: so dispatch/schedule pay one predicate per event when off.
        self.metrics = None

    @property
    def now(self) -> float:
        """Current simulation time (delegates to the clock)."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.

        Maintained as a live counter (updated on schedule, cancel and
        dispatch) rather than recounted by scanning the heap: probe
        code reads this on hot paths, and cancelled retransmission
        timers stay in the heap lazily.
        """
        return self._pending

    def _note_removed(self, event: Event) -> None:
        """A queued event left the pending set (cancel or dispatch)."""
        self._pending -= 1
        event._scheduler = None

    @property
    def dispatched(self) -> int:
        """Total number of events executed so far."""
        return self._dispatched

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled before it
        fires.  ``delay`` must be non-negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay!r}")
        event = Event(self.clock.now + delay, self._seq, callback, args, scheduler=self)
        self._seq += 1
        self._pending += 1
        heapq.heappush(self._heap, event)
        if self.metrics:
            self.metrics.incr("engine.scheduled")
            self.metrics.gauge_max("engine.heap_peak", len(self._heap))
        return event

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``when``."""
        return self.schedule(when - self.clock.now, callback, *args)

    def _pop_runnable(self) -> Event | None:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def step(self) -> bool:
        """Dispatch the single next event.  Returns False if none remain."""
        event = self._pop_runnable()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self._dispatched += 1
        self._note_removed(event)
        if self.metrics:
            self.metrics.incr("engine.dispatched")
        event.callback(*event.args)
        return True

    def run(self, max_events: int | None = None) -> int:
        """Run until the event queue drains.

        Parameters
        ----------
        max_events:
            Optional safety valve; raises :class:`SimulationError` if
            the queue still holds runnable events after exactly this
            many dispatches (useful to catch runaway feedback loops in
            tests).  The valve fires *before* event ``N + 1`` runs, so
            a runaway loop never executes past its budget.

        Returns the number of events dispatched by this call.
        """
        count = 0
        while True:
            if max_events is not None and count >= max_events:
                if self._pending:
                    raise SimulationError(f"exceeded max_events={max_events}")
                break
            if not self.step():
                break
            count += 1
        return count

    def run_until(self, deadline: float) -> int:
        """Run events with ``time <= deadline``, then advance the clock.

        The clock is left at ``deadline`` even if the queue drained
        earlier, so timeouts measured against :attr:`now` behave as a
        caller expects.  Returns the number of events dispatched.
        """
        count = 0
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if event.time > deadline:
                break
            heapq.heappop(self._heap)
            self.clock.advance_to(event.time)
            self._dispatched += 1
            self._note_removed(event)
            if self.metrics:
                self.metrics.incr("engine.dispatched")
            count += 1
            event.callback(*event.args)
        if deadline > self.clock.now:
            self.clock.advance_to(deadline)
        return count

    def reset_time(self, when: float) -> None:
        """Jump the clock to ``when``, in any direction.

        Only legal while no pending events are queued (the hermetic
        boundary between measurement epochs — see
        :meth:`repro.scenario.internet.SyntheticInternet.begin_epoch`).
        Lingering lazily-cancelled events are discarded, so the heap
        does not accumulate dead timers across epochs.
        """
        if self._pending:
            raise SimulationError(
                f"cannot reset time with {self._pending} pending events"
            )
        self._heap.clear()
        self.clock.reset_to(when)
