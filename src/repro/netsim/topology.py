"""Topology container: routers, links, hosts, and address ownership.

The scenario package builds a specific synthetic Internet on top of
this; the container itself is policy-free.  It owns:

* the router set and the directed link graph between routers,
* host attachment (every host hangs off exactly one access router),
* address bookkeeping (host lookup by address, prefix → router trie),
* the AS membership of each router (for the AS-boundary analysis).
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from .errors import TopologyError
from .host import Host
from .ipv4 import Prefix, format_addr
from .link import Link
from .router import Router
from .routing import PrefixTrie


class Topology:
    """A mutable network topology."""

    def __init__(self) -> None:
        self.routers: dict[str, Router] = {}
        self.hosts: dict[int, Host] = {}
        self.graph = nx.DiGraph()
        self._prefix_owner = PrefixTrie()
        self._host_names: dict[str, Host] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_router(self, router: Router) -> Router:
        """Register a router; ids must be unique."""
        if router.router_id in self.routers:
            raise TopologyError(f"duplicate router id {router.router_id!r}")
        self.routers[router.router_id] = router
        self.graph.add_node(router.router_id)
        return router

    def add_link(self, link: Link, weight: float = 1.0) -> Link:
        """Register a unidirectional link between two known routers."""
        for endpoint in (link.src, link.dst):
            if endpoint not in self.routers:
                raise TopologyError(f"link references unknown router {endpoint!r}")
        if self.graph.has_edge(link.src, link.dst):
            raise TopologyError(f"duplicate link {link.src!r} -> {link.dst!r}")
        self.graph.add_edge(link.src, link.dst, link=link, weight=weight)
        return link

    def add_link_pair(self, forward: Link, backward: Link, weight: float = 1.0) -> None:
        """Register both directions of a symmetric link."""
        self.add_link(forward, weight)
        self.add_link(backward, weight)

    def add_host(self, host: Host) -> Host:
        """Attach a host to its access router."""
        if host.router_id not in self.routers:
            raise TopologyError(
                f"host {host.hostname!r} attaches to unknown router {host.router_id!r}"
            )
        if host.addr in self.hosts:
            raise TopologyError(f"duplicate host address {format_addr(host.addr)}")
        if host.hostname in self._host_names:
            raise TopologyError(f"duplicate hostname {host.hostname!r}")
        self.hosts[host.addr] = host
        self._host_names[host.hostname] = host
        return host

    def claim_prefix(self, prefix: Prefix, router_id: str) -> None:
        """Record that ``router_id`` originates ``prefix``."""
        if router_id not in self.routers:
            raise TopologyError(f"unknown router {router_id!r}")
        self._prefix_owner.insert(prefix, router_id)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def host_by_addr(self, addr: int) -> Host | None:
        """The host owning ``addr``, or None."""
        return self.hosts.get(addr)

    def host_by_name(self, hostname: str) -> Host | None:
        """The host with the given name, or None."""
        return self._host_names.get(hostname)

    def router_for_addr(self, addr: int) -> str | None:
        """Access router for an address: host attachment, else prefix owner."""
        host = self.hosts.get(addr)
        if host is not None:
            return host.router_id
        return self._prefix_owner.lookup_default(addr)

    def router_asn(self, router_id: str) -> int:
        """AS number of a router."""
        return self.routers[router_id].asn

    def links_between(self, a: str, b: str) -> tuple[Link | None, Link | None]:
        """The (a→b, b→a) links, each possibly None."""
        forward = self.graph.edges[a, b]["link"] if self.graph.has_edge(a, b) else None
        backward = self.graph.edges[b, a]["link"] if self.graph.has_edge(b, a) else None
        return forward, backward

    def all_links(self) -> Iterable[Link]:
        """Iterate every unidirectional link."""
        for _u, _v, data in self.graph.edges(data=True):
            yield data["link"]

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TopologyError`.

        Currently: the router graph must be weakly connected (every
        vantage can reach every server) and every host's router must
        exist (enforced at attach time, re-checked here).
        """
        if self.routers and not nx.is_weakly_connected(self.graph):
            raise TopologyError("router graph is not connected")
        for host in self.hosts.values():
            if host.router_id not in self.routers:
                raise TopologyError(
                    f"host {host.hostname!r} attached to missing router"
                )

    def __repr__(self) -> str:
        return (
            f"Topology(routers={len(self.routers)}, links={self.graph.number_of_edges()}, "
            f"hosts={len(self.hosts)})"
        )
