"""Internet checksum (RFC 1071).

Used by the IPv4, UDP, ICMP, and TCP codecs.  The implementation folds
16-bit words with end-around carry, exactly as deployed routers do, so
that incremental-update properties hold (e.g. a TTL decrement changes
the header checksum by a predictable amount — behaviour the traceroute
analysis relies on when comparing quoted headers).
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    Odd-length input is implicitly zero-padded on the right, per
    RFC 1071.  The returned value is the checksum to *place in the
    header* (i.e. already complemented).
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    # Summing 16-bit big-endian words; deferring the carry fold until
    # the end is equivalent to end-around carry and much faster.
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """Return True if ``data`` (including its checksum field) sums to zero.

    A block whose embedded checksum is correct produces an all-ones sum,
    so the complemented result is zero.
    """
    return internet_checksum(data) == 0


def pseudo_header(src: int, dst: int, protocol: int, length: int) -> bytes:
    """Build the IPv4 pseudo-header used by UDP and TCP checksums.

    Parameters are the source/destination addresses as 32-bit ints, the
    IP protocol number, and the transport segment length in bytes.
    """
    return bytes(
        (
            (src >> 24) & 0xFF,
            (src >> 16) & 0xFF,
            (src >> 8) & 0xFF,
            src & 0xFF,
            (dst >> 24) & 0xFF,
            (dst >> 16) & 0xFF,
            (dst >> 8) & 0xFF,
            dst & 0xFF,
            0,
            protocol & 0xFF,
            (length >> 8) & 0xFF,
            length & 0xFF,
        )
    )
