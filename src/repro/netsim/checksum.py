"""Internet checksum (RFC 1071).

Used by the IPv4, UDP, ICMP, and TCP codecs.  The implementation folds
16-bit words with end-around carry, exactly as deployed routers do, so
that incremental-update properties hold (e.g. a TTL decrement changes
the header checksum by a predictable amount — behaviour the traceroute
analysis relies on when comparing quoted headers).
"""

from __future__ import annotations

import struct
import sys

_LITTLE_ENDIAN = sys.byteorder == "little"


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    Odd-length input is implicitly zero-padded on the right, per
    RFC 1071.  The returned value is the checksum to *place in the
    header* (i.e. already complemented).

    The one's-complement sum is byte-order independent (RFC 1071 §2):
    summing native-endian 16-bit words and byte-swapping the folded
    result equals summing big-endian words directly, so the hot path
    reads words through a zero-copy ``memoryview`` cast instead of a
    per-byte Python loop.
    """
    if len(data) & 1:
        data = data + b"\x00"
    total = sum(memoryview(data).cast("H"))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    if _LITTLE_ENDIAN:
        total = ((total & 0xFF) << 8) | (total >> 8)
    return (~total) & 0xFFFF


def data_sum16(data: bytes) -> int:
    """Folded big-endian one's-complement sum of ``data`` (not inverted).

    The building block for arithmetic checksums: codecs sum their
    header fields as plain integers, add ``data_sum16`` of the
    variable-length tail, fold, and complement — skipping the
    concatenate-then-sweep of a full :func:`internet_checksum` call.
    Odd-length input is implicitly zero-padded, per RFC 1071.
    """
    if len(data) & 1:
        data = data + b"\x00"
    total = sum(memoryview(data).cast("H"))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    if _LITTLE_ENDIAN:
        total = ((total & 0xFF) << 8) | (total >> 8)
    return total


def verify_checksum(data: bytes) -> bool:
    """Return True if ``data`` (including its checksum field) sums to zero.

    A block whose embedded checksum is correct produces an all-ones sum,
    so the complemented result is zero.
    """
    return internet_checksum(data) == 0


_PSEUDO = struct.Struct("!IIxBH")

#: Memoised pseudo-headers.  A sweep checksums thousands of segments
#: between the same (vantage, server) address pair at a handful of
#: lengths, so the hit rate is high; the cap bounds a pathological
#: workload (cleared wholesale rather than LRU — cheaper, and a full
#: cache simply re-warms).
_PSEUDO_CACHE: dict[tuple[int, int, int, int], bytes] = {}
_PSEUDO_CACHE_MAX = 8192


def pseudo_header(src: int, dst: int, protocol: int, length: int) -> bytes:
    """Build the IPv4 pseudo-header used by UDP and TCP checksums.

    Parameters are the source/destination addresses as 32-bit ints, the
    IP protocol number, and the transport segment length in bytes.
    """
    key = (src, dst, protocol, length)
    cached = _PSEUDO_CACHE.get(key)
    if cached is None:
        if len(_PSEUDO_CACHE) >= _PSEUDO_CACHE_MAX:
            _PSEUDO_CACHE.clear()
        cached = _PSEUDO_CACHE[key] = _PSEUDO.pack(
            src & 0xFFFFFFFF, dst & 0xFFFFFFFF, protocol & 0xFF, length & 0xFFFF
        )
    return cached
