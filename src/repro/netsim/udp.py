"""UDP datagram codec (RFC 768).

UDP is the paper's protocol under test: NTP requests ride in UDP
datagrams whose enclosing IP header carries either not-ECT or ECT(0).
The codec computes the optional UDP checksum over the IPv4
pseudo-header so captures and ICMP quotations are byte-faithful.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .checksum import internet_checksum, pseudo_header
from .errors import CodecError
from .ipv4 import PROTO_UDP

_HEADER = struct.Struct("!HHHH")
HEADER_LEN = _HEADER.size  # 8


@dataclass
class UDPDatagram:
    """A UDP datagram (header fields plus payload)."""

    src_port: int
    dst_port: int
    payload: bytes = b""

    @property
    def length(self) -> int:
        """Value of the UDP length field (header + payload)."""
        return HEADER_LEN + len(self.payload)

    def encode(self, src_addr: int, dst_addr: int) -> bytes:
        """Serialise with a checksum over the IPv4 pseudo-header."""
        for name, port in (("src", self.src_port), ("dst", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise CodecError(f"UDP {name} port out of range: {port}")
        header = _HEADER.pack(self.src_port, self.dst_port, self.length, 0)
        pseudo = pseudo_header(src_addr, dst_addr, PROTO_UDP, self.length)
        csum = internet_checksum(pseudo + header + self.payload)
        if csum == 0:
            csum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
        return header[:6] + struct.pack("!H", csum) + self.payload

    @classmethod
    def decode(
        cls,
        data: bytes,
        src_addr: int | None = None,
        dst_addr: int | None = None,
        verify: bool = False,
    ) -> "UDPDatagram":
        """Parse wire bytes.

        Quotations may truncate the payload; the 8-byte header must be
        intact (this matches what classic routers quote: IP header plus
        the first 8 bytes of the transport datagram — exactly the UDP
        header).  Checksum verification needs the addresses from the
        enclosing IP header and a complete payload.
        """
        if len(data) < HEADER_LEN:
            raise CodecError(f"UDP header truncated: {len(data)} bytes")
        src_port, dst_port, length, csum = _HEADER.unpack_from(data)
        if length < HEADER_LEN:
            raise CodecError(f"bad UDP length field: {length}")
        payload = data[HEADER_LEN:length]
        if verify:
            if src_addr is None or dst_addr is None:
                raise CodecError("UDP checksum verification needs IP addresses")
            if len(data) < length:
                raise CodecError("cannot verify checksum of truncated datagram")
            if csum != 0:
                pseudo = pseudo_header(src_addr, dst_addr, PROTO_UDP, length)
                if internet_checksum(pseudo + data[:length]) != 0:
                    raise CodecError("UDP checksum mismatch")
        return cls(src_port=src_port, dst_port=dst_port, payload=payload)

    def __repr__(self) -> str:
        return (
            f"UDPDatagram({self.src_port} -> {self.dst_port}, "
            f"len={self.length})"
        )
