"""Packet-level Internet simulator.

This package is the substrate substitution for the public Internet the
paper measured: byte-exact IPv4/UDP/ICMP codecs, a discrete event
engine, routers with middlebox chains and ICMP quotation behaviour,
links with loss and ECN-capable AQM, and a topology/routing layer that
scales to thousands of hosts (see DESIGN.md §2).
"""

from .clock import DEFAULT_EPOCH_ORIGIN, NTP_UNIX_EPOCH_DELTA, SimClock
from .ecn import ECN, dscp_from_tos, ecn_from_tos, replace_ecn, tos_byte
from .engine import Event, EventScheduler
from .errors import (
    AddressError,
    ChecksumError,
    CodecError,
    NetSimError,
    RoutingError,
    SimulationError,
    SocketError,
    TopologyError,
)
from .host import Host
from .icmp import (
    CODE_PORT_UNREACHABLE,
    CODE_TTL_EXCEEDED,
    ICMPMessage,
    TYPE_DEST_UNREACHABLE,
    TYPE_TIME_EXCEEDED,
    admin_prohibited,
    port_unreachable,
    time_exceeded,
)
from .ipv4 import (
    DEFAULT_TTL,
    IPv4Packet,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    Prefix,
    format_addr,
    parse_addr,
)
from .link import Link, LinkOutcome, link_pair
from .middlebox import (
    ECTBleacher,
    ECTDropper,
    Middlebox,
    NotECTDropper,
    TOSBleacher,
    any_ect_firewall,
    udp_ect_firewall,
)
from .network import EVENT, FAST, Network, NetworkCounters
from .queues import (
    AQMDecision,
    BernoulliLoss,
    GilbertElliottLoss,
    NoCongestion,
    NoLoss,
    REDQueue,
    StaticCongestion,
    TimedOutageLoss,
)
from .router import HOP_DROP, HOP_FORWARD, HOP_TTL_EXPIRED, HopResult, Router
from .routing import PrefixTrie, RoutingTable
from .sockets import UDPSocket
from .topology import Topology
from .udp import UDPDatagram

__all__ = [
    "AQMDecision",
    "AddressError",
    "BernoulliLoss",
    "CODE_PORT_UNREACHABLE",
    "CODE_TTL_EXCEEDED",
    "ChecksumError",
    "CodecError",
    "DEFAULT_EPOCH_ORIGIN",
    "DEFAULT_TTL",
    "ECN",
    "ECTBleacher",
    "ECTDropper",
    "EVENT",
    "Event",
    "EventScheduler",
    "FAST",
    "GilbertElliottLoss",
    "HOP_DROP",
    "HOP_FORWARD",
    "HOP_TTL_EXPIRED",
    "HopResult",
    "Host",
    "ICMPMessage",
    "IPv4Packet",
    "Link",
    "LinkOutcome",
    "Middlebox",
    "NTP_UNIX_EPOCH_DELTA",
    "NetSimError",
    "Network",
    "NetworkCounters",
    "NoCongestion",
    "NoLoss",
    "NotECTDropper",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Prefix",
    "PrefixTrie",
    "REDQueue",
    "Router",
    "RoutingError",
    "RoutingTable",
    "SimClock",
    "SimulationError",
    "SocketError",
    "StaticCongestion",
    "TOSBleacher",
    "TYPE_DEST_UNREACHABLE",
    "TYPE_TIME_EXCEEDED",
    "TimedOutageLoss",
    "Topology",
    "TopologyError",
    "UDPDatagram",
    "UDPSocket",
    "admin_prohibited",
    "any_ect_firewall",
    "dscp_from_tos",
    "ecn_from_tos",
    "format_addr",
    "link_pair",
    "parse_addr",
    "port_unreachable",
    "replace_ecn",
    "time_exceeded",
    "tos_byte",
    "udp_ect_firewall",
]
