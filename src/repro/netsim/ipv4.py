"""IPv4 addressing and header codec.

Addresses are 32-bit integers throughout the simulator's hot paths;
:func:`parse_addr` / :func:`format_addr` convert to and from dotted
quads at the edges.  The header codec is byte-exact (RFC 791) including
the header checksum, because the traceroute analysis compares the
bytes a router quotes inside ICMP errors against the bytes originally
sent — the core technique of the paper's Section 4.2.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from .checksum import internet_checksum
from .ecn import ECN, ecn_from_tos, replace_ecn
from .errors import AddressError, CodecError

#: IP protocol numbers used in this project.
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_HEADER = struct.Struct("!BBHHHBBHII")
HEADER_LEN = _HEADER.size  # 20 — we do not emit IP options
DEFAULT_TTL = 64


def parse_addr(text: str) -> int:
    """Parse a dotted-quad IPv4 address into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"bad octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_addr(addr: int) -> str:
    """Format a 32-bit integer as a dotted-quad IPv4 address."""
    if not 0 <= addr <= 0xFFFFFFFF:
        raise AddressError(f"address out of range: {addr!r}")
    return f"{(addr >> 24) & 0xFF}.{(addr >> 16) & 0xFF}.{(addr >> 8) & 0xFF}.{addr & 0xFF}"


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix (network address plus mask length)."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length}")
        mask = self.mask
        if self.network & ~mask & 0xFFFFFFFF:
            raise AddressError(
                f"host bits set in prefix {format_addr(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation."""
        try:
            net_text, len_text = text.split("/")
        except ValueError as exc:
            raise AddressError(f"not a prefix: {text!r}") from exc
        return cls(parse_addr(net_text), int(len_text))

    @property
    def mask(self) -> int:
        """Network mask as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def contains(self, addr: int) -> bool:
        """True if ``addr`` falls inside this prefix."""
        return (addr & self.mask) == self.network

    def host(self, index: int) -> int:
        """Return the ``index``-th address inside the prefix."""
        if not 0 <= index < self.size:
            raise AddressError(f"host index {index} outside /{self.length}")
        return self.network + index

    def __str__(self) -> str:
        return f"{format_addr(self.network)}/{self.length}"


@dataclass
class IPv4Packet:
    """A parsed IPv4 datagram.

    The simulator moves these objects between nodes; the byte form is
    produced on demand (capture, ICMP quotation) via :meth:`encode`.
    ``ident`` mirrors the IP identification field, which the probing
    code uses to correlate ICMP quotations with the probes that
    elicited them.
    """

    src: int
    dst: int
    protocol: int
    payload: bytes = b""
    ttl: int = DEFAULT_TTL
    tos: int = 0
    ident: int = 0
    dont_fragment: bool = True

    @property
    def ecn(self) -> ECN:
        """ECN codepoint carried in the TOS byte."""
        return ecn_from_tos(self.tos)

    def with_ecn(self, ecn: ECN) -> "IPv4Packet":
        """Return a copy with the ECN field rewritten (DSCP preserved)."""
        return replace(self, tos=replace_ecn(self.tos, ecn))

    @property
    def total_length(self) -> int:
        """Total datagram length (header + payload), in bytes."""
        return HEADER_LEN + len(self.payload)

    def encode(self) -> bytes:
        """Serialise to wire format with a correct header checksum."""
        if not 0 <= self.ttl <= 255:
            raise CodecError(f"TTL out of range: {self.ttl}")
        if not 0 <= self.ident <= 0xFFFF:
            raise CodecError(f"IP ident out of range: {self.ident}")
        flags_frag = 0x4000 if self.dont_fragment else 0
        header = _HEADER.pack(
            (4 << 4) | (HEADER_LEN // 4),
            self.tos,
            self.total_length,
            self.ident,
            flags_frag,
            self.ttl,
            self.protocol,
            0,
            self.src,
            self.dst,
        )
        csum = internet_checksum(header)
        header = header[:10] + struct.pack("!H", csum) + header[12:]
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes, verify: bool = True) -> "IPv4Packet":
        """Parse wire bytes into a packet.

        Parameters
        ----------
        data:
            The datagram, possibly truncated *after* the header (ICMP
            quotations frequently truncate the transport payload; the
            header itself must be complete).
        verify:
            When True, a wrong header checksum raises
            :class:`CodecError`.
        """
        if len(data) < HEADER_LEN:
            raise CodecError(f"IPv4 header truncated: {len(data)} bytes")
        (
            ver_ihl,
            tos,
            total_length,
            ident,
            flags_frag,
            ttl,
            protocol,
            csum,
            src,
            dst,
        ) = _HEADER.unpack_from(data)
        if ver_ihl >> 4 != 4:
            raise CodecError(f"not IPv4: version={ver_ihl >> 4}")
        ihl = (ver_ihl & 0xF) * 4
        if ihl < HEADER_LEN or len(data) < ihl:
            raise CodecError(f"bad IHL: {ihl}")
        if verify and internet_checksum(data[:ihl]) != 0:
            raise CodecError("IPv4 header checksum mismatch")
        payload = data[ihl : total_length if total_length >= ihl else None]
        return cls(
            src=src,
            dst=dst,
            protocol=protocol,
            payload=payload,
            ttl=ttl,
            tos=tos,
            ident=ident,
            dont_fragment=bool(flags_frag & 0x4000),
        )

    def __repr__(self) -> str:
        return (
            f"IPv4Packet({format_addr(self.src)} -> {format_addr(self.dst)}, "
            f"proto={self.protocol}, ttl={self.ttl}, ecn={self.ecn.describe()}, "
            f"len={self.total_length})"
        )
