"""IPv4 addressing and header codec.

Addresses are 32-bit integers throughout the simulator's hot paths;
:func:`parse_addr` / :func:`format_addr` convert to and from dotted
quads at the edges.  The header codec is byte-exact (RFC 791) including
the header checksum, because the traceroute analysis compares the
bytes a router quotes inside ICMP errors against the bytes originally
sent — the core technique of the paper's Section 4.2.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .checksum import internet_checksum
from .ecn import DSCP_MASK, ECN, ECN_BY_CODE
from .errors import AddressError, CodecError

#: IP protocol numbers used in this project.
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_HEADER = struct.Struct("!BBHHHBBHII")
HEADER_LEN = _HEADER.size  # 20 — we do not emit IP options
DEFAULT_TTL = 64


def parse_addr(text: str) -> int:
    """Parse a dotted-quad IPv4 address into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"bad octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_addr(addr: int) -> str:
    """Format a 32-bit integer as a dotted-quad IPv4 address."""
    if not 0 <= addr <= 0xFFFFFFFF:
        raise AddressError(f"address out of range: {addr!r}")
    return f"{(addr >> 24) & 0xFF}.{(addr >> 16) & 0xFF}.{(addr >> 8) & 0xFF}.{addr & 0xFF}"


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix (network address plus mask length)."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length}")
        mask = self.mask
        if self.network & ~mask & 0xFFFFFFFF:
            raise AddressError(
                f"host bits set in prefix {format_addr(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation."""
        try:
            net_text, len_text = text.split("/")
        except ValueError as exc:
            raise AddressError(f"not a prefix: {text!r}") from exc
        try:
            length = int(len_text)
        except ValueError as exc:
            raise AddressError(
                f"bad prefix length {len_text!r} in {text!r}"
            ) from exc
        return cls(parse_addr(net_text), length)

    @property
    def mask(self) -> int:
        """Network mask as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def contains(self, addr: int) -> bool:
        """True if ``addr`` falls inside this prefix."""
        return (addr & self.mask) == self.network

    def host(self, index: int) -> int:
        """Return the ``index``-th address inside the prefix."""
        if not 0 <= index < self.size:
            raise AddressError(f"host index {index} outside /{self.length}")
        return self.network + index

    def __str__(self) -> str:
        return f"{format_addr(self.network)}/{self.length}"


class IPv4Packet:
    """A parsed IPv4 datagram, packed for the simulator's hot path.

    The simulator moves these objects between nodes; the byte form is
    produced on demand (capture, ICMP quotation) via :meth:`encode`.
    ``ident`` mirrors the IP identification field, which the probing
    code uses to correlate ICMP quotations with the probes that
    elicited them.

    Ownership contract: callers hand a packet to the network, which
    takes one :meth:`copy` at the boundary and thereafter mutates that
    simulator-owned copy **in place** (:attr:`ttl` decrements,
    :meth:`set_ecn` CE marks) instead of allocating a fresh object per
    hop.  Host-side filters and caller-visible rewrites keep
    copy-on-write semantics via :meth:`replace` / :meth:`with_ecn`.

    The header checksum never requires serialising the header:
    :meth:`encode` folds the nine 16-bit header words arithmetically
    from the fields, which is the closed form of RFC 1624's incremental
    update — a TTL decrement or TOS rewrite changes one word, and the
    checksum cost stays O(1) regardless of how many mutations occurred.
    """

    __slots__ = (
        "src",
        "dst",
        "protocol",
        "payload",
        "ttl",
        "tos",
        "ident",
        "dont_fragment",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        protocol: int,
        payload: bytes = b"",
        ttl: int = DEFAULT_TTL,
        tos: int = 0,
        ident: int = 0,
        dont_fragment: bool = True,
    ) -> None:
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.payload = payload
        self.ttl = ttl
        self.tos = tos
        self.ident = ident
        self.dont_fragment = dont_fragment

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not IPv4Packet:
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.protocol == other.protocol
            and self.payload == other.payload
            and self.ttl == other.ttl
            and self.tos == other.tos
            and self.ident == other.ident
            and self.dont_fragment == other.dont_fragment
        )

    __hash__ = None  # type: ignore[assignment]  # mutable, like the old dataclass

    def copy(self) -> "IPv4Packet":
        """Fast field-for-field copy (the network-boundary clone)."""
        new = IPv4Packet.__new__(IPv4Packet)
        new.src = self.src
        new.dst = self.dst
        new.protocol = self.protocol
        new.payload = self.payload
        new.ttl = self.ttl
        new.tos = self.tos
        new.ident = self.ident
        new.dont_fragment = self.dont_fragment
        return new

    def replace(self, **changes: object) -> "IPv4Packet":
        """Return a copy with ``changes`` applied (dataclasses.replace shape)."""
        new = self.copy()
        for name, value in changes.items():
            if name not in IPv4Packet.__slots__:
                raise TypeError(f"IPv4Packet has no field {name!r}")
            setattr(new, name, value)
        return new

    @property
    def ecn(self) -> ECN:
        """ECN codepoint carried in the TOS byte."""
        return ECN_BY_CODE[self.tos & 3]

    def with_ecn(self, ecn: ECN) -> "IPv4Packet":
        """Return a copy with the ECN field rewritten (DSCP preserved)."""
        new = self.copy()
        new.tos = (new.tos & DSCP_MASK) | ecn
        return new

    def set_ecn(self, ecn: ECN) -> None:
        """Rewrite the ECN field in place (simulator-owned packets only)."""
        self.tos = (self.tos & DSCP_MASK) | ecn

    @property
    def total_length(self) -> int:
        """Total datagram length (header + payload), in bytes."""
        return HEADER_LEN + len(self.payload)

    def encode(self) -> bytes:
        """Serialise to wire format with a correct header checksum."""
        ttl = self.ttl
        if not 0 <= ttl <= 255:
            raise CodecError(f"TTL out of range: {ttl}")
        ident = self.ident
        if not 0 <= ident <= 0xFFFF:
            raise CodecError(f"IP ident out of range: {ident}")
        tos = self.tos
        src = self.src
        dst = self.dst
        total_length = HEADER_LEN + len(self.payload)
        flags_frag = 0x4000 if self.dont_fragment else 0
        # One's-complement sum of the nine non-checksum header words,
        # computed straight from the fields (see class docstring).  Nine
        # words sum below 0x90000, so two folds absorb every carry.
        total = (
            0x4500
            + tos
            + total_length
            + ident
            + flags_frag
            + ((ttl << 8) | self.protocol)
            + (src >> 16)
            + (src & 0xFFFF)
            + (dst >> 16)
            + (dst & 0xFFFF)
        )
        total = (total & 0xFFFF) + (total >> 16)
        total = (total & 0xFFFF) + (total >> 16)
        return (
            _HEADER.pack(
                0x45,
                tos,
                total_length,
                ident,
                flags_frag,
                ttl,
                self.protocol,
                ~total & 0xFFFF,
                src,
                dst,
            )
            + self.payload
        )

    @classmethod
    def decode(cls, data: bytes, verify: bool = True) -> "IPv4Packet":
        """Parse wire bytes into a packet.

        Parameters
        ----------
        data:
            The datagram, possibly truncated *after* the header (ICMP
            quotations frequently truncate the transport payload; the
            header itself must be complete).
        verify:
            When True, a wrong header checksum raises
            :class:`CodecError`.
        """
        if len(data) < HEADER_LEN:
            raise CodecError(f"IPv4 header truncated: {len(data)} bytes")
        (
            ver_ihl,
            tos,
            total_length,
            ident,
            flags_frag,
            ttl,
            protocol,
            csum,
            src,
            dst,
        ) = _HEADER.unpack_from(data)
        if ver_ihl >> 4 != 4:
            raise CodecError(f"not IPv4: version={ver_ihl >> 4}")
        ihl = (ver_ihl & 0xF) * 4
        if ihl < HEADER_LEN or len(data) < ihl:
            raise CodecError(f"bad IHL: {ihl}")
        if verify and internet_checksum(data[:ihl]) != 0:
            raise CodecError("IPv4 header checksum mismatch")
        payload = data[ihl : total_length if total_length >= ihl else None]
        return cls(
            src=src,
            dst=dst,
            protocol=protocol,
            payload=payload,
            ttl=ttl,
            tos=tos,
            ident=ident,
            dont_fragment=bool(flags_frag & 0x4000),
        )

    def __repr__(self) -> str:
        return (
            f"IPv4Packet({format_addr(self.src)} -> {format_addr(self.dst)}, "
            f"proto={self.protocol}, ttl={self.ttl}, ecn={self.ecn.describe()}, "
            f"len={self.total_length})"
        )
