"""Exception hierarchy for the network simulator.

All simulator errors derive from :class:`NetSimError` so callers can
catch simulator failures without also swallowing programming errors.
"""


class NetSimError(Exception):
    """Base class for all network-simulator errors."""


class CodecError(NetSimError):
    """A packet could not be encoded or decoded.

    Raised for malformed wire data (truncated headers, bad version
    fields, checksum failures when verification is requested) and for
    attempts to encode out-of-range field values.
    """


class ChecksumError(CodecError):
    """A decoded header failed checksum verification."""


class AddressError(NetSimError):
    """An IPv4 address or prefix string could not be parsed."""


class RoutingError(NetSimError):
    """No route exists toward the requested destination."""


class TopologyError(NetSimError):
    """The topology under construction is inconsistent.

    Examples: attaching a host to an unknown router, duplicate node
    identifiers, or links that reference missing nodes.
    """


class SimulationError(NetSimError):
    """The event engine was used incorrectly.

    Examples: scheduling events in the past or running a stopped
    scheduler.
    """


class SocketError(NetSimError):
    """A simulated socket operation failed (port in use, not bound)."""
