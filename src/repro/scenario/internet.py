"""Builder for the calibrated synthetic Internet.

:class:`SyntheticInternet` assembles everything the measurement study
needs: an AS-level topology with transit and stub networks, the NTP
pool deployed per Table 1's geographic distribution, co-located web
servers with the observed ECN-policy mix, the vantage points, the
middlebox population calibrated to the paper's findings, a DNS server
publishing the pool zones, and ground truth for validation.

The builder is deterministic in its seed: two instances built from the
same :class:`~repro.scenario.parameters.ScenarioParams` are identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..asmap.mapping import ASMap, NoisyASMap
from ..geo.database import GeoDatabase
from ..geo.regions import Country, Region
from ..netsim.host import AccessLink, Host
from ..netsim.ipv4 import PROTO_TCP, PROTO_UDP, Prefix
from ..netsim.link import link_pair
from ..netsim.middlebox import ECTBleacher, ECTDropper, NotECTDropper
from ..netsim.network import FAST, Network
from ..netsim.queues import (
    BernoulliLoss,
    StaticCongestion,
    TimedOutageLoss,
)
from ..netsim.router import Router
from ..netsim.topology import Topology
from ..protocols.dns.server import DNSServer, RoundRobinZone
from ..protocols.http.server import PoolWebServer
from ..protocols.ntp.pool import NTPPool, PoolMember
from ..protocols.ntp.server import NTPServer
from ..protocols.quic.server import QUICServer
from ..tcp.connection import ECNServerPolicy, TCPStack
from .deployment import (
    AddressAllocator,
    choose_country,
    interleave_regions,
    server_access_loss,
    web_server_policy_mix,
)
from .parameters import ScenarioParams, default_params
from .vantages import VANTAGES, VantageSpec

#: Simulated seconds reserved per measurement epoch.  Epoch ``i``
#: starts at ``(i + 1) * MEASUREMENT_EPOCH_SPAN``; one trace (or one
#: vantage's traceroute sweep) at full scale needs well under 2e5
#: simulated seconds, so epochs never collide, while times stay small
#: enough that float timestamps keep sub-microsecond resolution.
MEASUREMENT_EPOCH_SPAN = 1_000_000.0


@dataclass
class ASInfo:
    """Bookkeeping for one autonomous system."""

    asn: int
    name: str
    kind: str  # "transit" | "stub" | "vantage" | "infra"
    region: Region
    prefix: Prefix
    country: Country | None = None
    router_ids: list[str] = field(default_factory=list)
    border_router_ids: list[str] = field(default_factory=list)
    _next_host_index: int = 256

    def next_host_addr(self, isolated: bool = False) -> int:
        """Allocate the next host address inside the AS prefix.

        ``isolated=True`` places the host alone in a fresh /24 (used
        for the geographically unlocatable servers, whose /24 must not
        shadow located neighbours in the geo database).
        """
        if isolated:
            if self._next_host_index % 256:
                self._next_host_index = (self._next_host_index // 256 + 1) * 256
            addr = self.prefix.host(self._next_host_index)
            self._next_host_index += 256
            return addr
        addr = self.prefix.host(self._next_host_index)
        self._next_host_index += 1
        return addr


@dataclass
class ServerInfo:
    """One NTP pool server as deployed."""

    index: int
    hostname: str
    addr: int
    asn: int
    region: Region
    country: Country | None
    host: Host = field(repr=False, default=None)  # type: ignore[assignment]
    ntp: NTPServer = field(repr=False, default=None)  # type: ignore[assignment]
    quic: QUICServer = field(repr=False, default=None)  # type: ignore[assignment]
    web: PoolWebServer | None = field(repr=False, default=None)
    web_policy: ECNServerPolicy | None = None


@dataclass
class GroundTruth:
    """What the scenario actually deployed (for validation and tests)."""

    udp_ect_blocked: set[int] = field(default_factory=set)
    any_ect_blocked: set[int] = field(default_factory=set)
    flaky_ect_blocked: set[int] = field(default_factory=set)
    not_ect_blocked: set[int] = field(default_factory=set)
    phoenix: set[int] = field(default_factory=set)
    offline_batch1: set[int] = field(default_factory=set)
    offline_batch2: set[int] = field(default_factory=set)
    bleacher_routers: set[str] = field(default_factory=set)
    flaky_bleacher_routers: set[str] = field(default_factory=set)
    boundary_bleacher_routers: set[str] = field(default_factory=set)

    @property
    def all_persistent_blocked(self) -> set[int]:
        return self.udp_ect_blocked | self.any_ect_blocked


class SyntheticInternet:
    """The complete measured world.  See the module docstring."""

    def __init__(self, params: ScenarioParams | None = None, mode: str = FAST) -> None:
        self.params = params if params is not None else default_params()
        self._rng = random.Random(self.params.seed)
        self.topology = Topology()
        self.pool = NTPPool()
        self.geo = GeoDatabase()
        self.as_map = ASMap()
        self.noisy_as_map = NoisyASMap(self.as_map, seed=self.params.seed)
        self._allocator = AddressAllocator()
        self._next_asn = 100

        self.autonomous_systems: list[ASInfo] = []
        self.transit_as: list[ASInfo] = []
        self.stub_as: dict[Region, list[ASInfo]] = {}
        self.vantage_as: dict[str, ASInfo] = {}
        self.vantage_hosts: dict[str, Host] = {}
        self.servers: list[ServerInfo] = []
        self.ground_truth = GroundTruth()
        self.current_batch = 1

        # Build order matters: all hosts must exist before the Network
        # attaches them, and services bind sockets after attachment.
        self._build_transit_core()
        self._build_stub_networks()
        self._build_vantages()
        self._infra_as = self._build_infra_as()
        self._place_servers()
        self._select_special_servers()
        self._deploy_bleachers()

        self.network = Network(self.topology, seed=self.params.seed + 1, mode=mode)
        self._bind_clocks()

        #: Optional chaos layer (:mod:`repro.faults`); installed via
        #: :meth:`install_fault_plan`, driven from :meth:`begin_epoch`.
        self.fault_injector = None
        #: Optional :class:`repro.obs.SpanRecorder`; installed via
        #: :meth:`set_span_recorder`, truthiness-gated at call sites.
        self.spans = None
        #: Optional :class:`repro.obs.EventLog`; installed via
        #: :meth:`set_event_log`, truthiness-gated at call sites.
        self.events = None

        self._start_services()
        self._deploy_server_middleboxes()
        self._apply_offline_sets()
        self.dns_server = self._start_dns()

    # ==================================================================
    # Topology construction
    # ==================================================================
    def _new_asn(self) -> int:
        asn = self._next_asn
        self._next_asn += 1
        return asn

    def _register_as(self, info: ASInfo) -> ASInfo:
        self.autonomous_systems.append(info)
        self.as_map.register(info.prefix, info.asn)
        return info

    def _add_as_routers(self, info: ASInfo, count: int) -> None:
        """Create ``count`` routers chained linearly inside the AS."""
        topo_params = self.params.topology
        rng = self._rng
        for index in range(count):
            router_id = f"as{info.asn}-r{index}"
            router = Router(
                router_id,
                asn=info.asn,
                interface_addr=info.prefix.host(index + 1),
                sends_icmp_errors=rng.random() >= topo_params.icmp_silent_router_fraction,
                icmp_response_rate=topo_params.icmp_response_rate,
                icmp_quote_payload=(
                    128 if rng.random() < topo_params.full_quote_router_fraction else 8
                ),
            )
            self.topology.add_router(router)
            info.router_ids.append(router_id)
            if index > 0:
                forward, backward = link_pair(
                    info.router_ids[index - 1],
                    router_id,
                    delay=topo_params.intra_as_delay,
                    loss=BernoulliLoss(topo_params.core_loss),
                )
                self.topology.add_link_pair(forward, backward)
        info.border_router_ids.append(info.router_ids[0])

    def _interconnect(self, a: ASInfo, b: ASInfo) -> None:
        """Join two ASes at their border routers."""
        topo_params = self.params.topology
        delay = (
            topo_params.regional_delay
            if a.region == b.region
            else topo_params.intercontinental_delay
        )
        forward, backward = link_pair(
            a.border_router_ids[0],
            b.border_router_ids[0],
            delay=delay,
            jitter=delay * 0.05,
            loss=BernoulliLoss(topo_params.core_loss),
        )
        self.topology.add_link_pair(forward, backward)

    def _build_transit_core(self) -> None:
        """Transit ASes: a connected ring plus random chords."""
        topo_params = self.params.topology
        regions = interleave_regions(self.params.servers.region_counts)
        # Unknown hosts live in Europe; don't give Unknown a transit AS.
        regions = [r for r in regions if r is not Region.UNKNOWN] or [Region.EUROPE]
        for index in range(topo_params.transit_as_count):
            region = regions[index % len(regions)]
            info = ASInfo(
                asn=self._new_asn(),
                name=f"transit-{index}",
                kind="transit",
                region=region,
                prefix=self._allocator.allocate(region),
            )
            self._add_as_routers(info, topo_params.routers_per_transit)
            # A second border router spreads inter-AS attachment points.
            if len(info.router_ids) > 2:
                info.border_router_ids.append(info.router_ids[-1])
            self._register_as(info)
            self.transit_as.append(info)
        count = len(self.transit_as)
        for index in range(count):
            self._interconnect(self.transit_as[index], self.transit_as[(index + 1) % count])
        for i in range(count):
            for j in range(i + 2, count):
                if (i == 0 and j == count - 1) or count <= 3:
                    continue  # ring edge already exists
                if self._rng.random() < 0.45:
                    self._interconnect(self.transit_as[i], self.transit_as[j])

    def _transits_in_region(self, region: Region) -> list[ASInfo]:
        same = [info for info in self.transit_as if info.region == region]
        return same if same else list(self.transit_as)

    def _attach_stub(self, info: ASInfo) -> None:
        """Connect a stub/vantage AS to one or two transit providers."""
        providers = self._transits_in_region(info.region)
        primary = self._rng.choice(providers)
        self._interconnect(info, primary)
        if len(self.transit_as) > 1 and self._rng.random() < 0.35:
            secondary = self._rng.choice(
                [t for t in self.transit_as if t is not primary]
            )
            self._interconnect(info, secondary)

    def _build_stub_networks(self) -> None:
        """Regional eyeball/hosting ASes that will hold pool servers."""
        topo_params = self.params.topology
        for region, count in topo_params.stub_as_per_region.items():
            if self.params.servers.region_counts.get(region, 0) == 0:
                continue
            infos = []
            for index in range(count):
                country = choose_country(self._rng, region)
                info = ASInfo(
                    asn=self._new_asn(),
                    name=f"stub-{region.name.lower()}-{index}",
                    kind="stub",
                    region=region,
                    country=country,
                    prefix=self._allocator.allocate(region),
                )
                self._add_as_routers(info, topo_params.routers_per_stub)
                self._register_as(info)
                self._attach_stub(info)
                infos.append(info)
            self.stub_as[region] = infos

    def _build_vantages(self) -> None:
        """One small AS and one measurement host per vantage point."""
        topo_params = self.params.topology
        for spec in VANTAGES:
            info = ASInfo(
                asn=self._new_asn(),
                name=f"vantage-{spec.key}",
                kind="vantage",
                region=spec.region,
                prefix=self._allocator.allocate(spec.region),
            )
            self._add_as_routers(info, 2)
            self._register_as(info)
            self._attach_stub(info)
            self.vantage_as[spec.key] = info

            host = Host(spec.key, info.next_host_addr(), info.router_ids[-1])
            host.access = self._vantage_access(spec)
            if spec.ect_udp_drop_probability > 0:
                # The paper's hypothesis for this vantage: home-gateway
                # equipment treating the ECN bits as TOS and
                # preferentially dropping marked UDP.
                host.outbound_filters.append(
                    ECTDropper(
                        name=f"{spec.key}-gateway",
                        protocols=frozenset({PROTO_UDP}),
                        probability=spec.ect_udp_drop_probability,
                    )
                )
            self.topology.add_host(host)
            self.vantage_hosts[spec.key] = host

    def _vantage_access(self, spec: VantageSpec) -> AccessLink:
        if spec.outage_rate > 0:
            loss = TimedOutageLoss(
                base=spec.access_loss,
                outage_rate=spec.outage_rate,
                outage_duration=spec.outage_duration,
                outage_loss=spec.outage_loss,
            )
        else:
            loss = BernoulliLoss(spec.access_loss)
        aqm = None
        if spec.congestion_probability > 0:
            # A congested upstream with a non-ECN AQM: congestion
            # signals become drops for everyone (it cannot CE-mark).
            aqm = StaticCongestion(
                signal_probability=spec.congestion_probability,
                ecn_capable_queue=False,
            )
        delay = self.params.topology.access_delay
        return AccessLink(delay=delay, loss=loss, upstream_aqm=aqm)

    def _bind_clocks(self) -> None:
        """Attach the simulation clock to time-aware loss models."""
        clock = self.network.scheduler.clock
        for host in self.topology.hosts.values():
            loss = host.access.loss
            if hasattr(loss, "bind_clock"):
                loss.bind_clock(clock)

    def _build_infra_as(self) -> ASInfo:
        """A small infrastructure AS hosting the pool DNS service."""
        info = ASInfo(
            asn=self._new_asn(),
            name="infra-dns",
            kind="infra",
            region=Region.EUROPE,
            prefix=self._allocator.allocate(Region.EUROPE),
        )
        self._add_as_routers(info, 2)
        self._register_as(info)
        self._attach_stub(info)
        host = Host("dns.pool.ntp.org", info.next_host_addr(), info.router_ids[-1])
        host.access = AccessLink(delay=0.001)
        self.topology.add_host(host)
        self._dns_host = host
        return info

    # ==================================================================
    # Server placement
    # ==================================================================
    def _place_servers(self) -> None:
        """Deploy the pool per Table 1's regional distribution."""
        rng = self._rng
        index = 0
        for region, count in self.params.servers.region_counts.items():
            if count == 0:
                continue
            if region is Region.UNKNOWN:
                # Geographically unlocatable hosts physically sit in
                # European hosting ASes; their /24s are registered as
                # unknown so the GeoLite2 lookup misses, as in Table 1.
                stubs = self.stub_as.get(Region.EUROPE, [])
            else:
                stubs = self.stub_as.get(region, [])
            if not stubs:
                raise ValueError(f"no stub ASes available for {region.value}")
            for _ in range(count):
                as_info = rng.choice(stubs)
                addr = as_info.next_host_addr(isolated=region is Region.UNKNOWN)
                hostname = f"ntp-{index:04d}.{(as_info.country.code if as_info.country else 'xx')}"
                host = Host(hostname, addr, rng.choice(as_info.router_ids))
                host.access = AccessLink(
                    delay=rng.uniform(0.001, 0.008),
                    loss=server_access_loss(rng, self.params.servers),
                )
                self.topology.add_host(host)
                server_prefix = Prefix(addr & 0xFFFFFF00, 24)
                if region is Region.UNKNOWN:
                    self.geo.register_unknown(server_prefix)
                    country = None
                else:
                    country = as_info.country
                    self.geo.register_country(
                        server_prefix, country, rng=rng, scatter_degrees=3.0
                    )
                self.servers.append(
                    ServerInfo(
                        index=index,
                        hostname=hostname,
                        addr=addr,
                        asn=as_info.asn,
                        region=region,
                        country=country,
                        host=host,
                    )
                )
                self.pool.add(
                    PoolMember(
                        hostname=hostname,
                        addr=addr,
                        country_code=country.code if country else "xx",
                        region=_zone_region_name(region),
                    )
                )
                index += 1

    # ==================================================================
    # Middleboxes
    # ==================================================================
    def _select_special_servers(self) -> None:
        """Pick which servers sit behind ECN-hostile firewalls.

        Selection happens before bleacher placement so that the ASes
        hosting these servers can be kept bleacher-free: a persistent
        ECT-dropping firewall is only observable if the mark actually
        reaches it (the paper's blocked dozen are visible from *every*
        vantage, so nothing upstream of them bleaches).
        """
        mb = self.params.middleboxes
        rng = self._rng
        truth = self.ground_truth
        special_count = (
            mb.udp_ect_blocked_servers
            + mb.flaky_ect_blocked_servers
            + mb.not_ect_blocked_servers
            + mb.phoenix_servers
        )
        # Concentrate the special servers in a handful of ASes: ECN
        # failures cluster by provider in the wild (Langley found "a
        # few providers being responsible for the majority of
        # failures"), and spreading them thinly would exclude nearly
        # every stub AS from bleacher deployment below.
        by_asn: dict[int, list[int]] = {}
        for server in self.servers:
            by_asn.setdefault(server.asn, []).append(server.addr)
        ordered_asns = sorted(by_asn, key=lambda asn: (-len(by_asn[asn]), asn))
        pool_addrs: list[int] = []
        for asn in ordered_asns:
            if len(pool_addrs) >= special_count * 2:
                break
            pool_addrs.extend(by_asn[asn])
        special = rng.sample(pool_addrs, min(special_count, len(pool_addrs)))
        cursor = 0

        def take(count: int) -> list[int]:
            nonlocal cursor
            slice_ = special[cursor : cursor + count]
            cursor += count
            return slice_

        udp_blocked = take(mb.udp_ect_blocked_servers)
        truth.any_ect_blocked = set(udp_blocked[: mb.any_ect_blocked_servers])
        truth.udp_ect_blocked = set(udp_blocked) - truth.any_ect_blocked
        truth.flaky_ect_blocked = set(take(mb.flaky_ect_blocked_servers))
        truth.not_ect_blocked = set(take(mb.not_ect_blocked_servers))
        truth.phoenix = set(take(mb.phoenix_servers))

    def _special_asns(self) -> set[int]:
        """ASes that must stay bleacher-free (see above)."""
        protected_addrs = (
            self.ground_truth.udp_ect_blocked
            | self.ground_truth.any_ect_blocked
            | self.ground_truth.flaky_ect_blocked
        )
        return {
            server.asn for server in self.servers if server.addr in protected_addrs
        }

    def _deploy_bleachers(self) -> None:
        """Scatter ECT bleachers over stub-AS routers, biased to borders.

        Bleachers live only in destination-side (stub) ASes: in the
        real Internet a single bleaching transit router touches a tiny
        fraction of paths, but in our deliberately small transit core
        it would touch most of them, distorting every downstream
        experiment.  Stub placement keeps strips "few, widely
        scattered, and not located near the sender" (Figure 4) while
        the border bias produces the paper's AS-boundary concentration.
        """
        mb = self.params.middleboxes
        rng = self._rng
        excluded_asns = self._special_asns()
        border: set[str] = set()
        for info in self.autonomous_systems:
            border.update(info.border_router_ids)
        interior = [
            rid
            for info in self.autonomous_systems
            if info.kind == "stub" and info.asn not in excluded_asns
            for rid in info.router_ids
            if rid not in border
        ]
        border_candidates = [
            rid
            for info in self.autonomous_systems
            if info.kind == "stub" and info.asn not in excluded_asns
            for rid in info.border_router_ids
        ]
        router_population = len(interior) + len(border_candidates)
        # Floor of two keeps strip behaviour observable at tiny test
        # scales without over-bleaching them; the sometimes-strip
        # variant additionally needs a third deployment.
        total = max(2, round(router_population * mb.bleacher_router_fraction))
        at_border = min(len(border_candidates), round(total * mb.bleacher_at_boundary_fraction))
        in_interior = min(len(interior), total - at_border)
        chosen = rng.sample(border_candidates, at_border) + rng.sample(interior, in_interior)
        flaky_count = max(1, round(len(chosen) * mb.bleacher_flaky_fraction)) if len(chosen) >= 3 else 0
        flaky = set(rng.sample(chosen, flaky_count)) if flaky_count else set()
        for router_id in chosen:
            probability = mb.bleacher_flaky_probability if router_id in flaky else 1.0
            self.topology.routers[router_id].add_middlebox(
                ECTBleacher(name=f"bleach-{router_id}", probability=probability)
            )
            self.ground_truth.bleacher_routers.add(router_id)
            if router_id in flaky:
                self.ground_truth.flaky_bleacher_routers.add(router_id)
            if router_id in border_candidates:
                self.ground_truth.boundary_bleacher_routers.add(router_id)

    def _deploy_server_middleboxes(self) -> None:
        """Install the destination-side firewalls chosen earlier."""
        mb = self.params.middleboxes
        truth = self.ground_truth
        by_addr = {server.addr: server for server in self.servers}

        for addr in sorted(truth.udp_ect_blocked):
            by_addr[addr].host.inbound_filters.append(
                ECTDropper(name=f"fw-{addr:08x}", protocols=frozenset({PROTO_UDP}))
            )
        for addr in sorted(truth.any_ect_blocked):
            by_addr[addr].host.inbound_filters.append(
                ECTDropper(
                    name=f"fw-{addr:08x}",
                    protocols=frozenset({PROTO_UDP, PROTO_TCP}),
                )
            )
        for addr in sorted(truth.flaky_ect_blocked):
            by_addr[addr].host.inbound_filters.append(
                ECTDropper(
                    name=f"flaky-fw-{addr:08x}",
                    protocols=frozenset({PROTO_UDP}),
                    probability=mb.flaky_ect_drop_probability,
                )
            )
        for addr in sorted(truth.not_ect_blocked):
            by_addr[addr].host.inbound_filters.append(
                NotECTDropper(
                    name=f"odd-fw-{addr:08x}",
                    protocols=frozenset({PROTO_UDP}),
                    probability=mb.not_ect_drop_probability,
                )
            )
        ec2_prefixes = tuple(
            self.vantage_as[spec.key].prefix
            for spec in VANTAGES
            if spec.kind == "ec2"
        )
        for addr in sorted(truth.phoenix):
            by_addr[addr].host.inbound_filters.append(
                NotECTDropper(
                    name=f"phoenix-{addr:08x}",
                    protocols=frozenset({PROTO_UDP}),
                    src_prefixes=ec2_prefixes,
                    probability=mb.not_ect_drop_probability,
                )
            )

    # ==================================================================
    # Services
    # ==================================================================
    def _start_services(self) -> None:
        """NTP daemons everywhere; web servers on the configured share."""
        rng = self._rng
        params = self.params.servers
        truth = self.ground_truth
        for server in self.servers:
            server.ntp = NTPServer(server.host)
            # QUIC endpoints are always deployed: binding UDP 443 draws
            # no randomness and no legacy probe targets the port, so
            # worlds with and without the QUIC probe family stay
            # bit-identical (the flag lives on the measurement app).
            server.quic = QUICServer(server.host)

        # Special UDP-ECT-blocked servers get deliberate web behaviour:
        # most negotiate ECN over TCP (§4.4's middleboxes discriminate
        # by payload protocol), the any-ECT-blocked few refuse.
        special_sorted = sorted(truth.udp_ect_blocked) + sorted(truth.any_ect_blocked)
        special_web: dict[int, ECNServerPolicy] = {}
        for addr in sorted(truth.udp_ect_blocked):
            special_web[addr] = ECNServerPolicy.NEGOTIATE
        for addr in sorted(truth.any_ect_blocked):
            special_web[addr] = ECNServerPolicy.IGNORE

        regular = [s for s in self.servers if s.addr not in special_web]
        web_total = round(len(self.servers) * params.web_server_fraction)
        regular_web_count = max(0, web_total - len(special_web))
        regular_web = rng.sample(regular, min(regular_web_count, len(regular)))
        policies = web_server_policy_mix(rng, params, len(regular_web))

        by_addr = {server.addr: server for server in self.servers}
        for addr, policy in special_web.items():
            server = by_addr[addr]
            server.web_policy = policy
            server.web = PoolWebServer(server.host, ecn_policy=policy)
        for server, policy in zip(regular_web, policies):
            server.web_policy = policy
            server.web = PoolWebServer(server.host, ecn_policy=policy)

        # Hosts without a web server: most drop SYNs silently (no
        # stack / firewalled), the rest refuse with RST.
        for server in self.servers:
            if server.web is None and rng.random() >= params.no_server_silent_fraction:
                TCPStack(server.host)  # live stack, no listener: RSTs

    def _apply_offline_sets(self) -> None:
        """Choose which volunteers are dark in each batch."""
        rng = self._rng
        params = self.params.servers
        truth = self.ground_truth
        protected = (
            truth.udp_ect_blocked
            | truth.any_ect_blocked
            | truth.not_ect_blocked
            | truth.phoenix
        )
        candidates = [s.addr for s in self.servers if s.addr not in protected]
        batch1_count = round(len(self.servers) * params.offline_rate_batch1)
        truth.offline_batch1 = set(rng.sample(candidates, min(batch1_count, len(candidates))))
        remaining = [addr for addr in candidates if addr not in truth.offline_batch1]
        churn_count = round(len(self.servers) * params.churn_rate_batch2)
        truth.offline_batch2 = truth.offline_batch1 | set(
            rng.sample(remaining, min(churn_count, len(remaining)))
        )
        self.enter_batch(1)

    def enter_batch(self, batch: int) -> None:
        """Switch server availability to measurement batch 1 or 2."""
        if batch not in (1, 2):
            raise ValueError(f"batch must be 1 or 2: {batch!r}")
        self.current_batch = batch
        offline = (
            self.ground_truth.offline_batch1
            if batch == 1
            else self.ground_truth.offline_batch2
        )
        for server in self.servers:
            online = server.addr not in offline
            server.ntp.set_online(online)
            # A dark volunteer host is dark for every daemon it runs.
            server.quic.set_online(online)

    def begin_epoch(self, index: int) -> None:
        """Enter measurement epoch ``index``: the hermetic reset.

        A measurement epoch is the unit of deterministic replay — one
        trace of the study schedule, or one vantage's traceroute sweep.
        This resets *every* piece of state that evolves while probing
        (clock, the network's packet RNG, per-host filter RNGs and
        ephemeral-port/ISS counters, burst/outage loss-model state) to
        a baseline derived only from ``(params.seed, index)``.  Two
        consequences, both load-bearing for :mod:`repro.runner`:

        * an epoch's measurements are a pure function of
          ``(params, index)`` — a worker process that rebuilds this
          world from the same params reproduces them bit for bit, no
          matter which epochs it ran before;
        * the sequential path and the sharded path share this exact
          call, so their merged results are identical by construction.

        Requires an idle simulation (no pending events), which is
        always the case between probes.
        """
        self.network.scheduler.reset_time((index + 1) * MEASUREMENT_EPOCH_SPAN)
        stream = _epoch_stream(self.params.seed, index)
        self.network.rng.seed(stream)
        for host_index, host in enumerate(self.topology.hosts.values()):
            host.reset_measurement_state(
                stream ^ (0x9E3779B1 * (host_index + 1) & 0xFFFFFFFF)
            )
        for _src, _dst, data in self.topology.graph.edges(data=True):
            link = data.get("link")
            if link is not None:
                link.loss.reset()
                link.aqm.reset()
        for server in self.servers:
            # QUIC connection state is evolved state the per-host reset
            # above doesn't cover (it lives in the daemon, not the
            # host); clearing it draws no randomness.
            server.quic.reset_connections()
        if self.fault_injector is not None:
            # After the pristine reset: revert the previous epoch's
            # impairments and install this epoch's.  Installation draws
            # no randomness, so the epoch stays a pure function of
            # (params, index, plan).
            self.fault_injector.begin_epoch(index, (index + 1) * MEASUREMENT_EPOCH_SPAN)
        # Last, after any blackhole changes above: roll the network's
        # per-epoch routing tables (they persist when the excluded set
        # didn't change — see Network.begin_epoch).
        self.network.begin_epoch()

    def set_span_recorder(self, recorder) -> None:
        """Attach (or detach, with ``None``) a span recorder.

        The recorder's simulated clock is bound to this world's event
        engine so span ``sim_start``/``sim_end`` read the same clock
        :meth:`begin_epoch` resets — the source of their determinism.
        """
        self.spans = recorder
        if recorder is not None:
            scheduler = self.network.scheduler
            recorder.bind_clock(lambda: scheduler.now)

    def set_event_log(self, events) -> None:
        """Attach (or detach, with ``None``) a structured event log.

        Emission sites (the fault injector, the measurement app) read
        ``world.events`` truthiness-gated, exactly like ``world.spans``.
        """
        self.events = events

    def install_fault_plan(self, plan) -> None:
        """Attach (or detach, with ``None``) a :class:`~repro.faults.FaultPlan`.

        Faults take effect from the next :meth:`begin_epoch`; detaching
        reverts any impairments currently installed.
        """
        if self.fault_injector is not None:
            self.fault_injector.revert()
            self.network.set_excluded_routers(frozenset())
        if plan is None or not plan.events:
            self.fault_injector = None
            return
        from ..faults.injector import FaultInjector

        self.fault_injector = FaultInjector(self, plan)

    def _start_dns(self) -> DNSServer:
        """Publish the pool zones from the DNS infrastructure host."""
        dns = DNSServer(self._dns_host)
        self.refresh_dns_zones(dns)
        return dns

    def refresh_dns_zones(self, dns: DNSServer | None = None) -> None:
        """(Re)build pool zones from current membership (churn support)."""
        dns = dns if dns is not None else self.dns_server
        rng = self._rng
        for zone_name in self.pool.zone_names():
            addresses = [member.addr for member in self.pool.zone_members(zone_name)]
            rng.shuffle(addresses)
            existing = dns.zone(zone_name)
            if existing is not None:
                existing.set_addresses(addresses)
            else:
                dns.add_zone(RoundRobinZone(name=zone_name, addresses=addresses))

    # ==================================================================
    # Conveniences
    # ==================================================================
    @property
    def dns_addr(self) -> int:
        return self._dns_host.addr

    def server_by_addr(self, addr: int) -> ServerInfo | None:
        for server in self.servers:
            if server.addr == addr:
                return server
        return None

    def __repr__(self) -> str:
        return (
            f"SyntheticInternet(servers={len(self.servers)}, "
            f"ases={len(self.autonomous_systems)}, {self.topology!r})"
        )


def _zone_region_name(region: Region) -> str:
    """DNS zone label for a region (e.g. 'north-america')."""
    return region.value.lower().replace(" ", "-")


def _epoch_stream(seed: int, index: int) -> int:
    """Derive the per-epoch RNG stream from the scenario seed.

    A splitmix-style mix keeps neighbouring ``(seed, index)`` pairs far
    apart in stream space so per-epoch streams are uncorrelated.
    """
    mixed = (seed * 1_000_003 + (index + 1) * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 30
    mixed = (mixed * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 27
    return mixed
