"""Calibration constants for the synthetic Internet.

Every number here either comes straight from the paper (server counts,
trace counts, vantage list) or is calibrated so the simulated
measurement reproduces the paper's observed rates (middlebox
prevalence, loss rates, churn).  DESIGN.md §5 cross-references each
constant to the paper statement it serves.

Use :func:`default_params` for the full-scale study and
:func:`scaled_params` for proportionally smaller runs (tests and
benchmarks); scaling preserves every *rate* so the reproduced shapes
are unchanged, only the population shrinks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..geo.regions import PAPER_REGION_COUNTS, PAPER_TOTAL_SERVERS, Region


@dataclass(frozen=True)
class MiddleboxParams:
    """Prevalence and strength of ECN-hostile behaviours."""

    #: Servers behind firewalls that always drop ECT-marked UDP (the
    #: paper sees 9-14 servers with >50 % differential reachability).
    udp_ect_blocked_servers: int = 12
    #: Of those, how many sit behind firewalls that drop ECT for TCP
    #: too (Table 2: a minority of the UDP-ECT-unreachable also fail
    #: with TCP).
    any_ect_blocked_servers: int = 3
    #: Servers behind *intermittent* ECT-UDP droppers (route flap /
    #: load-balancing): the paper notes differential reachability that
    #: is "high, but not 100 %" and ~4x more transient failures.
    flaky_ect_blocked_servers: int = 40
    #: Per-trace probability that a flaky dropper is on-path.
    flaky_ect_drop_probability: float = 0.3
    #: Servers that drop **not-ECT** UDP from everywhere (Figure 3b
    #: shows one such oddball)...
    not_ect_blocked_servers: int = 1
    #: ...and the two Phoenix Public Library servers that drop not-ECT
    #: only on paths from EC2.
    phoenix_servers: int = 2
    #: Per-attempt drop probability of the not-ECT droppers (high but
    #: imperfect: their differential reachability is <100 % in places).
    not_ect_drop_probability: float = 0.97
    #: Fraction of stub-AS routers carrying an ECT bleacher.  A
    #: bleacher affects only paths to servers behind it, and a strip
    #: shows at the bleacher hop plus a short downstream run, so 4-5 %
    #: of stub routers yields ~0.7 % of hop observations with the mark
    #: missing — §4.2's 99.3 % pass rate (154 421 + "red" of 155 439;
    #: calibrated empirically, see EXPERIMENTS.md).
    bleacher_router_fraction: float = 0.045
    #: Fraction of bleachers that only sometimes strip (125 of 1143
    #: strip locations in the paper).
    bleacher_flaky_fraction: float = 0.11
    #: Strip probability of a flaky bleacher.
    bleacher_flaky_probability: float = 0.5
    #: Fraction of bleacher deployments placed on AS-border routers
    #: (drives the paper's "59.1 % of strip locations at AS
    #: boundaries").  Deliberately below 0.591: a border bleacher is
    #: seen by every path into its AS while an interior one is seen
    #: only by paths to servers behind it, so border deployments are
    #: over-represented among observed strip *events*; 0.45 deployed
    #: yields ~0.6 measured (calibrated empirically, EXPERIMENTS.md).
    bleacher_at_boundary_fraction: float = 0.55


@dataclass(frozen=True)
class ServerParams:
    """NTP pool population and behaviour."""

    total: int = PAPER_TOTAL_SERVERS
    region_counts: dict[Region, int] = field(
        default_factory=lambda: dict(PAPER_REGION_COUNTS)
    )
    #: Fraction of pool hosts offline during the first batch (the pool
    #: is volunteer-run; the paper reaches on average 2253 of 2500).
    offline_rate_batch1: float = 0.075
    #: Additional fraction going dark before the July/August batch
    #: ("servers leaving the NTP pool between the two sets of
    #: measurements").
    churn_rate_batch2: float = 0.045
    #: Fraction of pool hosts running the encouraged web server
    #: (paper: 1334 of 2500 on average).
    web_server_fraction: float = 1334 / 2500
    #: Of hosts with web servers: ECN negotiation policy mix.  The
    #: NEGOTIATE share is the paper's headline 82.0 %.
    ecn_negotiate_fraction: float = 0.82
    ecn_reflect_fraction: float = 0.005
    ecn_drop_syn_fraction: float = 0.01
    #: Hosts without a web server: fraction whose SYNs are silently
    #: dropped (vs. answered with RST by a live stack).
    no_server_silent_fraction: float = 0.7
    #: Per-server access link loss (volunteer DSL/colo mix).
    access_loss_mean: float = 0.004
    access_loss_max: float = 0.02


@dataclass(frozen=True)
class TopologyParams:
    """Shape of the synthetic Internet."""

    transit_as_count: int = 10
    #: Extra stub/eyeball ASes per region that host pool servers.
    stub_as_per_region: dict[Region, int] = field(
        default_factory=lambda: {
            Region.AFRICA: 2,
            Region.ASIA: 6,
            Region.AUSTRALIA: 3,
            Region.EUROPE: 18,
            Region.NORTH_AMERICA: 8,
            Region.SOUTH_AMERICA: 2,
        }
    )
    routers_per_transit: int = 4
    routers_per_stub: int = 3
    #: Mean one-way delays (seconds) by link class.
    intra_as_delay: float = 0.002
    regional_delay: float = 0.012
    intercontinental_delay: float = 0.075
    access_delay: float = 0.004
    #: Background loss on core links (tiny; the Internet core is clean).
    core_loss: float = 0.0002
    #: Probability that a router suppresses ICMP errors entirely.
    icmp_silent_router_fraction: float = 0.04
    #: Probability that a responding router rate-limits (per-probe
    #: response probability).
    icmp_response_rate: float = 0.97
    #: Fraction of routers quoting full datagrams (RFC 1812 style)
    #: rather than header + 8 bytes.
    full_quote_router_fraction: float = 0.35


@dataclass(frozen=True)
class ProbeParams:
    """The measurement application's own knobs (from §3 of the paper)."""

    ntp_attempts: int = 5
    ntp_timeout: float = 1.0
    http_deadline: float = 8.0
    traceroute_max_ttl: int = 30
    traceroute_attempts: int = 2
    traceroute_timeout: float = 1.0
    #: Consecutive silent TTLs after which a traceroute gives up.
    traceroute_silent_limit: int = 4
    #: QUIC ECN-validation probe (RFC 9000 §13.4): 1-RTT PINGs sent
    #: after the handshake, all ECT(0)-marked.
    quic_packets: int = 8
    #: ECT(0)-marked Initial transmissions before falling back — the
    #: paper's 5-transmission UDP probe policy, so a lossy gateway is
    #: given the same chance it gets in the raw reachability probe.
    quic_handshake_attempts: int = 5
    #: Not-ECT Initial attempts distinguishing blackhole from dead.
    quic_fallback_attempts: int = 2
    #: Handshake retransmission timer and post-burst ACK drain time.
    quic_timeout: float = 1.0
    #: Pacing gap between 1-RTT PINGs.
    quic_packet_gap: float = 0.02


@dataclass(frozen=True)
class TraceScheduleParams:
    """How the 210 traces divide across vantages and batches."""

    total_traces: int = 210
    #: Traces collected in the early (April/May) batch, only from the
    #: homes and the UGla wireless vantage.
    batch1_traces_per_home_vantage: int = 8
    #: Gap (simulated seconds) between consecutive traces.
    inter_trace_gap: float = 60.0


@dataclass(frozen=True)
class ScenarioParams:
    """Everything needed to build and measure one synthetic Internet."""

    seed: int = 20150401
    servers: ServerParams = field(default_factory=ServerParams)
    middleboxes: MiddleboxParams = field(default_factory=MiddleboxParams)
    topology: TopologyParams = field(default_factory=TopologyParams)
    probes: ProbeParams = field(default_factory=ProbeParams)
    schedule: TraceScheduleParams = field(default_factory=TraceScheduleParams)

    @property
    def scale(self) -> float:
        """Population scale relative to the paper's 2500 servers."""
        return self.servers.total / PAPER_TOTAL_SERVERS


def default_params(seed: int = 20150401) -> ScenarioParams:
    """The full-scale configuration (2500 servers, 210 traces)."""
    return ScenarioParams(seed=seed)


def params_for_scale(scale: float, seed: int = 20150401) -> ScenarioParams:
    """The canonical ``(scale, seed) -> params`` mapping.

    Every entry point that materialises a world from a scale knob (the
    CLI, :meth:`repro.study.Study.run`/``load``, and runner worker
    processes rebuilding a shard's world) must agree on this mapping,
    or the determinism contract between them silently breaks.
    """
    return default_params(seed) if scale >= 1.0 else scaled_params(scale, seed)


def scaled_params(scale: float, seed: int = 20150401) -> ScenarioParams:
    """A proportionally smaller study preserving all rates.

    ``scale`` multiplies population sizes (servers, traces, middlebox
    deployments) but leaves probabilities untouched, so percentages
    reproduce the paper's shapes at any scale.  Counts are floored at
    values that keep every experiment meaningful (at least one server
    per non-empty region, at least one of each middlebox class).
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1]: {scale!r}")
    if scale == 1.0:
        return ScenarioParams(seed=seed)

    region_counts = {}
    for region, count in PAPER_REGION_COUNTS.items():
        region_counts[region] = max(1, round(count * scale)) if count else 0
    total = sum(region_counts.values())

    servers = ServerParams(
        total=total,
        region_counts=region_counts,
    )
    middleboxes = MiddleboxParams(
        udp_ect_blocked_servers=max(2, round(12 * scale)),
        any_ect_blocked_servers=max(1, round(3 * scale)),
        flaky_ect_blocked_servers=max(2, round(40 * scale)),
        not_ect_blocked_servers=1,
        phoenix_servers=2 if total >= 40 else 1,
    )
    base_topo = TopologyParams()
    stub_counts = {
        region: max(1, round(count * max(scale, 0.25)))
        for region, count in base_topo.stub_as_per_region.items()
    }
    topology = dataclasses.replace(
        base_topo,
        transit_as_count=max(4, round(base_topo.transit_as_count * max(scale, 0.4))),
        stub_as_per_region=stub_counts,
    )
    batch1_each = max(1, round(8 * scale))
    # Keep at least four batch-2 traces per vantage at any scale.  The
    # >50 % persistence rule needs sample size: with one or two traces
    # a transient loss event (a wireless outage swallowing one probe
    # sequence) reads as >50 % differential reachability; with four,
    # even a double transient lands at exactly 0.5 and the strict
    # inequality excludes it — the paper's 210-trace schedule provides
    # this robustness naturally.
    schedule = TraceScheduleParams(
        total_traces=max(4 * 13 + 3 * batch1_each, round(210 * scale)),
        batch1_traces_per_home_vantage=batch1_each,
    )
    return ScenarioParams(
        seed=seed,
        servers=servers,
        middleboxes=middleboxes,
        topology=topology,
        schedule=schedule,
    )
