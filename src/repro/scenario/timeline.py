"""Time-parameterised scenario drift for longitudinal campaigns.

The paper's headline numbers are a 2015 snapshot, but its Figure 6 is
a time series, and the 2022 re-measurement ("A Fresh Look at ECN
Traversal in the Wild", arXiv 2208.14523) re-ran the methodology seven
years later: ECT **bleaching had collapsed** (the once-ubiquitous
mark-stripping middleboxes largely disappeared) while server-side ECN
**negotiation soared** past 90 %, and hard UDP-ECT blackholing
declined more slowly than bleaching.  "Using UDP for Internet
Transport Evolution" (arXiv 1612.07816) frames the same drift from the
protocol-design side: middlebox behaviour is a moving target, so any
longitudinal claim needs a model of how prevalence changes over time.

This module turns that drift into scenario parameters:

- a :class:`Timeline` maps a simulated calendar *year* to drift rates
  via piecewise-linear interpolation between anchors (clamped outside
  the anchor range), with the 2015 anchor equal to the paper's
  calibration and the 2022 anchor qualitatively matching the
  re-measurement;
- an :class:`EpochDrift` is the frozen, hashable value of one epoch's
  drift — it rides inside :class:`~repro.runner.worker.ShardJob` and
  joins the worker world-cache key, exactly like a fault plan;
- :func:`apply_drift` rewrites a :class:`ScenarioParams` through
  ``dataclasses.replace`` so a drifted world is built by the same
  constructor as an undrifted one.  ``apply_drift`` is only ever
  invoked when a drift is present, so legacy ``(scale, seed)`` worlds
  stay bit-identical.

Determinism contract: epoch ``N`` of a campaign is a pure function of
``(campaign spec, N)``.  :meth:`Timeline.drift_for_epoch` derives the
epoch's calendar year, rates, and (when address-pool churn is on) a
per-epoch world seed splitmix-mixed from the campaign seed — no clock,
no global state.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping
from dataclasses import dataclass

from .parameters import ScenarioParams, params_for_scale

#: The paper's measurement window (April-August 2015) as a fractional
#: year — the calibration anchor every timeline starts from.
PAPER_YEAR = 2015.33

#: The re-measurement window of arXiv 2208.14523 (mid-2022).
FRESH_LOOK_YEAR = 2022.5

#: Keep the drifted negotiate fraction clear of the REFLECT/DROP_SYN
#: shares so the policy mix never exceeds 1.0 (deployment.py raises).
_MAX_NEGOTIATE = 0.98


class TimelineError(ValueError):
    """An unknown timeline name or unusable drift document."""


def _clamp(value: float, low: float, high: float) -> float:
    return min(max(value, low), high)


def piecewise_linear(anchors: tuple[tuple[float, float], ...], year: float) -> float:
    """Interpolate ``anchors`` at ``year``, clamping outside the range.

    Anchors are ``(year, value)`` pairs in strictly increasing year
    order.  Clamping (hold the end values) keeps extrapolated decades
    physical: a collapsed bleacher population does not go negative in
    2030, it stays collapsed.
    """
    if not anchors:
        raise TimelineError("a timeline series needs at least one anchor")
    if year <= anchors[0][0]:
        return anchors[0][1]
    if year >= anchors[-1][0]:
        return anchors[-1][1]
    for (x0, y0), (x1, y1) in zip(anchors, anchors[1:]):
        if x0 <= year <= x1:
            span = x1 - x0
            if span <= 0:
                return y1
            return y0 + (y1 - y0) * (year - x0) / span
    return anchors[-1][1]  # pragma: no cover - unreachable by construction


def epoch_world_seed(seed: int, epoch: int) -> int:
    """Per-epoch world seed modelling address-pool churn.

    The same splitmix-style mix the hermetic epochs use
    (:func:`repro.scenario.internet._epoch_stream` idiom): neighbouring
    ``(seed, epoch)`` pairs land far apart, and the result is a pure
    function of its inputs, so a resumed campaign re-derives the exact
    world a crashed driver was building.  Folded to 31 bits to stay a
    friendly JSON/manifest integer.
    """
    mixed = (seed * 1_000_003 + (epoch + 1) * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 30
    mixed = (mixed * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 27
    return mixed & 0x7FFFFFFF


@dataclass(frozen=True)
class EpochDrift:
    """One epoch's drift, as a frozen hashable value.

    Scales are multipliers on the 2015-calibrated parameters;
    ``negotiate_rate`` is absolute (the paper reports it as a headline
    fraction, so timelines anchor it directly).  ``world_seed`` is the
    epoch's scenario seed when address-pool churn is modelled, or
    ``None`` to keep the campaign seed (a frozen pool).

    Hashable on purpose: a drift rides in every
    :class:`~repro.runner.worker.ShardJob` and joins the per-process
    world-cache key next to the fault plan.
    """

    year: float
    bleacher_scale: float = 1.0
    blackhole_scale: float = 1.0
    negotiate_rate: float = 0.82
    churn_scale: float = 1.0
    world_seed: int | None = None

    def to_dict(self) -> dict:
        # No rounding: JSON round-trips Python floats exactly, and a
        # drift document must rebuild the *identical* world — a drift
        # re-derived from a manifest participates in byte-identity
        # checks against the originally built world.
        payload: dict = {
            "year": self.year,
            "bleacher_scale": self.bleacher_scale,
            "blackhole_scale": self.blackhole_scale,
            "negotiate_rate": self.negotiate_rate,
            "churn_scale": self.churn_scale,
        }
        if self.world_seed is not None:
            payload["world_seed"] = self.world_seed
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "EpochDrift":
        if not isinstance(payload, Mapping) or "year" not in payload:
            raise TimelineError(f"not a drift document: {payload!r}")
        try:
            world_seed = payload.get("world_seed")
            return cls(
                year=float(payload["year"]),
                bleacher_scale=float(payload.get("bleacher_scale", 1.0)),
                blackhole_scale=float(payload.get("blackhole_scale", 1.0)),
                negotiate_rate=float(payload.get("negotiate_rate", 0.82)),
                churn_scale=float(payload.get("churn_scale", 1.0)),
                world_seed=int(world_seed) if world_seed is not None else None,
            )
        except (TypeError, ValueError) as exc:
            raise TimelineError(f"unusable drift document: {exc}") from exc


@dataclass(frozen=True)
class Timeline:
    """Piecewise-linear drift rates anchored to calendar years."""

    name: str
    bleacher: tuple[tuple[float, float], ...]
    blackhole: tuple[tuple[float, float], ...]
    negotiate: tuple[tuple[float, float], ...]
    churn: tuple[tuple[float, float], ...]

    def drift_at(self, year: float) -> EpochDrift:
        """The drift rates at one calendar year (no pool churn seed)."""
        return EpochDrift(
            year=year,
            bleacher_scale=piecewise_linear(self.bleacher, year),
            blackhole_scale=piecewise_linear(self.blackhole, year),
            negotiate_rate=piecewise_linear(self.negotiate, year),
            churn_scale=piecewise_linear(self.churn, year),
        )

    def drift_for_epoch(
        self,
        seed: int,
        epoch: int,
        start_year: float = PAPER_YEAR,
        cadence_years: float = 1.0,
        pool_churn: bool = True,
    ) -> EpochDrift:
        """Epoch ``N``'s drift — a pure function of its arguments."""
        if epoch < 0:
            raise TimelineError(f"epoch must be >= 0: {epoch!r}")
        if cadence_years <= 0:
            raise TimelineError(f"cadence_years must be > 0: {cadence_years!r}")
        drift = self.drift_at(start_year + epoch * cadence_years)
        if pool_churn:
            drift = dataclasses.replace(
                drift, world_seed=epoch_world_seed(seed, epoch)
            )
        return drift


#: The 2015 → 2022 drift of arXiv 2208.14523, qualitatively: bleaching
#: collapses to ~a tenth of its 2015 prevalence, negotiation climbs
#: from 82 % into the low-to-mid 90s, hard ECT blackholing falls more
#: slowly than bleaching, and pool membership churns faster as the
#: volunteer population turns over.
FRESH_LOOK = Timeline(
    name="fresh-look",
    bleacher=((PAPER_YEAR, 1.0), (FRESH_LOOK_YEAR, 0.12)),
    blackhole=((PAPER_YEAR, 1.0), (FRESH_LOOK_YEAR, 0.45)),
    negotiate=((PAPER_YEAR, 0.82), (FRESH_LOOK_YEAR, 0.935)),
    churn=((PAPER_YEAR, 1.0), (FRESH_LOOK_YEAR, 1.6)),
)

#: A control timeline: every epoch re-measures the 2015 Internet.
#: Useful for separating drift effects from pool-churn effects.
FROZEN = Timeline(
    name="frozen",
    bleacher=((PAPER_YEAR, 1.0),),
    blackhole=((PAPER_YEAR, 1.0),),
    negotiate=((PAPER_YEAR, 0.82),),
    churn=((PAPER_YEAR, 1.0),),
)

TIMELINES: dict[str, Timeline] = {
    FRESH_LOOK.name: FRESH_LOOK,
    FROZEN.name: FROZEN,
}


def timeline_by_name(name: str) -> Timeline:
    """Look up a registered timeline; loud on unknown names."""
    try:
        return TIMELINES[name]
    except KeyError:
        known = ", ".join(sorted(TIMELINES))
        raise TimelineError(f"unknown timeline {name!r}; one of: {known}") from None


def apply_drift(params: ScenarioParams, drift: EpochDrift) -> ScenarioParams:
    """Rewrite calibrated parameters through one epoch's drift.

    Counts keep the same floors ``scaled_params`` applies (at least one
    of each middlebox class survives any collapse — a tiny-scale world
    with zero blackholes would degenerate several analyses), and the
    negotiate fraction stays clear of the REFLECT/DROP_SYN shares so
    the web-server policy mix never exceeds 1.0.
    """
    mb = params.middleboxes
    udp_blocked = max(1, round(mb.udp_ect_blocked_servers * drift.blackhole_scale))
    middleboxes = dataclasses.replace(
        mb,
        bleacher_router_fraction=_clamp(
            mb.bleacher_router_fraction * drift.bleacher_scale, 0.0, 1.0
        ),
        udp_ect_blocked_servers=udp_blocked,
        any_ect_blocked_servers=min(
            udp_blocked,
            max(0, round(mb.any_ect_blocked_servers * drift.blackhole_scale)),
        ),
        flaky_ect_blocked_servers=max(
            1, round(mb.flaky_ect_blocked_servers * drift.blackhole_scale)
        ),
    )
    servers = dataclasses.replace(
        params.servers,
        ecn_negotiate_fraction=_clamp(drift.negotiate_rate, 0.0, _MAX_NEGOTIATE),
        offline_rate_batch1=_clamp(
            params.servers.offline_rate_batch1 * drift.churn_scale, 0.0, 0.5
        ),
        churn_rate_batch2=_clamp(
            params.servers.churn_rate_batch2 * drift.churn_scale, 0.0, 0.5
        ),
    )
    seed = params.seed if drift.world_seed is None else drift.world_seed
    return dataclasses.replace(
        params, seed=seed, servers=servers, middleboxes=middleboxes
    )


def drifted_params(
    scale: float, seed: int, drift: EpochDrift | None
) -> ScenarioParams:
    """The canonical ``(scale, seed, drift) -> params`` mapping.

    Extends :func:`~repro.scenario.parameters.params_for_scale` the
    same way every entry point must agree on: ``drift=None`` returns
    the legacy mapping untouched (bit-identical worlds), anything else
    layers :func:`apply_drift` on top.
    """
    params = params_for_scale(scale, seed)
    return params if drift is None else apply_drift(params, drift)
