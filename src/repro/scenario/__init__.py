"""Calibrated synthetic-Internet scenarios (the substitution substrate)."""

from .internet import ASInfo, GroundTruth, ServerInfo, SyntheticInternet
from .parameters import (
    MiddleboxParams,
    ProbeParams,
    ScenarioParams,
    ServerParams,
    TopologyParams,
    TraceScheduleParams,
    default_params,
    scaled_params,
)
from .vantages import VANTAGES, VantageSpec, ec2_vantages, vantage_by_key

__all__ = [
    "ASInfo",
    "GroundTruth",
    "MiddleboxParams",
    "ProbeParams",
    "ScenarioParams",
    "ServerInfo",
    "ServerParams",
    "SyntheticInternet",
    "TopologyParams",
    "TraceScheduleParams",
    "VANTAGES",
    "VantageSpec",
    "default_params",
    "ec2_vantages",
    "scaled_params",
    "vantage_by_key",
]
