"""Calibrated synthetic-Internet scenarios (the substitution substrate)."""

from .internet import ASInfo, GroundTruth, ServerInfo, SyntheticInternet
from .parameters import (
    MiddleboxParams,
    ProbeParams,
    ScenarioParams,
    ServerParams,
    TopologyParams,
    TraceScheduleParams,
    default_params,
    scaled_params,
)
from .timeline import (
    TIMELINES,
    EpochDrift,
    Timeline,
    TimelineError,
    apply_drift,
    drifted_params,
    timeline_by_name,
)
from .vantages import VANTAGES, VantageSpec, ec2_vantages, vantage_by_key

__all__ = [
    "ASInfo",
    "EpochDrift",
    "GroundTruth",
    "MiddleboxParams",
    "ProbeParams",
    "ScenarioParams",
    "ServerInfo",
    "ServerParams",
    "SyntheticInternet",
    "TIMELINES",
    "Timeline",
    "TimelineError",
    "TopologyParams",
    "TraceScheduleParams",
    "VANTAGES",
    "VantageSpec",
    "apply_drift",
    "default_params",
    "drifted_params",
    "ec2_vantages",
    "scaled_params",
    "timeline_by_name",
    "vantage_by_key",
]
