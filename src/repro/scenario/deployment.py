"""Deployment helpers: addressing, country selection, behaviour mixes.

These are the small, testable pieces the :mod:`repro.scenario.internet`
builder composes: a region-aware address allocator, weighted country
choice, per-server access impairments, and the ECN-policy mix for the
co-located web servers.
"""

from __future__ import annotations

import random

from ..geo.regions import Country, Region, countries_in_region
from ..netsim.errors import TopologyError
from ..netsim.ipv4 import Prefix
from ..netsim.queues import BernoulliLoss
from ..tcp.connection import ECNServerPolicy
from .parameters import ServerParams

#: First /8 of each region's address pool.  Values are spaced so a
#: region can spill into following /8s without colliding.
REGION_BASE_OCTET: dict[Region, int] = {
    Region.EUROPE: 62,
    Region.NORTH_AMERICA: 24,
    Region.ASIA: 101,
    Region.AUSTRALIA: 110,
    Region.SOUTH_AMERICA: 131,
    Region.AFRICA: 141,
    Region.UNKNOWN: 151,
}

#: How many consecutive /8s each region may use.
REGION_POOL_SPAN = 8


class AddressAllocator:
    """Hands out /16 prefixes from per-region address pools.

    Keeping regions in disjoint /8 ranges makes addresses legible in
    debug output and lets tests assert region membership from the
    address alone.
    """

    def __init__(self) -> None:
        self._next_slot: dict[Region, int] = {region: 0 for region in REGION_BASE_OCTET}

    def allocate(self, region: Region) -> Prefix:
        """Allocate the next unused /16 in ``region``'s pool."""
        slot = self._next_slot[region]
        if slot >= 256 * REGION_POOL_SPAN:
            raise TopologyError(f"address pool exhausted for {region.value}")
        self._next_slot[region] = slot + 1
        first_octet = REGION_BASE_OCTET[region] + slot // 256
        second_octet = slot % 256
        return Prefix((first_octet << 24) | (second_octet << 16), 16)


def choose_country(rng: random.Random, region: Region) -> Country:
    """Pick a country within ``region``, weighted by pool share."""
    countries = countries_in_region(region)
    if not countries:
        raise ValueError(f"no countries configured for {region.value}")
    weights = [country.weight for country in countries]
    return rng.choices(countries, weights=weights, k=1)[0]


def server_access_loss(rng: random.Random, params: ServerParams) -> BernoulliLoss:
    """Per-server access-link loss (volunteer DSL/colo mix).

    Exponentially distributed around the mean, capped: most servers are
    clean, a tail is fairly lossy — which is what produces the paper's
    transiently unreachable servers.
    """
    rate = min(rng.expovariate(1.0 / params.access_loss_mean), params.access_loss_max)
    return BernoulliLoss(rate)


def web_server_policy_mix(
    rng: random.Random, params: ServerParams, count: int
) -> list[ECNServerPolicy]:
    """ECN policies for ``count`` web servers, in random order.

    The NEGOTIATE share is the paper's 82.0 %; small REFLECT and
    DROP_ECN_SYN shares model the broken implementations earlier
    studies (Langley 2008) observed.
    """
    negotiate = round(count * params.ecn_negotiate_fraction)
    reflect = round(count * params.ecn_reflect_fraction)
    drop_syn = round(count * params.ecn_drop_syn_fraction)
    ignore = count - negotiate - reflect - drop_syn
    if ignore < 0:
        raise ValueError("ECN policy fractions exceed 1.0")
    policies = (
        [ECNServerPolicy.NEGOTIATE] * negotiate
        + [ECNServerPolicy.REFLECT] * reflect
        + [ECNServerPolicy.DROP_ECN_SYN] * drop_syn
        + [ECNServerPolicy.IGNORE] * ignore
    )
    rng.shuffle(policies)
    return policies


def interleave_regions(region_counts: dict[Region, int]) -> list[Region]:
    """Region assignment sequence for transit ASes.

    Orders regions by weight so that, for any transit count, bigger
    regions get transits first and every region with servers
    eventually gets one.
    """
    ordered = sorted(
        (region for region, count in region_counts.items() if count > 0),
        key=lambda region: -region_counts[region],
    )
    return ordered
