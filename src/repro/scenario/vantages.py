"""The thirteen measurement vantage points of the study.

Two author homes (different UK ISPs), the University of Glasgow on
wired and wireless access, and one VM in each of the nine 2015 EC2
regions.  Each vantage carries the access-network character the paper
attributes to it:

* **McQuistin home** — "poor reachability ... perhaps due to
  congestion in the access network", and by far the largest count of
  servers unreachable with ECT-marked UDP (Table 2: 160 vs ~10
  elsewhere).  Modelled as a congested non-ECN AQM on the upstream
  plus a home-gateway middlebox that preferentially drops ECT-marked
  UDP — the paper's own hypothesis of equipment "treating the ECN bits
  as part of the type-of-service field and preferentially dropping".
* **UGla wireless** — "more variation in the wireless traces", and
  Table 2's elevated ECT-unreachable count: multi-second outage
  bursts (interference/roaming) that can swallow an entire
  5-retransmission probe sequence, over a small base loss.
* **Wired/EC2 vantages** — clean access.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geo.regions import Region


@dataclass(frozen=True)
class VantageSpec:
    """Static description of one measurement location."""

    key: str
    #: Bar label used in the paper's figures.
    label: str
    #: Longer name used in Table 2 and Figure 3 rows.
    table_label: str
    kind: str  # "home" | "campus-wired" | "campus-wireless" | "ec2"
    region: Region
    country_code: str
    #: Baseline per-packet loss on the access link.
    access_loss: float = 0.001
    #: Timed outage bursts (wireless): mean arrivals per second, mean
    #: duration in seconds, and loss rate during an outage; a zero
    #: rate disables.
    outage_rate: float = 0.0
    outage_duration: float = 0.0
    outage_loss: float = 0.8
    #: Congestion signalling probability on the upstream (non-ECN AQM).
    congestion_probability: float = 0.0
    #: Probability that the home gateway drops an ECT-marked UDP packet.
    ect_udp_drop_probability: float = 0.0
    #: Whether the vantage participates in the early measurement batch.
    in_batch1: bool = False


#: The thirteen vantages, in the paper's figure order (left to right).
VANTAGES: tuple[VantageSpec, ...] = (
    VantageSpec(
        key="perkins-home",
        label="Perkins\nhome",
        table_label="Perkins home",
        kind="home",
        region=Region.EUROPE,
        country_code="uk",
        access_loss=0.004,
        in_batch1=True,
    ),
    VantageSpec(
        key="mcquistin-home",
        label="McQuistin\nhome",
        table_label="McQuistin home",
        kind="home",
        region=Region.EUROPE,
        country_code="uk",
        access_loss=0.012,
        congestion_probability=0.035,
        ect_udp_drop_probability=0.55,
        in_batch1=True,
    ),
    VantageSpec(
        key="ugla-wired",
        label="UGla\nwired",
        table_label="U. Glasgow wired",
        kind="campus-wired",
        region=Region.EUROPE,
        country_code="uk",
        access_loss=0.0005,
    ),
    VantageSpec(
        key="ugla-wireless",
        label="UGla\nw'less",
        table_label="U. Glasgow w'less",
        kind="campus-wireless",
        region=Region.EUROPE,
        country_code="uk",
        access_loss=0.002,
        # Calibrated so the wireless vantage shows roughly double the
        # clean vantages' transient ECT-unreachable count with visible
        # trace-to-trace variance (the paper's Table 2 wireless row is
        # higher still at 43, but pushing the outage model harder
        # inflates the converse differential past what Figure 2b
        # allows — see EXPERIMENTS.md "Honest deviations").
        outage_rate=1.0 / 110.0,
        outage_duration=10.0,
        outage_loss=0.78,
        in_batch1=True,
    ),
    VantageSpec(
        key="ec2-california",
        label="EC2\nCal",
        table_label="EC2 California",
        kind="ec2",
        region=Region.NORTH_AMERICA,
        country_code="us",
        access_loss=0.0002,
    ),
    VantageSpec(
        key="ec2-frankfurt",
        label="EC2\nFra",
        table_label="EC2 Frankfurt",
        kind="ec2",
        region=Region.EUROPE,
        country_code="de",
        access_loss=0.0002,
    ),
    VantageSpec(
        key="ec2-ireland",
        label="EC2\nIre",
        table_label="EC2 Ireland",
        kind="ec2",
        region=Region.EUROPE,
        country_code="uk",
        access_loss=0.0002,
    ),
    VantageSpec(
        key="ec2-oregon",
        label="EC2\nOre",
        table_label="EC2 Oregon",
        kind="ec2",
        region=Region.NORTH_AMERICA,
        country_code="us",
        access_loss=0.0002,
    ),
    VantageSpec(
        key="ec2-saopaulo",
        label="EC2\nSao",
        table_label="EC2 Sao Paulo",
        kind="ec2",
        region=Region.SOUTH_AMERICA,
        country_code="br",
        access_loss=0.0003,
    ),
    VantageSpec(
        key="ec2-singapore",
        label="EC2\nSin",
        table_label="EC2 Singapore",
        kind="ec2",
        region=Region.ASIA,
        country_code="sg",
        access_loss=0.0002,
    ),
    VantageSpec(
        key="ec2-sydney",
        label="EC2\nSyd",
        table_label="EC2 Sydney",
        kind="ec2",
        region=Region.AUSTRALIA,
        country_code="au",
        access_loss=0.0002,
    ),
    VantageSpec(
        key="ec2-tokyo",
        label="EC2\nTok",
        table_label="EC2 Tokyo",
        kind="ec2",
        region=Region.ASIA,
        country_code="jp",
        access_loss=0.0002,
    ),
    VantageSpec(
        key="ec2-virginia",
        label="EC2\nVir",
        table_label="EC2 Virginia",
        kind="ec2",
        region=Region.NORTH_AMERICA,
        country_code="us",
        access_loss=0.0002,
    ),
)


def vantage_by_key(key: str) -> VantageSpec:
    """Look up a vantage; raises KeyError for unknown keys."""
    for spec in VANTAGES:
        if spec.key == key:
            return spec
    raise KeyError(key)


def ec2_vantages() -> tuple[VantageSpec, ...]:
    """The nine EC2 vantages (source of the Phoenix-pair scoping)."""
    return tuple(spec for spec in VANTAGES if spec.kind == "ec2")
