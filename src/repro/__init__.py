"""Reproduction of McQuistin & Perkins, "Is Explicit Congestion
Notification usable with UDP?" (IMC 2015).

The package is organised bottom-up:

* :mod:`repro.netsim` — packet-level Internet simulator (the
  substitution for the live Internet the paper measured);
* :mod:`repro.tcp` — TCP with RFC 3168 ECN negotiation;
* :mod:`repro.protocols` — NTP, DNS and HTTP over the simulator;
* :mod:`repro.geo`, :mod:`repro.asmap` — geolocation and IP→AS mapping;
* :mod:`repro.scenario` — the calibrated synthetic Internet;
* :mod:`repro.core` — the paper's measurement application and every
  analysis (one module per table/figure);
* :mod:`repro.stats`, :mod:`repro.reporting` — statistics and output.

Quick start::

    from repro import SyntheticInternet, MeasurementApplication, scaled_params

    world = SyntheticInternet(scaled_params(0.1, seed=7))
    app = MeasurementApplication(world)
    traces = app.run_study()

See README.md for the full tour, DESIGN.md for the system inventory,
and EXPERIMENTS.md for paper-versus-reproduced numbers.
"""

from .core.discovery import PoolDiscovery
from .core.measurement import MeasurementApplication, trace_plan
from .core.probes import (
    Traceroute,
    probe_tcp,
    probe_tcp_ecn_usability,
    probe_udp,
    run_traceroute,
)
from .core.tracebox import run_tracebox
from .core.traces import ProbeOutcome, Trace, TraceSet, TracerouteCampaign
from .netsim.ecn import ECN
from .scenario.internet import SyntheticInternet
from .scenario.parameters import ScenarioParams, default_params, scaled_params
from .scenario.vantages import VANTAGES
from .study import Study

__version__ = "1.0.0"

__all__ = [
    "ECN",
    "MeasurementApplication",
    "PoolDiscovery",
    "ProbeOutcome",
    "ScenarioParams",
    "Study",
    "SyntheticInternet",
    "Trace",
    "TraceSet",
    "Traceroute",
    "TracerouteCampaign",
    "VANTAGES",
    "__version__",
    "default_params",
    "probe_tcp",
    "probe_tcp_ecn_usability",
    "probe_udp",
    "run_tracebox",
    "run_traceroute",
    "scaled_params",
    "trace_plan",
]
