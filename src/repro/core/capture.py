"""Packet capture: the simulated tcpdump.

The paper's methodology records responses "using a parallel tcpdump
session" rather than trusting the probing client's own view.  A
:class:`PacketCapture` attaches to a host's tap, decodes every frame
crossing it, and supports the filters the real sessions used (by
protocol and port).  Captures also let tests assert wire-level facts,
e.g. that an ECN-setup SYN really left with ECE and CWR set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..netsim.ecn import ECN
from ..netsim.errors import CodecError
from ..netsim.host import Host
from ..netsim.icmp import ICMPMessage
from ..netsim.ipv4 import IPv4Packet, PROTO_ICMP, PROTO_TCP, PROTO_UDP, format_addr
from ..netsim.udp import UDPDatagram
from ..tcp.segment import Flags, TCPSegment


@dataclass(frozen=True)
class CapturedPacket:
    """One captured frame plus its decoded transport header."""

    time: float
    direction: str  # "in" | "out"
    packet: IPv4Packet
    udp: UDPDatagram | None = None
    tcp: TCPSegment | None = None
    icmp: ICMPMessage | None = None

    @property
    def ecn(self) -> ECN:
        return self.packet.ecn

    def summary(self) -> str:
        """A one-line tcpdump-style rendering."""
        src = format_addr(self.packet.src)
        dst = format_addr(self.packet.dst)
        if self.udp is not None:
            detail = f"UDP {src}:{self.udp.src_port} > {dst}:{self.udp.dst_port} len={self.udp.length}"
        elif self.tcp is not None:
            flags = "|".join(flag.name for flag in Flags if self.tcp.flags & flag) or "-"
            detail = f"TCP {src}:{self.tcp.src_port} > {dst}:{self.tcp.dst_port} [{flags}]"
        elif self.icmp is not None:
            detail = f"ICMP {src} > {dst} type={self.icmp.icmp_type} code={self.icmp.code}"
        else:
            detail = f"IP {src} > {dst} proto={self.packet.protocol}"
        return f"{self.time:.6f} {self.direction:<3} {detail} [{self.ecn.describe()}]"


#: Filter predicate over captured packets.
CaptureFilter = Callable[[CapturedPacket], bool]


def udp_port_filter(port: int) -> CaptureFilter:
    """Match UDP traffic to or from ``port``."""

    def predicate(captured: CapturedPacket) -> bool:
        return captured.udp is not None and port in (
            captured.udp.src_port,
            captured.udp.dst_port,
        )

    return predicate


def tcp_port_filter(port: int) -> CaptureFilter:
    """Match TCP traffic to or from ``port``."""

    def predicate(captured: CapturedPacket) -> bool:
        return captured.tcp is not None and port in (
            captured.tcp.src_port,
            captured.tcp.dst_port,
        )

    return predicate


class PacketCapture:
    """A running capture session on one host."""

    def __init__(
        self,
        host: Host,
        capture_filter: CaptureFilter | None = None,
        max_packets: int | None = None,
    ) -> None:
        self.host = host
        self.filter = capture_filter
        self.max_packets = max_packets
        self.packets: list[CapturedPacket] = []
        self.dropped = 0
        self._remove = host.add_tap(self._on_packet)
        self._running = True

    def _on_packet(self, direction: str, packet: IPv4Packet, now: float) -> None:
        if not self._running:
            return
        captured = _decode(direction, packet, now)
        if self.filter is not None and not self.filter(captured):
            return
        if self.max_packets is not None and len(self.packets) >= self.max_packets:
            self.dropped += 1
            return
        self.packets.append(captured)

    def stop(self) -> list[CapturedPacket]:
        """Stop capturing and return what was recorded."""
        if self._running:
            self._running = False
            self._remove()
        return self.packets

    def __enter__(self) -> "PacketCapture":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self):
        return iter(self.packets)

    def dump(self) -> str:
        """The whole capture as tcpdump-style text."""
        return "\n".join(captured.summary() for captured in self.packets)


def _decode(direction: str, packet: IPv4Packet, now: float) -> CapturedPacket:
    udp = tcp = icmp = None
    try:
        if packet.protocol == PROTO_UDP:
            udp = UDPDatagram.decode(packet.payload)
        elif packet.protocol == PROTO_TCP:
            tcp = TCPSegment.decode(packet.payload)
        elif packet.protocol == PROTO_ICMP:
            icmp = ICMPMessage.decode(packet.payload, verify=False)
    except CodecError:
        pass
    return CapturedPacket(
        time=now, direction=direction, packet=packet, udp=udp, tcp=tcp, icmp=icmp
    )
