"""The probing primitives of the measurement application.

Three probes, straight from §3 of the paper:

* :func:`probe_udp` — an NTP request in a UDP packet with a chosen ECN
  field; up to five transmissions, one second timeout each.
* :func:`probe_tcp` — an HTTP GET over TCP, with or without an
  ECN-setup SYN; records whether an ECN-setup SYN-ACK came back.
* :class:`Traceroute` — TTL-limited ECT(0)-marked UDP probes whose
  returning ICMP quotations reveal, hop by hop, whether the mark
  survived (§4.2, after Malone & Luckie).

Plus the modern-sequel extension:

* :func:`probe_quic` — a QUIC-like connection performing RFC 9000
  §13.4 ECN count validation, distinguishing bleached from blackholed
  from valid paths where raw reachability probes cannot.

All primitives are synchronous from the caller's perspective: they
drive the simulation scheduler until the probe resolves, exactly as a
blocking measurement binary would.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.ecn import ECN
from ..netsim.engine import Event
from ..netsim.errors import CodecError
from ..netsim.host import Host
from ..netsim.icmp import (
    CODE_PORT_UNREACHABLE,
    ICMPMessage,
    TYPE_DEST_UNREACHABLE,
    TYPE_TIME_EXCEEDED,
)
from ..netsim.ipv4 import IPv4Packet
from ..netsim.udp import UDPDatagram
from ..protocols.http.client import FetchResult, HTTPFetch
from ..protocols.ntp.client import NTPQueryResult, query_server
from ..protocols.quic.connection import QUICProbeResult, probe_server
from ..scenario.parameters import ProbeParams
from .traces import HopObservation, PathTrace

#: Classic traceroute destination port base.
TRACEROUTE_PORT_BASE = 33434


def probe_udp(
    host: Host,
    server_addr: int,
    ecn: ECN,
    attempts: int = 5,
    timeout: float = 1.0,
) -> NTPQueryResult:
    """Run one UDP reachability measurement to completion."""
    results: list[NTPQueryResult] = []
    query_server(
        host,
        server_addr,
        ecn,
        results.append,
        attempts=attempts,
        timeout=timeout,
    )
    host.network.scheduler.run()
    if not results:
        raise RuntimeError("NTP query did not resolve")  # pragma: no cover
    return results[0]


def probe_quic(
    host: Host,
    server_addr: int,
    params: ProbeParams | None = None,
) -> QUICProbeResult:
    """Run one QUIC ECN-validation probe to completion."""
    params = params if params is not None else ProbeParams()
    results: list[QUICProbeResult] = []
    probe_server(
        host,
        server_addr,
        results.append,
        packets=params.quic_packets,
        handshake_attempts=params.quic_handshake_attempts,
        fallback_attempts=params.quic_fallback_attempts,
        timeout=params.quic_timeout,
        packet_gap=params.quic_packet_gap,
    )
    host.network.scheduler.run()
    if not results:
        raise RuntimeError("QUIC probe did not resolve")  # pragma: no cover
    return results[0]


def probe_tcp(
    host: Host,
    server_addr: int,
    use_ecn: bool,
    deadline: float = 8.0,
) -> FetchResult:
    """Run one TCP/HTTP reachability measurement to completion."""
    results: list[FetchResult] = []
    HTTPFetch(host, server_addr, use_ecn, results.append, deadline=deadline)
    host.network.scheduler.run()
    if not results:
        raise RuntimeError("HTTP fetch did not resolve")  # pragma: no cover
    return results[0]


@dataclass
class ECNUsabilityResult:
    """Outcome of the Kühlewind-style TCP ECN usability test."""

    server_addr: int
    negotiated: bool
    #: A CE-marked data segment was actually sent toward the server.
    ce_sent: bool
    #: The server echoed ECE on a subsequent ACK: ECN is *usable*.
    ece_echoed: bool
    #: The server's CWR response to our eventual CWR is not tested —
    #: the paper's comparison point is the ECE echo alone.
    response_ok: bool


def probe_tcp_ecn_usability(
    host: Host,
    server_addr: int,
    deadline: float = 8.0,
) -> ECNUsabilityResult:
    """Kühlewind et al.'s ECN *usability* test, as an extension probe.

    The paper measures only negotiation ("We do not perform such a
    test with TCP", §5); this probe closes that gap: after negotiating
    ECN, the first request segment is sent with ECN-CE already set —
    as if a router had marked it — and the test records whether the
    server's ACKs come back with ECE set, proving the server's ECN
    feedback loop actually works (Kühlewind et al. found ~90 % did).
    """
    results: list[FetchResult] = []
    fetch = HTTPFetch(host, server_addr, use_ecn=True, callback=results.append,
                      deadline=deadline)
    fetch.conn.force_ce_once = True
    host.network.scheduler.run()
    if not results:
        raise RuntimeError("HTTP fetch did not resolve")  # pragma: no cover
    result = results[0]
    stats = fetch.conn.ecn_stats
    return ECNUsabilityResult(
        server_addr=server_addr,
        negotiated=result.ecn_negotiated,
        ce_sent=result.ecn_negotiated and stats.ect_data_sent > 0,
        ece_echoed=stats.ece_received > 0,
        response_ok=result.ok,
    )


@dataclass
class _PendingHop:
    """Book-keeping for the probe currently in flight."""

    ttl: int
    attempt: int
    ident: int
    src_port: int
    sent_at: float


class Traceroute:
    """An ECT(0)-marked UDP traceroute to one destination.

    Walks TTLs upward, sending ``attempts`` probes per TTL (moving on
    early when a response arrives), and gives up after
    ``silent_limit`` consecutive unresponsive TTLs — which in practice
    means one hop past the destination's access router, since pool
    hosts do not answer high-port UDP (the paper: traces "generally
    stop one hop before the destination").
    """

    def __init__(
        self,
        host: Host,
        dst_addr: int,
        ecn: ECN = ECN.ECT_0,
        max_ttl: int = 30,
        attempts: int = 2,
        timeout: float = 1.0,
        silent_limit: int = 4,
        dscp: int = 0,
    ) -> None:
        self.host = host
        self.dst_addr = dst_addr
        self.ecn = ecn
        self.dscp = dscp
        self.max_ttl = max_ttl
        self.attempts = attempts
        self.timeout = timeout
        self.silent_limit = silent_limit

        self.path = PathTrace(
            vantage_key=host.hostname, dst_addr=dst_addr, sent_ecn=int(ecn)
        )
        self.finished = False
        self._consecutive_silent = 0
        self._pending: _PendingHop | None = None
        self._timer: Event | None = None
        self._socket = self.host.udp_bind(None)
        self._remove_icmp = self.host.on_icmp(self._on_icmp)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self) -> PathTrace:
        """Execute the whole traceroute; returns the observed path."""
        self._send_probe(ttl=1, attempt=1)
        self.host.network.scheduler.run()
        return self.path

    def _send_probe(self, ttl: int, attempt: int) -> None:
        scheduler = self.host.network.scheduler
        ident = (ttl << 6) | attempt
        self._pending = _PendingHop(
            ttl=ttl,
            attempt=attempt,
            ident=ident,
            src_port=self._socket.port,
            sent_at=scheduler.now,
        )
        self._socket.send(
            self.dst_addr,
            TRACEROUTE_PORT_BASE + ttl,
            b"ecn-traceroute",
            ecn=self.ecn,
            dscp=self.dscp,
            ttl=ttl,
            ident=ident,
        )
        self._timer = scheduler.schedule(self.timeout, self._on_timeout)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _on_icmp(self, message: ICMPMessage, packet: IPv4Packet, now: float) -> None:
        if self.finished or self._pending is None or not message.is_error:
            return
        try:
            quoted = message.quoted_packet()
        except CodecError:
            return
        pending = self._pending
        if quoted.dst != self.dst_addr or quoted.ident != pending.ident:
            return
        try:
            quoted_udp = UDPDatagram.decode(quoted.payload)
        except CodecError:
            return
        if quoted_udp.src_port != pending.src_port:
            return

        if message.icmp_type == TYPE_TIME_EXCEEDED:
            self._record_hop(
                HopObservation(
                    ttl=pending.ttl,
                    responder=packet.src,
                    sent_ecn=int(self.ecn),
                    quoted_ecn=int(quoted.ecn),
                    rtt=now - pending.sent_at,
                    quoted_tos=quoted.tos,
                    quoted_ident=quoted.ident,
                )
            )
            self._advance(next_ttl=pending.ttl + 1)
        elif (
            message.icmp_type == TYPE_DEST_UNREACHABLE
            and message.code == CODE_PORT_UNREACHABLE
        ):
            self._record_hop(
                HopObservation(
                    ttl=pending.ttl,
                    responder=packet.src,
                    sent_ecn=int(self.ecn),
                    quoted_ecn=int(quoted.ecn),
                    rtt=now - pending.sent_at,
                    quoted_tos=quoted.tos,
                    quoted_ident=quoted.ident,
                )
            )
            self.path.reached_destination = True
            self._finish()

    def _on_timeout(self) -> None:
        self._timer = None
        if self.finished or self._pending is None:
            return
        pending = self._pending
        if pending.attempt < self.attempts:
            self._send_probe(pending.ttl, pending.attempt + 1)
            return
        # All attempts at this TTL went unanswered.
        self._record_hop(
            HopObservation(
                ttl=pending.ttl,
                responder=None,
                sent_ecn=int(self.ecn),
                quoted_ecn=None,
            )
        )
        self._advance(next_ttl=pending.ttl + 1, silent=True)

    # ------------------------------------------------------------------
    # Progression
    # ------------------------------------------------------------------
    def _record_hop(self, hop: HopObservation) -> None:
        self.path.hops.append(hop)

    def _advance(self, next_ttl: int, silent: bool = False) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._pending = None
        if silent:
            self._consecutive_silent += 1
        else:
            self._consecutive_silent = 0
        if next_ttl > self.max_ttl or self._consecutive_silent >= self.silent_limit:
            self._finish()
            return
        self._send_probe(ttl=next_ttl, attempt=1)

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._remove_icmp()
        self._socket.close()
        # Trailing silent TTLs carry no information; drop them so the
        # recorded path ends at the last responsive hop.
        while self.path.hops and not self.path.hops[-1].responded:
            self.path.hops.pop()


def run_traceroute(
    host: Host,
    dst_addr: int,
    ecn: ECN = ECN.ECT_0,
    params: ProbeParams | None = None,
) -> PathTrace:
    """Convenience wrapper building a :class:`Traceroute` from params."""
    params = params if params is not None else ProbeParams()
    return Traceroute(
        host,
        dst_addr,
        ecn=ecn,
        max_ttl=params.traceroute_max_ttl,
        attempts=params.traceroute_attempts,
        timeout=params.traceroute_timeout,
        silent_limit=params.traceroute_silent_limit,
    ).run()
