"""NTP pool discovery via repeated DNS queries.

The paper's discovery script queried ``pool.ntp.org`` and each of its
country- and region-specific sub-domains in turn, one second apart,
roughly every ten minutes for several weeks, accumulating 2500 unique
server addresses.  :class:`PoolDiscovery` reproduces that loop against
the simulated round-robin DNS service.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netsim.host import Host
from ..protocols.dns.resolver import LookupResult, Resolver


@dataclass
class DiscoveredServer:
    """One unique address found during discovery."""

    addr: int
    first_seen: float
    zones: set[str] = field(default_factory=set)


@dataclass
class DiscoveryReport:
    """Everything the discovery run learned."""

    servers: dict[int, DiscoveredServer] = field(default_factory=dict)
    sweeps: int = 0
    queries_sent: int = 0
    queries_answered: int = 0

    @property
    def addresses(self) -> list[int]:
        """Discovered addresses in first-seen order."""
        ordered = sorted(self.servers.values(), key=lambda s: (s.first_seen, s.addr))
        return [server.addr for server in ordered]

    def __len__(self) -> int:
        return len(self.servers)


class PoolDiscovery:
    """The discovery script: sweep the zones until the pool is mapped."""

    def __init__(
        self,
        host: Host,
        dns_addr: int,
        zones: list[str],
        query_gap: float = 1.0,
        sweep_interval: float = 600.0,
    ) -> None:
        if not zones:
            raise ValueError("at least one zone to sweep is required")
        self.host = host
        self.zones = list(zones)
        self.query_gap = query_gap
        self.sweep_interval = sweep_interval
        self.resolver = Resolver(host, dns_addr)
        self.report = DiscoveryReport()

    def run(
        self,
        sweeps: int | None = None,
        until_stable_sweeps: int | None = 3,
        max_sweeps: int = 2000,
    ) -> DiscoveryReport:
        """Sweep all zones repeatedly.

        Either run a fixed number of ``sweeps``, or keep sweeping until
        ``until_stable_sweeps`` consecutive sweeps discover nothing new
        (how long "several weeks" needs to be depends on pool size and
        the DNS answer window, so convergence is the honest criterion).
        """
        if sweeps is not None:
            for _ in range(sweeps):
                self._sweep()
            return self.report
        stable = 0
        while stable < (until_stable_sweeps or 1):
            if self.report.sweeps >= max_sweeps:
                break
            before = len(self.report)
            self._sweep()
            stable = stable + 1 if len(self.report) == before else 0
        return self.report

    def _sweep(self) -> None:
        scheduler = self.host.network.scheduler
        self.report.sweeps += 1
        for zone in self.zones:
            results: list[LookupResult] = []
            self.resolver.lookup(zone, results.append)
            scheduler.run()
            self.report.queries_sent += 1
            result = results[0]
            if result.responded:
                self.report.queries_answered += 1
                now = scheduler.now
                for addr in result.addresses:
                    known = self.report.servers.get(addr)
                    if known is None:
                        known = DiscoveredServer(addr=addr, first_seen=now)
                        self.report.servers[addr] = known
                    known.zones.add(zone)
            # The paper's one-second politeness gap between queries.
            scheduler.run_until(scheduler.now + self.query_gap)
        scheduler.run_until(scheduler.now + self.sweep_interval)
