"""Tracebox-style middlebox interference detection.

The paper's §4.2 compares one field (the ECN bits) between the probe
sent and the header quoted in ICMP errors.  Detal et al.'s *tracebox*
(cited as [2]) generalises the idea: diff *every* recoverable header
field per hop to reveal any middlebox rewriting.  This module applies
that generalisation to our quotations — ECN, DSCP, the IP ident, and
the DF bit — which is what lets the DSCP-bleaching extension study
distinguish "cleared just the ECN field" (an ECN-specific policy) from
"zeroed the whole TOS byte" (legacy TOS-washing, the hypothesis the
paper raises for preferential drops).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netsim.ecn import ECN, dscp_from_tos, ecn_from_tos
from ..netsim.host import Host
from ..scenario.parameters import ProbeParams
from .probes import Traceroute
from .traces import PathTrace

#: Field keys reported by the differ.
FIELD_ECN = "ecn"
FIELD_DSCP = "dscp"
FIELD_IDENT = "ident"


@dataclass(frozen=True)
class FieldChange:
    """One rewritten header field observed at one hop."""

    ttl: int
    responder: int
    field: str
    sent_value: int
    observed_value: int


@dataclass
class TraceboxResult:
    """Per-hop header diffs for one destination."""

    path: PathTrace
    sent_dscp: int
    sent_ecn: int
    changes: list[FieldChange] = field(default_factory=list)

    def changes_for(self, field_name: str) -> list[FieldChange]:
        return [c for c in self.changes if c.field == field_name]

    def first_change_ttl(self, field_name: str) -> int | None:
        """TTL where a field was first observed rewritten."""
        changed = self.changes_for(field_name)
        return min((c.ttl for c in changed), default=None)

    def classify_tos_interference(self) -> str:
        """Distinguish the two §4 hypotheses about TOS handling.

        * ``"ecn-specific"`` — the ECN bits were cleared while the
          DSCP survived: a deliberate ECN policy;
        * ``"tos-washing"`` — DSCP and ECN were both zeroed: legacy
          gear rewriting the whole TOS byte;
        * ``"dscp-only"`` — DSCP rewritten, ECN intact (QoS remarking);
        * ``"clean"`` — nothing touched.
        """
        ecn_changed = bool(self.changes_for(FIELD_ECN))
        dscp_changed = bool(self.changes_for(FIELD_DSCP))
        if ecn_changed and dscp_changed:
            return "tos-washing"
        if ecn_changed:
            return "ecn-specific"
        if dscp_changed:
            return "dscp-only"
        return "clean"


def diff_path(path: PathTrace, sent_dscp: int, sent_ident_known: bool = False) -> TraceboxResult:
    """Diff quoted headers along an already-collected path."""
    result = TraceboxResult(path=path, sent_dscp=sent_dscp, sent_ecn=path.sent_ecn)
    for hop in path.hops:
        if hop.responder is None or hop.quoted_tos is None:
            continue
        quoted_ecn = int(ecn_from_tos(hop.quoted_tos))
        if quoted_ecn != path.sent_ecn:
            result.changes.append(
                FieldChange(
                    ttl=hop.ttl,
                    responder=hop.responder,
                    field=FIELD_ECN,
                    sent_value=path.sent_ecn,
                    observed_value=quoted_ecn,
                )
            )
        quoted_dscp = dscp_from_tos(hop.quoted_tos)
        if quoted_dscp != sent_dscp:
            result.changes.append(
                FieldChange(
                    ttl=hop.ttl,
                    responder=hop.responder,
                    field=FIELD_DSCP,
                    sent_value=sent_dscp,
                    observed_value=quoted_dscp,
                )
            )
    return result


def run_tracebox(
    host: Host,
    dst_addr: int,
    dscp: int = 0,
    ecn: ECN = ECN.ECT_0,
    params: ProbeParams | None = None,
) -> TraceboxResult:
    """Run a traceroute with the given TOS and diff every quotation."""
    params = params if params is not None else ProbeParams()
    path = Traceroute(
        host,
        dst_addr,
        ecn=ecn,
        dscp=dscp,
        max_ttl=params.traceroute_max_ttl,
        attempts=params.traceroute_attempts,
        timeout=params.traceroute_timeout,
        silent_limit=params.traceroute_silent_limit,
    ).run()
    return diff_path(path, sent_dscp=dscp)
