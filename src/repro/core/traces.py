"""Data model for measurement traces.

A **trace** is one pass over every discovered server from one vantage
point, recording the four measurements of §3: UDP reachability without
and with ECT(0), and TCP/HTTP reachability without and with an
ECN-setup SYN.  The study comprises 210 traces; a :class:`TraceSet`
holds them together with enough metadata to drive every analysis in
§4, and serialises to JSON so studies can be archived and re-analysed
(the authors published their dataset the same way).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from ..ioutil import atomic_write_text
from ..protocols.quic.validation import QUIC_STATES


@dataclass(slots=True)
class QUICProbeOutcome:
    """The QUIC ECN-validation measurement for one server in one trace.

    ``state`` is one of :data:`repro.protocols.quic.QUIC_STATES`; the
    counters are the raw material the classifier consumed, kept so
    re-analysis can recompute or refine the taxonomy offline.
    """

    state: str
    handshake_ok: bool = False
    handshake_attempts: int = 0
    packets_sent: int = 0
    packets_acked: int = 0
    ect0_echoed: int = 0
    ect1_echoed: int = 0
    ce_echoed: int = 0


@dataclass(slots=True)
class ProbeOutcome:
    """The four §3 measurements for one server in one trace."""

    server_addr: int
    #: NTP answered a request in a not-ECT marked UDP packet.
    udp_plain: bool = False
    #: NTP answered a request in an ECT(0) marked UDP packet.
    udp_ect: bool = False
    #: Attempts used (1..5; 5 with no response means unreachable).
    udp_plain_attempts: int = 0
    udp_ect_attempts: int = 0
    #: A complete HTTP response arrived over a plain TCP connection.
    tcp_plain: bool = False
    #: A complete HTTP response arrived when ECN was requested.
    tcp_ecn: bool = False
    #: The server answered the ECN-setup SYN with an ECN-setup SYN-ACK.
    ecn_negotiated: bool = False
    #: HTTP status of the plain fetch (None if no response).
    http_status: int | None = None
    #: QUIC ECN validation result (None when the probe family is off).
    quic: QUICProbeOutcome | None = None

    @property
    def udp_differential_plain_only(self) -> bool:
        """Reachable with not-ECT but not with ECT(0) (Figure 3a)."""
        return self.udp_plain and not self.udp_ect

    @property
    def udp_differential_ect_only(self) -> bool:
        """Reachable with ECT(0) but not with not-ECT (Figure 3b)."""
        return self.udp_ect and not self.udp_plain


@dataclass(slots=True)
class Trace:
    """One complete pass over all servers from one vantage."""

    trace_id: int
    vantage_key: str
    batch: int
    started_at: float
    outcomes: dict[int, ProbeOutcome] = field(default_factory=dict)

    def add(self, outcome: ProbeOutcome) -> None:
        self.outcomes[outcome.server_addr] = outcome

    def outcome_for(self, server_addr: int) -> ProbeOutcome | None:
        return self.outcomes.get(server_addr)

    # ------------------------------------------------------------------
    # Per-trace aggregates (the quantities plotted per bar in Figs 2/5)
    # ------------------------------------------------------------------
    def count_udp_plain(self) -> int:
        """Servers reachable with not-ECT marked UDP."""
        return sum(1 for o in self.outcomes.values() if o.udp_plain)

    def count_udp_ect(self) -> int:
        """Servers reachable with ECT(0) marked UDP."""
        return sum(1 for o in self.outcomes.values() if o.udp_ect)

    def count_udp_both(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.udp_plain and o.udp_ect)

    def count_tcp_plain(self) -> int:
        """Servers responding to the plain HTTP request."""
        return sum(1 for o in self.outcomes.values() if o.tcp_plain)

    def count_ecn_negotiated(self) -> int:
        """Servers that returned an ECN-setup SYN-ACK."""
        return sum(1 for o in self.outcomes.values() if o.ecn_negotiated)

    def pct_ect_given_plain(self) -> float | None:
        """Figure 2a quantity: of not-ECT-reachable, % also ECT-reachable."""
        plain = self.count_udp_plain()
        if plain == 0:
            return None
        return 100.0 * self.count_udp_both() / plain

    def pct_plain_given_ect(self) -> float | None:
        """Figure 2b quantity: of ECT-reachable, % also not-ECT-reachable."""
        ect = self.count_udp_ect()
        if ect == 0:
            return None
        return 100.0 * self.count_udp_both() / ect


@dataclass
class TraceSet:
    """All traces of a study plus the probe-target list."""

    server_addrs: list[int]
    traces: list[Trace] = field(default_factory=list)
    description: str = ""

    def add(self, trace: Trace) -> None:
        self.traces.append(trace)

    def extend(self, traces: Iterable[Trace]) -> None:
        """Append many traces (shard-merge support for repro.runner)."""
        self.traces.extend(traces)

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)

    def by_vantage(self, vantage_key: str) -> list[Trace]:
        """All traces collected from one vantage, in collection order."""
        return [t for t in self.traces if t.vantage_key == vantage_key]

    def vantage_keys(self) -> list[str]:
        """Vantages present, in first-appearance order."""
        seen: list[str] = []
        for trace in self.traces:
            if trace.vantage_key not in seen:
                seen.append(trace.vantage_key)
        return seen

    def by_batch(self, batch: int) -> list[Trace]:
        return [t for t in self.traces if t.batch == batch]

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": "ecn-udp-traceset/1",
            "description": self.description,
            "server_addrs": self.server_addrs,
            "traces": [
                {
                    "trace_id": trace.trace_id,
                    "vantage_key": trace.vantage_key,
                    "batch": trace.batch,
                    "started_at": trace.started_at,
                    "outcomes": [
                        _outcome_to_row(o) for o in trace.outcomes.values()
                    ],
                }
                for trace in self.traces
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSet":
        if data.get("format") != "ecn-udp-traceset/1":
            raise ValueError(f"unknown trace-set format: {data.get('format')!r}")
        trace_set = cls(
            server_addrs=list(data["server_addrs"]),
            description=data.get("description", ""),
        )
        for raw in data["traces"]:
            trace = Trace(
                trace_id=raw["trace_id"],
                vantage_key=raw["vantage_key"],
                batch=raw["batch"],
                started_at=raw["started_at"],
            )
            for row in raw["outcomes"]:
                trace.add(_outcome_from_row(row))
            trace_set.add(trace)
        return trace_set

    def save(self, path: str | Path) -> None:
        """Write the trace set as JSON (atomically: a concurrent
        reader sees the old file or the new file, never a prefix)."""
        atomic_write_text(path, json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "TraceSet":
        """Read a trace set written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def _outcome_to_row(outcome: ProbeOutcome) -> list:
    """Compact row encoding keeps 210x2500 outcomes manageable.

    The base row is nine elements; a QUIC measurement appends eight
    more.  Append-only: legacy archives (and the golden studies pinned
    in ``tests/data/``) decode unchanged, and QUIC-off studies encode
    byte-identically to pre-QUIC ones.
    """
    row = [
        outcome.server_addr,
        int(outcome.udp_plain),
        int(outcome.udp_ect),
        outcome.udp_plain_attempts,
        outcome.udp_ect_attempts,
        int(outcome.tcp_plain),
        int(outcome.tcp_ecn),
        int(outcome.ecn_negotiated),
        outcome.http_status if outcome.http_status is not None else -1,
    ]
    quic = outcome.quic
    if quic is not None:
        row.extend(
            [
                QUIC_STATES.index(quic.state),
                int(quic.handshake_ok),
                quic.handshake_attempts,
                quic.packets_sent,
                quic.packets_acked,
                quic.ect0_echoed,
                quic.ect1_echoed,
                quic.ce_echoed,
            ]
        )
    return row


def _outcome_from_row(row: list) -> ProbeOutcome:
    quic = None
    if len(row) > 9:
        quic = QUICProbeOutcome(
            state=QUIC_STATES[row[9]],
            handshake_ok=bool(row[10]),
            handshake_attempts=row[11],
            packets_sent=row[12],
            packets_acked=row[13],
            ect0_echoed=row[14],
            ect1_echoed=row[15],
            ce_echoed=row[16],
        )
    return ProbeOutcome(
        server_addr=row[0],
        udp_plain=bool(row[1]),
        udp_ect=bool(row[2]),
        udp_plain_attempts=row[3],
        udp_ect_attempts=row[4],
        tcp_plain=bool(row[5]),
        tcp_ecn=bool(row[6]),
        ecn_negotiated=bool(row[7]),
        http_status=row[8] if row[8] >= 0 else None,
        quic=quic,
    )


# ----------------------------------------------------------------------
# Traceroute observations (§4.2)
# ----------------------------------------------------------------------
@dataclass(slots=True)
class HopObservation:
    """One hop of one traceroute.

    ``quoted_tos`` carries the full TOS byte from the ICMP quotation
    when available (DSCP analysis needs it); ``quoted_ecn`` is kept
    separately because it is the serialised, analysis-critical field.
    """

    ttl: int
    responder: int | None
    sent_ecn: int
    quoted_ecn: int | None
    rtt: float | None = None
    quoted_tos: int | None = None
    quoted_ident: int | None = None

    @property
    def responded(self) -> bool:
        return self.responder is not None

    @property
    def mark_preserved(self) -> bool | None:
        """Did the quoted header still carry the mark we sent?

        None when the hop did not respond (nothing to compare).
        """
        if self.quoted_ecn is None:
            return None
        return self.quoted_ecn == self.sent_ecn


@dataclass(slots=True)
class PathTrace:
    """One traceroute from a vantage to a server."""

    vantage_key: str
    dst_addr: int
    sent_ecn: int
    hops: list[HopObservation] = field(default_factory=list)
    reached_destination: bool = False

    def responding_hops(self) -> list[HopObservation]:
        return [hop for hop in self.hops if hop.responded]

    def first_strip_ttl(self) -> int | None:
        """TTL of the first hop whose quotation lost the mark."""
        for hop in self.hops:
            if hop.mark_preserved is False:
                return hop.ttl
        return None


@dataclass
class TracerouteCampaign:
    """All traceroutes of a study."""

    paths: list[PathTrace] = field(default_factory=list)

    def add(self, path: PathTrace) -> None:
        self.paths.append(path)

    def extend(self, paths: Iterable[PathTrace]) -> None:
        """Append many paths (shard-merge support for repro.runner)."""
        self.paths.extend(paths)

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[PathTrace]:
        return iter(self.paths)

    def by_vantage(self, vantage_key: str) -> list[PathTrace]:
        return [p for p in self.paths if p.vantage_key == vantage_key]

    def to_dict(self) -> dict:
        return {
            "format": "ecn-udp-traceroutes/1",
            "paths": [
                {
                    "vantage_key": path.vantage_key,
                    "dst_addr": path.dst_addr,
                    "sent_ecn": path.sent_ecn,
                    "reached_destination": path.reached_destination,
                    "hops": [
                        [
                            hop.ttl,
                            hop.responder if hop.responder is not None else -1,
                            hop.sent_ecn,
                            hop.quoted_ecn if hop.quoted_ecn is not None else -1,
                        ]
                        for hop in path.hops
                    ],
                }
                for path in self.paths
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TracerouteCampaign":
        if data.get("format") != "ecn-udp-traceroutes/1":
            raise ValueError(f"unknown traceroute format: {data.get('format')!r}")
        campaign = cls()
        for raw in data["paths"]:
            path = PathTrace(
                vantage_key=raw["vantage_key"],
                dst_addr=raw["dst_addr"],
                sent_ecn=raw["sent_ecn"],
                reached_destination=raw["reached_destination"],
            )
            for ttl, responder, sent, quoted in raw["hops"]:
                path.hops.append(
                    HopObservation(
                        ttl=ttl,
                        responder=responder if responder >= 0 else None,
                        sent_ecn=sent,
                        quoted_ecn=quoted if quoted >= 0 else None,
                    )
                )
            campaign.add(path)
        return campaign

    def save(self, path: str | Path) -> None:
        atomic_write_text(path, json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "TracerouteCampaign":
        return cls.from_dict(json.loads(Path(path).read_text()))
