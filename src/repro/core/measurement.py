"""The measurement application: traces and traceroute campaigns.

This orchestrates everything §3 describes: for each of the discovered
servers in turn, probe UDP reachability with not-ECT and ECT(0) marked
packets, then HTTP over TCP without and with ECN negotiation — that is
one *trace*.  The full study runs 210 traces across the 13 vantage
points in two batches (April/May: author homes and the Glasgow
wireless; July/August: everywhere), with pool churn in between.  A
separate campaign runs ECT(0) traceroutes from every vantage to every
server (§4.2).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..netsim.ecn import ECN
from ..obs.spans import CTX_TRACEROUTES, CTX_TRACES, DETAIL_PROBE
from ..netsim.host import Host
from ..scenario.internet import SyntheticInternet
from ..scenario.parameters import ProbeParams, TraceScheduleParams
from ..scenario.vantages import VANTAGES
from ..protocols.quic.validation import classify_probe
from .probes import probe_quic, probe_tcp, probe_udp, run_traceroute
from .traces import (
    PathTrace,
    ProbeOutcome,
    QUICProbeOutcome,
    Trace,
    TraceSet,
    TracerouteCampaign,
)

#: Progress callback: (current step, total steps, label).
ProgressFn = Callable[[int, int, str], None]


@dataclass(frozen=True)
class PlannedTrace:
    """One slot in the study schedule."""

    trace_id: int
    vantage_key: str
    batch: int


def trace_plan(schedule: TraceScheduleParams) -> list[PlannedTrace]:
    """Distribute the study's traces over vantages and batches.

    Batch 1 covers only the vantages available early (the homes and
    the Glasgow wireless network, per §3); the remainder is spread
    round-robin over all thirteen vantages, walking them in the
    paper's figure order so every location ends up with a similar
    trace count.
    """
    batch1_vantages = [spec for spec in VANTAGES if spec.in_batch1]
    batch1_total = len(batch1_vantages) * schedule.batch1_traces_per_home_vantage
    # Validate before building anything: a schedule whose batch-1
    # allocation exceeds the study total is a configuration error, not
    # something to discover after constructing a partial plan.
    if schedule.total_traces < 0:
        raise ValueError(f"total_traces must be >= 0: {schedule.total_traces!r}")
    if batch1_total > schedule.total_traces:
        raise ValueError(
            "batch-1 traces exceed the study total: "
            f"{batch1_total} > {schedule.total_traces}"
        )
    plan: list[PlannedTrace] = []
    trace_id = 0
    for spec in batch1_vantages:
        for _ in range(schedule.batch1_traces_per_home_vantage):
            plan.append(PlannedTrace(trace_id, spec.key, batch=1))
            trace_id += 1
    keys = [spec.key for spec in VANTAGES]
    for index in range(schedule.total_traces - batch1_total):
        plan.append(PlannedTrace(trace_id, keys[index % len(keys)], batch=2))
        trace_id += 1
    return plan


class MeasurementApplication:
    """Runs the study against a built synthetic Internet."""

    def __init__(
        self,
        world: SyntheticInternet,
        targets: Sequence[int] | None = None,
        quic: bool = False,
    ) -> None:
        self.world = world
        self.probe_params: ProbeParams = world.params.probes
        #: Run the fourth probe family (QUIC ECN validation) after the
        #: paper's four measurements.  The extra probe runs inside the
        #: same measurement epoch, *after* the legacy phases, so the
        #: legacy packet/RNG sequence — and therefore every archived
        #: study — is untouched.
        self.quic = quic
        #: The probe target list: normally the discovery output; falls
        #: back to ground truth (every deployed server) when the caller
        #: skips the discovery phase.
        self.targets: list[int] = (
            list(targets) if targets is not None else [s.addr for s in world.servers]
        )

    # ------------------------------------------------------------------
    # Single measurements
    # ------------------------------------------------------------------
    def measure_server(self, vantage_host: Host, server_addr: int) -> ProbeOutcome:
        """The four §3 measurements against one server."""
        probe = self.probe_params
        spans = self.world.spans
        phased = spans if spans and spans.detail == DETAIL_PROBE else None
        metrics = self.world.network.metrics
        # Per-family probe-duration histograms, in *sim-time*: each
        # probe drives the scheduler to completion, so the elapsed sim
        # clock is a pure function of the epoch — shard merges of these
        # histograms are bit-identical to a sequential run.
        clock = self.world.network.scheduler

        def observe(name: str, started: float) -> None:
            if metrics:
                metrics.observe(f"app.rtt.{name}", clock.now - started)

        def phase(name: str):
            return phased.span("phase", name) if phased else nullcontext()

        phase_start = clock.now
        with phase("udp-plain"):
            udp_plain = probe_udp(
                vantage_host,
                server_addr,
                ECN.NOT_ECT,
                attempts=probe.ntp_attempts,
                timeout=probe.ntp_timeout,
            )
            if phased:
                phased.annotate(
                    responded=udp_plain.responded, attempts=udp_plain.attempts
                )
        observe("udp_plain", phase_start)
        phase_start = clock.now
        with phase("udp-ect"):
            udp_ect = probe_udp(
                vantage_host,
                server_addr,
                ECN.ECT_0,
                attempts=probe.ntp_attempts,
                timeout=probe.ntp_timeout,
            )
            if phased:
                phased.annotate(responded=udp_ect.responded, attempts=udp_ect.attempts)
        observe("udp_ect", phase_start)
        phase_start = clock.now
        with phase("tcp-plain"):
            tcp_plain = probe_tcp(
                vantage_host, server_addr, use_ecn=False, deadline=probe.http_deadline
            )
            if phased:
                phased.annotate(ok=tcp_plain.ok)
        observe("tcp_plain", phase_start)
        phase_start = clock.now
        with phase("tcp-ecn"):
            tcp_ecn = probe_tcp(
                vantage_host, server_addr, use_ecn=True, deadline=probe.http_deadline
            )
            if phased:
                phased.annotate(ok=tcp_ecn.ok, negotiated=tcp_ecn.ecn_negotiated)
        observe("tcp_ecn", phase_start)
        quic_outcome = None
        if self.quic:
            phase_start = clock.now
            with phase("quic"):
                raw = probe_quic(vantage_host, server_addr, params=probe)
                state = classify_probe(raw)
                quic_outcome = QUICProbeOutcome(
                    state=state,
                    handshake_ok=raw.handshake_ok,
                    handshake_attempts=raw.handshake_attempts,
                    packets_sent=raw.packets_sent,
                    packets_acked=raw.packets_acked,
                    ect0_echoed=raw.ect0_echoed,
                    ect1_echoed=raw.ect1_echoed,
                    ce_echoed=raw.ce_echoed,
                )
                if metrics:
                    metrics.incr(f"app.quic.{state}")
                if phased:
                    phased.annotate(state=state, acked=raw.packets_acked)
            observe(f"quic.{state}", phase_start)
        return ProbeOutcome(
            server_addr=server_addr,
            udp_plain=udp_plain.responded,
            udp_ect=udp_ect.responded,
            udp_plain_attempts=udp_plain.attempts,
            udp_ect_attempts=udp_ect.attempts,
            tcp_plain=tcp_plain.ok,
            tcp_ecn=tcp_ecn.ok,
            ecn_negotiated=tcp_ecn.ecn_negotiated,
            http_status=tcp_plain.response.status if tcp_plain.response else None,
            quic=quic_outcome,
        )

    def run_trace(self, vantage_key: str, trace_id: int, batch: int) -> Trace:
        """One complete trace: every target, four measurements each."""
        vantage_host = self.world.vantage_hosts[vantage_key]
        spans = self.world.spans
        probe_spans = bool(spans) and spans.detail == DETAIL_PROBE
        trace = Trace(
            trace_id=trace_id,
            vantage_key=vantage_key,
            batch=batch,
            started_at=self.world.network.scheduler.now,
        )
        for server_addr in self.targets:
            cm = (
                spans.span("probe", f"probe-{server_addr}", server=server_addr)
                if probe_spans
                else nullcontext()
            )
            with cm:
                trace.add(self.measure_server(vantage_host, server_addr))
        return trace

    # ------------------------------------------------------------------
    # The full study
    # ------------------------------------------------------------------
    def run_planned(
        self,
        planned: Sequence[PlannedTrace],
        progress: ProgressFn | None = None,
        progress_total: int | None = None,
    ) -> list[Trace]:
        """Execute a slice of the trace schedule hermetically.

        Each planned trace runs in its own measurement epoch (see
        :meth:`~repro.scenario.internet.SyntheticInternet.begin_epoch`),
        keyed by its ``trace_id``, so the result does not depend on
        which — if any — other traces this world executed before.
        This is the single execution path shared by the sequential
        study and :mod:`repro.runner` shard workers; the determinism
        contract between them lives here.
        """
        total = progress_total if progress_total is not None else len(planned)
        traces: list[Trace] = []
        spans = self.world.spans
        events = self.world.events
        for index, entry in enumerate(planned):
            if progress is not None:
                progress(index, total, entry.vantage_key)
            if spans:
                # Attribute this epoch to the shard owning its
                # (vantage, batch) slice before minting span ids, so
                # sequential and sharded runs agree on every id.
                spans.enter_context(CTX_TRACES, entry.vantage_key, entry.batch)
            if events:
                events.enter_context(CTX_TRACES, entry.vantage_key, entry.batch)
                # Before begin_epoch, so the epoch-start event precedes
                # the fault events installed for this epoch.
                events.emit(
                    "epoch-start",
                    "debug",
                    epoch=entry.trace_id,
                    vantage=entry.vantage_key,
                    batch=entry.batch,
                )
            self.world.enter_batch(entry.batch)
            self.world.begin_epoch(entry.trace_id)
            metrics = self.world.network.metrics
            if metrics:
                metrics.incr("app.traces_run")
            # The epoch span opens *after* begin_epoch: its sim_start
            # is then exactly the epoch origin, and fault events the
            # injector buffered during installation flush into it.
            cm = (
                spans.span(
                    "trace",
                    f"trace-{entry.trace_id}",
                    trace_id=entry.trace_id,
                    vantage=entry.vantage_key,
                    batch=entry.batch,
                )
                if spans
                else nullcontext()
            )
            with cm:
                traces.append(
                    self.run_trace(entry.vantage_key, entry.trace_id, entry.batch)
                )
        return traces

    def run_study(self, progress: ProgressFn | None = None) -> TraceSet:
        """Execute the whole trace schedule, switching batches midway."""
        plan = trace_plan(self.world.params.schedule)
        trace_set = TraceSet(
            server_addrs=list(self.targets),
            description=(
                "ECN/UDP reachability study: "
                f"{len(plan)} traces x {len(self.targets)} servers"
            ),
        )
        for trace in self.run_planned(plan, progress=progress):
            trace_set.add(trace)
        return trace_set

    # ------------------------------------------------------------------
    # Traceroute campaign (§4.2)
    # ------------------------------------------------------------------
    def traceroute_epoch(self, vantage_key: str) -> int:
        """Measurement-epoch index of one vantage's traceroute sweep.

        Epoch indices 0..total_traces-1 belong to the trace schedule;
        traceroute sweeps follow, one per vantage in build order, so
        every epoch in a study has a unique, schedule-independent
        index that sequential and sharded execution agree on.
        """
        keys = list(self.world.vantage_hosts)
        return self.world.params.schedule.total_traces + keys.index(vantage_key)

    def run_traceroute_vantage(
        self,
        vantage_key: str,
        targets: Sequence[int] | None = None,
        ecn: ECN = ECN.ECT_0,
        progress: ProgressFn | None = None,
    ) -> list[PathTrace]:
        """One vantage's hermetic traceroute sweep over all targets.

        Like :meth:`run_planned`, this is the shared execution path of
        the sequential campaign and runner shard workers: the sweep
        runs in its own measurement epoch and is a pure function of
        ``(params, vantage, targets)``.
        """
        host = self.world.vantage_hosts[vantage_key]
        dsts = list(targets) if targets is not None else list(self.targets)
        spans = self.world.spans
        if spans:
            spans.enter_context(CTX_TRACEROUTES, vantage_key)
        events = self.world.events
        if events:
            events.enter_context(CTX_TRACEROUTES, vantage_key)
            events.emit(
                "sweep-start",
                "debug",
                epoch=self.traceroute_epoch(vantage_key),
                vantage=vantage_key,
            )
        self.world.begin_epoch(self.traceroute_epoch(vantage_key))
        metrics = self.world.network.metrics
        if metrics:
            metrics.incr("app.traceroute_sweeps")
        probe_spans = bool(spans) and spans.detail == DETAIL_PROBE
        sweep_cm = (
            spans.span("sweep", f"sweep-{vantage_key}", vantage=vantage_key)
            if spans
            else nullcontext()
        )
        paths: list[PathTrace] = []
        with sweep_cm:
            for step, dst in enumerate(dsts):
                if progress is not None:
                    progress(step, len(dsts), vantage_key)
                probe_cm = (
                    spans.span("probe", f"traceroute-{dst}", server=dst)
                    if probe_spans
                    else nullcontext()
                )
                with probe_cm:
                    path = run_traceroute(host, dst, ecn=ecn, params=self.probe_params)
                # Traceroutes are keyed by vantage key, not hostname;
                # for vantage hosts the two coincide by construction.
                paths.append(
                    PathTrace(
                        vantage_key=vantage_key,
                        dst_addr=path.dst_addr,
                        sent_ecn=path.sent_ecn,
                        hops=path.hops,
                        reached_destination=path.reached_destination,
                    )
                )
        return paths

    def run_traceroutes(
        self,
        vantage_keys: Iterable[str] | None = None,
        targets: Sequence[int] | None = None,
        ecn: ECN = ECN.ECT_0,
        progress: ProgressFn | None = None,
    ) -> TracerouteCampaign:
        """ECT(0) traceroutes from each vantage to each target."""
        keys = list(vantage_keys) if vantage_keys is not None else list(
            self.world.vantage_hosts
        )
        dsts = list(targets) if targets is not None else list(self.targets)
        campaign = TracerouteCampaign()
        total = len(keys) * len(dsts)
        for index, key in enumerate(keys):

            def sweep_progress(step: int, _sweep_total: int, label: str) -> None:
                if progress is not None:
                    progress(index * len(dsts) + step, total, label)

            for path in self.run_traceroute_vantage(
                key, dsts, ecn=ecn, progress=sweep_progress
            ):
                campaign.add(path)
        return campaign
