"""§4.1 / Figure 3: per-server differential reachability.

For every server and vantage, the fraction of traces in which the
server was reachable one way but not the other.  Figure 3a (reachable
with not-ECT but not ECT(0)) exposes the persistently firewalled
servers as tall spikes — between 9 and 14 above 50 %, depending on
vantage — while Figure 3b (the converse) shows at most 3, including
the Phoenix-library pair that misbehaves only from EC2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..traces import TraceSet


@dataclass(frozen=True)
class ServerDifferential:
    """Differential reachability of one server from one vantage."""

    server_addr: int
    vantage_key: str
    #: Traces in which the conditioning probe succeeded.
    eligible: int
    #: Of those, traces where the other probe failed.
    differential: int

    @property
    def fraction(self) -> float:
        """The Figure 3 bar height (0.0 when never eligible)."""
        return self.differential / self.eligible if self.eligible else 0.0


class DifferentialAnalysis:
    """Figure 3 data: per-(vantage, server) differential fractions."""

    def __init__(self, trace_set: TraceSet, direction: str = "plain-only") -> None:
        """``direction`` selects the figure: ``"plain-only"`` for 3a
        (reachable via not-ECT but not ECT(0)), ``"ect-only"`` for 3b.
        """
        if direction not in ("plain-only", "ect-only"):
            raise ValueError(f"unknown direction {direction!r}")
        self.direction = direction
        self.server_addrs = list(trace_set.server_addrs)
        self.vantage_keys = trace_set.vantage_keys()
        self._records: dict[tuple[str, int], ServerDifferential] = {}
        eligible: dict[tuple[str, int], int] = {}
        differential: dict[tuple[str, int], int] = {}
        for trace in trace_set:
            for outcome in trace.outcomes.values():
                if direction == "plain-only":
                    is_eligible = outcome.udp_plain
                    is_diff = outcome.udp_differential_plain_only
                else:
                    is_eligible = outcome.udp_ect
                    is_diff = outcome.udp_differential_ect_only
                if not is_eligible:
                    continue
                key = (trace.vantage_key, outcome.server_addr)
                eligible[key] = eligible.get(key, 0) + 1
                if is_diff:
                    differential[key] = differential.get(key, 0) + 1
        for key, count in eligible.items():
            vantage_key, addr = key
            self._records[key] = ServerDifferential(
                server_addr=addr,
                vantage_key=vantage_key,
                eligible=count,
                differential=differential.get(key, 0),
            )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def record(self, vantage_key: str, server_addr: int) -> ServerDifferential | None:
        return self._records.get((vantage_key, server_addr))

    def fractions_for_vantage(self, vantage_key: str) -> list[float]:
        """Bar heights for one panel row, in server order (Figure 3)."""
        heights = []
        for addr in self.server_addrs:
            record = self._records.get((vantage_key, addr))
            heights.append(record.fraction if record is not None else 0.0)
        return heights

    def servers_above(self, threshold: float, vantage_key: str) -> set[int]:
        """Servers with differential fraction strictly above ``threshold``."""
        return {
            addr
            for addr in self.server_addrs
            if (record := self._records.get((vantage_key, addr))) is not None
            and record.fraction > threshold
        }

    def count_above_per_vantage(self, threshold: float = 0.5) -> dict[str, int]:
        """Paper's 'between 9 and 14 servers >50 %' per-location counts."""
        return {
            key: len(self.servers_above(threshold, key)) for key in self.vantage_keys
        }

    def servers_above_everywhere(self, threshold: float = 0.5) -> set[int]:
        """Servers above threshold from *every* vantage.

        The paper observes "it is usually the same set of servers
        having high differential reachability from every location" —
        the signature of blocking near the destination.
        """
        result: set[int] | None = None
        for key in self.vantage_keys:
            here = self.servers_above(threshold, key)
            result = here if result is None else (result & here)
        return result or set()

    def servers_above_somewhere(self, threshold: float = 0.5) -> set[int]:
        """Servers above threshold from at least one vantage."""
        result: set[int] = set()
        for key in self.vantage_keys:
            result |= self.servers_above(threshold, key)
        return result

    def global_fractions(self) -> dict[int, float]:
        """Differential fraction per server pooled over all vantages."""
        eligible: dict[int, int] = {}
        differential: dict[int, int] = {}
        for (_, addr), record in self._records.items():
            eligible[addr] = eligible.get(addr, 0) + record.eligible
            differential[addr] = differential.get(addr, 0) + record.differential
        return {
            addr: differential.get(addr, 0) / count
            for addr, count in eligible.items()
        }


def transient_vs_persistent(
    analysis: DifferentialAnalysis,
    persistent_threshold: float = 0.5,
) -> tuple[set[int], set[int]]:
    """Split differential servers into persistent and transient sets.

    Persistent: above the threshold somewhere.  Transient: showed a
    non-zero differential somewhere but never crossed the threshold.
    The paper finds roughly 4x more transient than persistent cases.
    """
    persistent = analysis.servers_above_somewhere(persistent_threshold)
    transient = {
        addr
        for addr, fraction in analysis.global_fractions().items()
        if fraction > 0
    } - persistent
    return persistent, transient
