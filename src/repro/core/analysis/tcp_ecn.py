"""§4.3 / Figures 5 & 6: TCP reachability and ECN negotiation.

Figure 5 plots, per trace, how many of the pool hosts answer HTTP over
TCP and how many of those negotiate ECN when asked (paper averages:
1334 reachable, 1095 negotiating = 82.0 %).  Figure 6 places that
negotiation rate on the historical deployment curve from Medina (2000)
through Trammell (2014); :data:`HISTORICAL_STUDIES` encodes the prior
measurements the paper plots, and :func:`ecn_deployment_series`
appends our measured point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...stats.timeseries import LogisticFit, fit_logistic
from ..traces import Trace, TraceSet


@dataclass(frozen=True)
class TraceTCPReachability:
    """The Figure 5 quantities for one trace."""

    trace_id: int
    vantage_key: str
    batch: int
    tcp_reachable: int
    ecn_negotiated: int

    @property
    def unwilling(self) -> int:
        """Reachable via TCP but did not return an ECN-setup SYN-ACK."""
        return self.tcp_reachable - self.ecn_negotiated

    @property
    def pct_negotiated(self) -> float | None:
        if self.tcp_reachable == 0:
            return None
        return 100.0 * self.ecn_negotiated / self.tcp_reachable


@dataclass
class TCPECNSummary:
    """Study-wide §4.3 aggregates."""

    per_trace: list[TraceTCPReachability]
    total_servers: int

    @property
    def avg_tcp_reachable(self) -> float:
        """Paper: 'on average, we are able to reach 1334 web servers'."""
        return _mean([t.tcp_reachable for t in self.per_trace])

    @property
    def avg_ecn_negotiated(self) -> float:
        """Paper: 'the average number ... was 1095'."""
        return _mean([t.ecn_negotiated for t in self.per_trace])

    @property
    def pct_negotiated(self) -> float:
        """Paper headline: 82.0 % of those reachable using TCP."""
        reachable = self.avg_tcp_reachable
        return 100.0 * self.avg_ecn_negotiated / reachable if reachable else 0.0

    def by_vantage(self) -> dict[str, list[TraceTCPReachability]]:
        grouped: dict[str, list[TraceTCPReachability]] = {}
        for record in self.per_trace:
            grouped.setdefault(record.vantage_key, []).append(record)
        return grouped


def trace_tcp_reachability(trace: Trace) -> TraceTCPReachability:
    """Compute the Figure 5 quantities for one trace."""
    return TraceTCPReachability(
        trace_id=trace.trace_id,
        vantage_key=trace.vantage_key,
        batch=trace.batch,
        tcp_reachable=trace.count_tcp_plain(),
        ecn_negotiated=trace.count_ecn_negotiated(),
    )


def analyze_tcp_ecn(trace_set: TraceSet) -> TCPECNSummary:
    """Run the §4.3 analysis over a whole study."""
    return TCPECNSummary(
        per_trace=[trace_tcp_reachability(trace) for trace in trace_set],
        total_servers=len(trace_set.server_addrs),
    )


# ----------------------------------------------------------------------
# Figure 6: the deployment time series
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HistoricalStudy:
    """One prior measurement of TCP servers willing to negotiate ECN."""

    year: float
    pct_negotiated: float
    label: str


#: The prior studies Figure 6 plots, as cited in §4.3 / §5.
HISTORICAL_STUDIES: tuple[HistoricalStudy, ...] = (
    HistoricalStudy(2000.5, 0.1, "Medina"),
    HistoricalStudy(2004.5, 1.1, "Medina"),
    HistoricalStudy(2008.7, 1.0, "Langley"),
    HistoricalStudy(2011.8, 17.2, "Bauer"),
    HistoricalStudy(2012.3, 25.16, "Kuhlewind"),
    HistoricalStudy(2012.6, 29.48, "Kuhlewind"),
    HistoricalStudy(2014.7, 56.17, "Trammell"),
)

#: When the paper's own measurement was taken.
MEASUREMENT_YEAR = 2015.5


def ecn_deployment_series(
    measured_pct: float,
    measured_year: float = MEASUREMENT_YEAR,
) -> list[HistoricalStudy]:
    """The Figure 6 point set: history plus our measured value."""
    return list(HISTORICAL_STUDIES) + [
        HistoricalStudy(measured_year, measured_pct, "measured")
    ]


def fit_deployment_trend(
    series: list[HistoricalStudy] | None = None,
) -> LogisticFit:
    """Fit a logistic adoption curve to the deployment series.

    The paper eyeballs that its measurement sits "on a growth curve
    that looks to be in line with previous results"; the fit makes
    that checkable: tests assert the measured point's residual is
    within the curve's tolerance band.
    """
    points = series if series is not None else list(HISTORICAL_STUDIES)
    years = [p.year for p in points]
    values = [p.pct_negotiated for p in points]
    return fit_logistic(years, values, ceiling=100.0)


def _mean(values: list[float]) -> float:
    if not values:
        raise ValueError("mean of empty list")
    return sum(values) / len(values)
