"""§4.1 / Figure 2: UDP reachability with and without ECT(0).

Computes, per trace, the two percentages plotted in Figure 2 (of the
servers reachable with not-ECT marked packets, how many are also
reachable with ECT(0); and the converse), and the study-wide averages
the paper headlines: 98.97 %, 99.45 %, and 2253 of 2500 servers
reachable on average.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..traces import Trace, TraceSet


@dataclass(frozen=True)
class TraceReachability:
    """The Figure 2 quantities for one trace."""

    trace_id: int
    vantage_key: str
    batch: int
    udp_plain: int
    udp_ect: int
    udp_both: int

    @property
    def pct_ect_given_plain(self) -> float | None:
        """Figure 2a bar height."""
        return 100.0 * self.udp_both / self.udp_plain if self.udp_plain else None

    @property
    def pct_plain_given_ect(self) -> float | None:
        """Figure 2b bar height."""
        return 100.0 * self.udp_both / self.udp_ect if self.udp_ect else None


@dataclass
class ReachabilitySummary:
    """Study-wide aggregates for §4.1."""

    per_trace: list[TraceReachability]
    total_servers: int

    @property
    def avg_udp_plain(self) -> float:
        """Paper: 'an average of 2253 servers ... are reachable'."""
        return _mean([t.udp_plain for t in self.per_trace])

    @property
    def avg_udp_ect(self) -> float:
        return _mean([t.udp_ect for t in self.per_trace])

    @property
    def avg_pct_ect_given_plain(self) -> float:
        """Paper headline: 98.97 %."""
        return _mean(
            [t.pct_ect_given_plain for t in self.per_trace if t.pct_ect_given_plain is not None]
        )

    @property
    def avg_pct_plain_given_ect(self) -> float:
        """Paper: 99.45 %."""
        return _mean(
            [t.pct_plain_given_ect for t in self.per_trace if t.pct_plain_given_ect is not None]
        )

    @property
    def min_pct_ect_given_plain(self) -> float:
        """The paper notes the 2a fraction 'is always above 90 %'."""
        return min(
            t.pct_ect_given_plain for t in self.per_trace if t.pct_ect_given_plain is not None
        )

    def by_vantage(self) -> dict[str, list[TraceReachability]]:
        """Per-vantage trace lists, in first-appearance order."""
        grouped: dict[str, list[TraceReachability]] = {}
        for record in self.per_trace:
            grouped.setdefault(record.vantage_key, []).append(record)
        return grouped

    def vantage_avg_pct(self, which: str = "a") -> dict[str, float]:
        """Per-vantage mean of the 2a (or 2b) percentage."""
        result: dict[str, float] = {}
        for key, records in self.by_vantage().items():
            values = [
                (r.pct_ect_given_plain if which == "a" else r.pct_plain_given_ect)
                for r in records
            ]
            values = [v for v in values if v is not None]
            if values:
                result[key] = _mean(values)
        return result

    def batch_avg_reachable(self) -> dict[int, float]:
        """Mean not-ECT reachability per batch.

        The paper observes the early (batch 1) traces reach more
        servers than the July/August ones, attributing the gap to pool
        churn; this lets callers check the same effect.
        """
        result: dict[int, float] = {}
        for batch in sorted({t.batch for t in self.per_trace}):
            counts = [t.udp_plain for t in self.per_trace if t.batch == batch]
            result[batch] = _mean(counts)
        return result


def trace_reachability(trace: Trace) -> TraceReachability:
    """Compute the Figure 2 quantities for one trace."""
    return TraceReachability(
        trace_id=trace.trace_id,
        vantage_key=trace.vantage_key,
        batch=trace.batch,
        udp_plain=trace.count_udp_plain(),
        udp_ect=trace.count_udp_ect(),
        udp_both=trace.count_udp_both(),
    )


def analyze_reachability(trace_set: TraceSet) -> ReachabilitySummary:
    """Run the §4.1 analysis over a whole study."""
    return ReachabilitySummary(
        per_trace=[trace_reachability(trace) for trace in trace_set],
        total_servers=len(trace_set.server_addrs),
    )


def _mean(values: list[float]) -> float:
    if not values:
        raise ValueError("mean of empty list")
    return sum(values) / len(values)
