"""Uncertainty quantification for the headline numbers.

The paper reports point averages over its 210 traces (98.97 %, 82.0 %,
...).  With the trace set in hand we can do slightly better than the
paper did: percentile-bootstrap confidence intervals over traces,
which is the right resampling unit because traces are the independent
repetitions of the experiment (servers within a trace share fate
through the vantage's access network).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...stats.summaries import ConfidenceInterval, bootstrap_ci
from .reachability import analyze_reachability
from .tcp_ecn import analyze_tcp_ecn
from ..traces import TraceSet


@dataclass(frozen=True)
class HeadlineIntervals:
    """Bootstrap CIs for the abstract's four scalars (per-trace units)."""

    pct_ect_given_plain: ConfidenceInterval
    pct_plain_given_ect: ConfidenceInterval
    udp_plain_reachable: ConfidenceInterval
    pct_ecn_negotiated: ConfidenceInterval

    def summary_lines(self) -> list[str]:
        """Human-readable rendering for reports."""

        def fmt(name: str, ci: ConfidenceInterval, unit: str = "%") -> str:
            return (
                f"{name}: {ci.estimate:.2f}{unit} "
                f"[{ci.low:.2f}, {ci.high:.2f}] ({ci.confidence:.0%} CI)"
            )

        return [
            fmt("ECT-given-plain reachability", self.pct_ect_given_plain),
            fmt("plain-given-ECT reachability", self.pct_plain_given_ect),
            fmt("servers reachable (not-ECT)", self.udp_plain_reachable, unit=""),
            fmt("TCP ECN negotiation", self.pct_ecn_negotiated),
        ]


def headline_intervals(
    trace_set: TraceSet,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> HeadlineIntervals:
    """Bootstrap the four headline statistics over traces."""
    reach = analyze_reachability(trace_set)
    tcp = analyze_tcp_ecn(trace_set)

    pct_a = [
        t.pct_ect_given_plain
        for t in reach.per_trace
        if t.pct_ect_given_plain is not None
    ]
    pct_b = [
        t.pct_plain_given_ect
        for t in reach.per_trace
        if t.pct_plain_given_ect is not None
    ]
    plain_counts = [float(t.udp_plain) for t in reach.per_trace]
    pct_neg = [
        t.pct_negotiated for t in tcp.per_trace if t.pct_negotiated is not None
    ]
    return HeadlineIntervals(
        pct_ect_given_plain=bootstrap_ci(
            pct_a, confidence=confidence, resamples=resamples, seed=seed
        ),
        pct_plain_given_ect=bootstrap_ci(
            pct_b, confidence=confidence, resamples=resamples, seed=seed + 1
        ),
        udp_plain_reachable=bootstrap_ci(
            plain_counts, confidence=confidence, resamples=resamples, seed=seed + 2
        ),
        pct_ecn_negotiated=bootstrap_ci(
            pct_neg, confidence=confidence, resamples=resamples, seed=seed + 3
        ),
    )
