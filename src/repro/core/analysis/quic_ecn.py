"""QUIC ECN validation vs raw-UDP reachability (the modern sequel).

The source paper measured whether ECT(0)-marked UDP *arrives*; RFC
9000 §13.4 validation measures whether the marks arrive *intact*.
This analysis cross-tabulates the two: for every QUIC validation
state, how often the very same (vantage, server, epoch) probe pair
found the server reachable with raw ECT(0) UDP.  The table makes the
sequel papers' central point quantitative — **bleached** paths look
perfectly healthy to a reachability probe (the marks are stripped,
the packets still arrive), while **blackholed** paths are the only
failure raw differential probing can see.  Bleaching dominating
blackholing is exactly the finding of "ECN with QUIC: Challenges in
the Wild" (arXiv 2309.14273).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...protocols.quic.validation import QUIC_STATES, ecn_usable
from ..traces import TraceSet


@dataclass(frozen=True)
class QUICStateRow:
    """One row of the validation-vs-reachability cross-tabulation."""

    state: str
    #: (vantage, server, epoch) probes ending in this state.
    observations: int
    #: Share of all QUIC observations.
    pct_of_total: float
    #: Of these observations, % where the same trace's raw ECT(0) UDP
    #: probe reached the server (None when there are none).
    raw_ect_reachable_pct: float | None
    #: Same for the not-ECT UDP probe.
    raw_plain_reachable_pct: float | None
    #: Servers whose most frequent validation state is this one.
    servers_dominant: int


@dataclass
class QUICECNSummary:
    """Study-wide QUIC §13.4 validation aggregates."""

    rows: list[QUICStateRow] = field(default_factory=list)
    total: int = 0
    #: Dominant validation state per server address.
    dominant_state: dict[int, str] = field(default_factory=dict)

    def row(self, state: str) -> QUICStateRow | None:
        """The cross-tabulation row for one state, if present."""
        for candidate in self.rows:
            if candidate.state == state:
                return candidate
        return None

    def count(self, state: str) -> int:
        """Observations ending in ``state`` (0 when absent)."""
        found = self.row(state)
        return found.observations if found is not None else 0

    @property
    def pct_ecn_usable(self) -> float:
        """Share of probes after which RFC 9000 keeps ECN enabled."""
        if not self.total:
            return 0.0
        usable = sum(r.observations for r in self.rows if ecn_usable(r.state))
        return 100.0 * usable / self.total

    @property
    def pct_bleached(self) -> float:
        """Share of probes where marks were stripped in flight."""
        return 100.0 * self.count("bleached") / self.total if self.total else 0.0

    @property
    def pct_blackholed(self) -> float:
        """Share of probes where ECT-marked packets were eaten."""
        return 100.0 * self.count("blackhole") / self.total if self.total else 0.0

    @property
    def bleaching_dominates(self) -> bool:
        """The sequel papers' headline: bleaching > blackholing.

        Bleaching is also the failure mode raw reachability probing
        cannot see — its rows show near-full raw ECT reachability.
        """
        return self.count("bleached") > self.count("blackhole")


def analyze_quic_ecn(trace_set: TraceSet) -> QUICECNSummary:
    """Cross-tabulate QUIC validation states against raw reachability.

    Returns an empty summary (``total == 0``) when the study ran
    without the QUIC probe family; callers use that to skip the
    report section entirely.
    """
    observations = 0
    by_state: dict[str, int] = {state: 0 for state in QUIC_STATES}
    ect_reachable: dict[str, int] = {state: 0 for state in QUIC_STATES}
    plain_reachable: dict[str, int] = {state: 0 for state in QUIC_STATES}
    per_server: dict[int, dict[str, int]] = {}
    for trace in trace_set:
        for outcome in trace.outcomes.values():
            quic = outcome.quic
            if quic is None:
                continue
            observations += 1
            by_state[quic.state] += 1
            if outcome.udp_ect:
                ect_reachable[quic.state] += 1
            if outcome.udp_plain:
                plain_reachable[quic.state] += 1
            server_states = per_server.setdefault(outcome.server_addr, {})
            server_states[quic.state] = server_states.get(quic.state, 0) + 1

    dominant: dict[int, str] = {}
    for addr, states in per_server.items():
        # Deterministic tie-break: higher count wins, then QUIC_STATES
        # order (worse news first would be arbitrary; report order is
        # the canonical order everywhere else).
        dominant[addr] = max(
            states, key=lambda s: (states[s], -QUIC_STATES.index(s))
        )
    dominant_counts: dict[str, int] = {state: 0 for state in QUIC_STATES}
    for state in dominant.values():
        dominant_counts[state] += 1

    rows = [
        QUICStateRow(
            state=state,
            observations=by_state[state],
            pct_of_total=(100.0 * by_state[state] / observations) if observations else 0.0,
            raw_ect_reachable_pct=(
                100.0 * ect_reachable[state] / by_state[state]
                if by_state[state]
                else None
            ),
            raw_plain_reachable_pct=(
                100.0 * plain_reachable[state] / by_state[state]
                if by_state[state]
                else None
            ),
            servers_dominant=dominant_counts[state],
        )
        for state in QUIC_STATES
    ]
    return QUICECNSummary(rows=rows, total=observations, dominant_state=dominant)
