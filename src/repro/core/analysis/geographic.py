"""Table 1 / Figure 1: where the discovered servers are.

Runs the discovered addresses through the (synthetic) GeoLite2-style
database and produces the regional tally of Table 1 and the lat/lon
point cloud of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...geo.database import GeoDatabase
from ...geo.regions import Region


@dataclass(frozen=True)
class GeoPoint:
    """One locatable server for the Figure 1 map."""

    addr: int
    latitude: float
    longitude: float
    region: Region
    country_code: str


@dataclass
class GeographicDistribution:
    """Table 1 plus the Figure 1 point set."""

    region_counts: dict[Region, int]
    points: list[GeoPoint]
    total: int

    def table_rows(self) -> list[tuple[str, int]]:
        """Rows in Table 1's order, ending with the total."""
        rows = [
            (region.value, self.region_counts.get(region, 0))
            for region in Region.ordered()
        ]
        rows.append(("Total", self.total))
        return rows

    def count(self, region: Region) -> int:
        return self.region_counts.get(region, 0)


def analyze_geography(
    addrs: Sequence[int], database: GeoDatabase
) -> GeographicDistribution:
    """Classify ``addrs`` (the discovered servers) by region."""
    counts: dict[Region, int] = {}
    points: list[GeoPoint] = []
    for addr in addrs:
        record = database.lookup(addr)
        counts[record.region] = counts.get(record.region, 0) + 1
        if record.region is not Region.UNKNOWN:
            points.append(
                GeoPoint(
                    addr=addr,
                    latitude=record.latitude,
                    longitude=record.longitude,
                    region=record.region,
                    country_code=record.country_code,
                )
            )
    return GeographicDistribution(
        region_counts=counts, points=points, total=len(addrs)
    )
