"""§4.2 / Figure 4: where ECT marks are stripped in the network.

Given a traceroute campaign, classifies every responding hop:

* **pass** — the quoted ECN field equals what we sent (ECT(0));
* **strip point** — the first hop on a path whose quotation came back
  not-ECT (the bleacher sits at or just before this hop);
* **downstream** — hops after a strip point, which also quote not-ECT
  ("runs of red" in Figure 4).

From this it derives the paper's §4.2 statistics: total hops measured,
hops passing the mark, strip locations (by responder address),
sometimes-strippers, AS coverage, and the fraction of strip locations
at AS boundaries (59.1 % in the paper, inferred through a noisy
IP→AS mapping exactly as the paper cautions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ...asmap.boundaries import classify_hop
from ...asmap.mapping import UNKNOWN_ASN
from ..traces import PathTrace, TracerouteCampaign

PASS = "pass"
STRIP = "strip"
DOWNSTREAM = "downstream"


class ASLookup(Protocol):
    """Anything that maps an address to an ASN (ASMap, NoisyASMap)."""

    def lookup(self, addr: int) -> int:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class ClassifiedHop:
    """One responding hop with its §4.2 classification."""

    vantage_key: str
    dst_addr: int
    ttl: int
    responder: int
    status: str  # PASS | STRIP | DOWNSTREAM
    asn: int
    at_as_boundary: bool
    boundary_determinate: bool


@dataclass
class PathAnalysis:
    """All §4.2 statistics for a campaign."""

    hops: list[ClassifiedHop]
    paths_total: int
    paths_with_strip: int

    # ------------------------------------------------------------------
    # Hop-level counts (the 155439 / 154421 / 1143 numbers)
    # ------------------------------------------------------------------
    @property
    def hops_measured(self) -> int:
        return len(self.hops)

    @property
    def hops_passing(self) -> int:
        return sum(1 for hop in self.hops if hop.status == PASS)

    @property
    def strip_events(self) -> int:
        """Hop observations at which a strip was first seen."""
        return sum(1 for hop in self.hops if hop.status == STRIP)

    @property
    def downstream_events(self) -> int:
        return sum(1 for hop in self.hops if hop.status == DOWNSTREAM)

    @property
    def pct_hops_passing(self) -> float:
        """The abstract's '~98 % of network hops pass ECT(0)'."""
        if not self.hops:
            return 0.0
        return 100.0 * self.hops_passing / self.hops_measured

    # ------------------------------------------------------------------
    # Location-level counts (unique responders)
    # ------------------------------------------------------------------
    def strip_locations(self) -> set[int]:
        """Responder addresses observed as strip points."""
        return {hop.responder for hop in self.hops if hop.status == STRIP}

    def sometimes_strip_locations(self) -> set[int]:
        """Responders that strip on some paths but pass on others.

        The paper's '125 hops only sometimes strip the ECN mark'.
        """
        passing = {hop.responder for hop in self.hops if hop.status == PASS}
        return self.strip_locations() & passing

    def ases_observed(self) -> set[int]:
        """Distinct (known) ASNs among responding hops."""
        return {hop.asn for hop in self.hops if hop.asn != UNKNOWN_ASN}

    # ------------------------------------------------------------------
    # Boundary analysis (the 59.1 % statistic)
    # ------------------------------------------------------------------
    def boundary_strip_fraction(self) -> tuple[float, int, int]:
        """Fraction of determinate strip events at AS boundaries.

        Returns ``(fraction, boundary_events, determinate_events)``.
        """
        boundary = 0
        determinate = 0
        for hop in self.hops:
            if hop.status != STRIP or not hop.boundary_determinate:
                continue
            determinate += 1
            if hop.at_as_boundary:
                boundary += 1
        fraction = boundary / determinate if determinate else 0.0
        return fraction, boundary, determinate


def classify_path(path: PathTrace, as_map: ASLookup) -> list[ClassifiedHop]:
    """Classify the responding hops of one traceroute."""
    responding = path.responding_hops()
    asns = [as_map.lookup(hop.responder) for hop in responding]
    classified: list[ClassifiedHop] = []
    stripped = False
    for index, hop in enumerate(responding):
        if hop.mark_preserved:
            status = PASS
            # A pass after a strip means the "strip" was transient
            # upstream behaviour (flaky bleacher); later hops that
            # still show the mark really did pass it.
            if stripped:
                stripped = False
        elif not stripped:
            status = STRIP
            stripped = True
        else:
            status = DOWNSTREAM
        verdict = classify_hop(asns, index)
        classified.append(
            ClassifiedHop(
                vantage_key=path.vantage_key,
                dst_addr=path.dst_addr,
                ttl=hop.ttl,
                responder=hop.responder,  # type: ignore[arg-type]
                status=status,
                asn=asns[index],
                at_as_boundary=verdict.is_boundary,
                boundary_determinate=verdict.determinate,
            )
        )
    return classified


def analyze_campaign(campaign: TracerouteCampaign, as_map: ASLookup) -> PathAnalysis:
    """Run the §4.2 analysis over a whole traceroute campaign."""
    hops: list[ClassifiedHop] = []
    paths_with_strip = 0
    for path in campaign:
        classified = classify_path(path, as_map)
        hops.extend(classified)
        if any(hop.status == STRIP for hop in classified):
            paths_with_strip += 1
    return PathAnalysis(
        hops=hops,
        paths_total=len(campaign),
        paths_with_strip=paths_with_strip,
    )
