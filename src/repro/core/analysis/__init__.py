"""Analyses reproducing every table and figure of the paper.

=====================  ==========================================
Module                 Paper artefact
=====================  ==========================================
``geographic``         Table 1, Figure 1
``reachability``       §4.1 scalars, Figure 2a/2b
``differential``       Figure 3a/3b
``pathanalysis``       §4.2 statistics, Figure 4
``tcp_ecn``            §4.3, Figure 5, Figure 6
``correlation``        §4.4, Table 2
``quic_ecn``           (extension) RFC 9000 §13.4 vs raw UDP
=====================  ==========================================
"""

from .correlation import CorrelationRow, CorrelationTable, analyze_correlation
from .differential import (
    DifferentialAnalysis,
    ServerDifferential,
    transient_vs_persistent,
)
from .geographic import GeographicDistribution, GeoPoint, analyze_geography
from .pathanalysis import (
    DOWNSTREAM,
    PASS,
    STRIP,
    ClassifiedHop,
    PathAnalysis,
    analyze_campaign,
    classify_path,
)
from .quic_ecn import QUICECNSummary, QUICStateRow, analyze_quic_ecn
from .reachability import (
    ReachabilitySummary,
    TraceReachability,
    analyze_reachability,
    trace_reachability,
)
from .regional import RegionalReachability, analyze_regional
from .uncertainty import HeadlineIntervals, headline_intervals
from .validation import (
    InferenceQuality,
    validate_blocked_server_inference,
    validate_oddball_inference,
    validate_strip_location_inference,
    validate_study,
)
from .tcp_ecn import (
    HISTORICAL_STUDIES,
    HistoricalStudy,
    MEASUREMENT_YEAR,
    TCPECNSummary,
    TraceTCPReachability,
    analyze_tcp_ecn,
    ecn_deployment_series,
    fit_deployment_trend,
    trace_tcp_reachability,
)

__all__ = [
    "ClassifiedHop",
    "CorrelationRow",
    "CorrelationTable",
    "DOWNSTREAM",
    "DifferentialAnalysis",
    "GeoPoint",
    "GeographicDistribution",
    "HISTORICAL_STUDIES",
    "HeadlineIntervals",
    "HistoricalStudy",
    "InferenceQuality",
    "MEASUREMENT_YEAR",
    "PASS",
    "PathAnalysis",
    "QUICECNSummary",
    "QUICStateRow",
    "ReachabilitySummary",
    "RegionalReachability",
    "STRIP",
    "ServerDifferential",
    "TCPECNSummary",
    "TraceReachability",
    "TraceTCPReachability",
    "analyze_campaign",
    "analyze_correlation",
    "analyze_geography",
    "analyze_quic_ecn",
    "analyze_reachability",
    "analyze_regional",
    "analyze_tcp_ecn",
    "classify_path",
    "ecn_deployment_series",
    "fit_deployment_trend",
    "headline_intervals",
    "trace_reachability",
    "trace_tcp_reachability",
    "transient_vs_persistent",
    "validate_blocked_server_inference",
    "validate_oddball_inference",
    "validate_strip_location_inference",
    "validate_study",
]
