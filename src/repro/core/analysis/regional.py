"""Regional breakdown of ECN reachability (extension analysis).

The paper reports reachability pooled over all servers; with Table 1's
regional classification in hand, the same measurements split by
continent — does ECT(0) blocking concentrate geographically?  In the
calibrated scenario (as, plausibly, in the wild) blocking follows
specific networks rather than regions, so regional deficits stay
small everywhere; this analysis makes that checkable and gives the
reporting layer a Table-1-shaped view of §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...geo.database import GeoDatabase
from ...geo.regions import Region
from ..traces import TraceSet


@dataclass(frozen=True)
class RegionalReachability:
    """§4.1 quantities restricted to one region's servers."""

    region: Region
    servers: int
    #: Mean per-trace count of this region's servers reachable via
    #: not-ECT UDP.
    avg_plain_reachable: float
    #: Mean per-trace count reachable via ECT(0) UDP.
    avg_ect_reachable: float
    #: Of the plain-reachable, the share also ECT-reachable (pooled).
    pct_ect_given_plain: float | None

    @property
    def ect_deficit_pct(self) -> float:
        """Percentage-point reachability cost of the ECT(0) mark."""
        if self.pct_ect_given_plain is None:
            return 0.0
        return 100.0 - self.pct_ect_given_plain


def analyze_regional(
    trace_set: TraceSet, database: GeoDatabase
) -> list[RegionalReachability]:
    """Split the §4.1 reachability analysis by region.

    Regions with no servers are omitted; rows come back in Table 1
    order.
    """
    region_of = {addr: database.region_of(addr) for addr in trace_set.server_addrs}
    members: dict[Region, int] = {}
    for region in region_of.values():
        members[region] = members.get(region, 0) + 1

    plain_counts: dict[Region, int] = {}
    ect_counts: dict[Region, int] = {}
    both_counts: dict[Region, int] = {}
    for trace in trace_set:
        for outcome in trace.outcomes.values():
            region = region_of.get(outcome.server_addr)
            if region is None:
                continue
            if outcome.udp_plain:
                plain_counts[region] = plain_counts.get(region, 0) + 1
                if outcome.udp_ect:
                    both_counts[region] = both_counts.get(region, 0) + 1
            if outcome.udp_ect:
                ect_counts[region] = ect_counts.get(region, 0) + 1

    n_traces = max(len(trace_set), 1)
    rows = []
    for region in Region.ordered():
        if region not in members:
            continue
        plain = plain_counts.get(region, 0)
        both = both_counts.get(region, 0)
        rows.append(
            RegionalReachability(
                region=region,
                servers=members[region],
                avg_plain_reachable=plain / n_traces,
                avg_ect_reachable=ect_counts.get(region, 0) / n_traces,
                pct_ect_given_plain=(100.0 * both / plain) if plain else None,
            )
        )
    return rows
