"""§4.4 / Table 2: correlating UDP and TCP failures under ECN.

For each vantage: the average number of servers per trace that are
reachable with not-ECT UDP but not with ECT(0) UDP, and of those, how
many are reachable over TCP yet do not negotiate ECN.  The paper finds
the correlation weak — most ECT-UDP-blocked servers happily negotiate
ECN with TCP — which is its evidence for middleboxes that discriminate
on the transport protocol above the IP/ECN field.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..traces import TraceSet


@dataclass(frozen=True)
class CorrelationRow:
    """One row of Table 2."""

    vantage_key: str
    traces: int
    #: Average per-trace count of servers reachable via not-ECT UDP
    #: but not via ECT(0) UDP (column 2 of Table 2).
    avg_udp_ect_unreachable: float
    #: Of those, average count also reachable via TCP but unwilling to
    #: negotiate ECN (column 3).
    avg_fail_tcp_ecn: float
    #: Of those, average count that *do* negotiate ECN over TCP — the
    #: paper's "majority can be reached using ECN with TCP".
    avg_negotiate_tcp_ecn: float

    @property
    def fraction_also_failing_tcp(self) -> float:
        """Share of ECT-UDP-unreachable servers also refusing TCP ECN."""
        if self.avg_udp_ect_unreachable == 0:
            return 0.0
        return self.avg_fail_tcp_ecn / self.avg_udp_ect_unreachable


@dataclass
class CorrelationTable:
    """The full Table 2."""

    rows: list[CorrelationRow]

    def row(self, vantage_key: str) -> CorrelationRow | None:
        for row in self.rows:
            if row.vantage_key == vantage_key:
                return row
        return None

    @property
    def overall_fraction_also_failing(self) -> float:
        """Pooled share of UDP-ECT-blocked servers refusing TCP ECN.

        Weak correlation means this stays well below one half.
        """
        unreachable = sum(r.avg_udp_ect_unreachable * r.traces for r in self.rows)
        failing = sum(r.avg_fail_tcp_ecn * r.traces for r in self.rows)
        return failing / unreachable if unreachable else 0.0


def analyze_correlation(trace_set: TraceSet) -> CorrelationTable:
    """Build Table 2 from a study."""
    rows: list[CorrelationRow] = []
    for vantage_key in trace_set.vantage_keys():
        traces = trace_set.by_vantage(vantage_key)
        unreachable_counts: list[int] = []
        failing_counts: list[int] = []
        negotiating_counts: list[int] = []
        for trace in traces:
            unreachable = [
                o
                for o in trace.outcomes.values()
                if o.udp_plain and not o.udp_ect
            ]
            unreachable_counts.append(len(unreachable))
            failing_counts.append(
                sum(1 for o in unreachable if o.tcp_plain and not o.ecn_negotiated)
            )
            negotiating_counts.append(
                sum(1 for o in unreachable if o.ecn_negotiated)
            )
        count = len(traces)
        rows.append(
            CorrelationRow(
                vantage_key=vantage_key,
                traces=count,
                avg_udp_ect_unreachable=sum(unreachable_counts) / count,
                avg_fail_tcp_ecn=sum(failing_counts) / count,
                avg_negotiate_tcp_ecn=sum(negotiating_counts) / count,
            )
        )
    return CorrelationTable(rows=rows)
