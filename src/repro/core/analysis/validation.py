"""Methodology validation: measurement inferences vs ground truth.

The paper *infers* middlebox behaviour from reachability and
traceroute observations; because our substrate is a simulator, the
deployment is known exactly, so the quality of those inferences can be
quantified — precision and recall of each §4 inference rule.  This is
an extension beyond the paper (which had no ground truth), and it is
what makes the calibrated scenario trustworthy: the methodology, run
honestly, recovers what was deployed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...scenario.internet import GroundTruth, SyntheticInternet
from ..traces import TraceSet, TracerouteCampaign
from .differential import DifferentialAnalysis
from .pathanalysis import analyze_campaign


@dataclass(frozen=True)
class InferenceQuality:
    """Precision/recall of one inference against ground truth."""

    name: str
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        found = self.true_positives + self.false_positives
        return self.true_positives / found if found else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def _score(name: str, inferred: set, actual: set) -> InferenceQuality:
    return InferenceQuality(
        name=name,
        true_positives=len(inferred & actual),
        false_positives=len(inferred - actual),
        false_negatives=len(actual - inferred),
    )


def validate_blocked_server_inference(
    trace_set: TraceSet,
    truth: GroundTruth,
    threshold: float = 0.5,
) -> InferenceQuality:
    """§4.1's rule: servers with >50 % differential reachability from
    every vantage are behind ECT-dropping firewalls."""
    analysis = DifferentialAnalysis(trace_set, "plain-only")
    inferred = analysis.servers_above_everywhere(threshold)
    actual = truth.udp_ect_blocked | truth.any_ect_blocked
    return _score("blocked-servers", inferred, actual)


def validate_oddball_inference(
    trace_set: TraceSet,
    truth: GroundTruth,
    threshold: float = 0.5,
) -> InferenceQuality:
    """Figure 3b's rule: ect-only differential spikes mark servers
    that drop not-ECT UDP (globally or from some sources)."""
    analysis = DifferentialAnalysis(trace_set, "ect-only")
    inferred = analysis.servers_above_somewhere(threshold)
    actual = truth.not_ect_blocked | truth.phoenix
    return _score("not-ect-droppers", inferred, actual)


def validate_strip_location_inference(
    world: SyntheticInternet,
    campaign: TracerouteCampaign,
) -> InferenceQuality:
    """§4.2's rule: the first hop quoting a cleared ECN field hosts
    the bleacher.

    Scored at AS granularity because flaky bleachers legitimately
    smear hop-level attribution downstream within their AS (see the
    path-analysis tests); the paper's own AS-boundary statistic is
    computed at the same granularity.
    """
    analysis = analyze_campaign(campaign, world.as_map)
    inferred_asns = {
        world.as_map.lookup(addr) for addr in analysis.strip_locations()
    }
    actual_asns = {
        world.topology.routers[router_id].asn
        for router_id in world.ground_truth.bleacher_routers
    }
    return _score("strip-ases", inferred_asns, actual_asns)


def validate_study(
    world: SyntheticInternet,
    trace_set: TraceSet,
    campaign: TracerouteCampaign,
) -> list[InferenceQuality]:
    """Run every validation; returns one quality record per inference."""
    truth = world.ground_truth
    return [
        validate_blocked_server_inference(trace_set, truth),
        validate_oddball_inference(trace_set, truth),
        validate_strip_location_inference(world, campaign),
    ]
