"""The paper's measurement system: discovery, probes, traces, analysis."""

from .capture import (
    CapturedPacket,
    PacketCapture,
    tcp_port_filter,
    udp_port_filter,
)
from .discovery import DiscoveredServer, DiscoveryReport, PoolDiscovery
from .measurement import MeasurementApplication, PlannedTrace, trace_plan
from .probes import (
    ECNUsabilityResult,
    Traceroute,
    probe_tcp,
    probe_tcp_ecn_usability,
    probe_udp,
    run_traceroute,
)
from .tracebox import FieldChange, TraceboxResult, diff_path, run_tracebox
from .traces import (
    HopObservation,
    PathTrace,
    ProbeOutcome,
    Trace,
    TraceSet,
    TracerouteCampaign,
)

__all__ = [
    "CapturedPacket",
    "DiscoveredServer",
    "DiscoveryReport",
    "ECNUsabilityResult",
    "FieldChange",
    "HopObservation",
    "MeasurementApplication",
    "PacketCapture",
    "PathTrace",
    "PlannedTrace",
    "PoolDiscovery",
    "ProbeOutcome",
    "Trace",
    "TraceSet",
    "TraceboxResult",
    "Traceroute",
    "TracerouteCampaign",
    "diff_path",
    "probe_tcp",
    "probe_tcp_ecn_usability",
    "probe_udp",
    "run_tracebox",
    "run_traceroute",
    "tcp_port_filter",
    "trace_plan",
    "udp_port_filter",
]
