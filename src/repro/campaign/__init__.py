"""repro.campaign — longitudinal measurement campaigns.

The paper measured one 2015 snapshot; the 2022 re-measurement (arXiv
2208.14523) showed how much the answers drift.  This package runs a
**campaign**: a schedule of recurring studies over a time-parameterised
scenario (:mod:`repro.scenario.timeline`), one hermetic study per
simulated year, checkpointed into an append-only on-disk archive that
survives the driver being killed at any point — resume converges on an
archive byte-identical to an uninterrupted run.

- :mod:`~repro.campaign.archive` — disk format: manifest, atomic
  checkpoint log, epoch stores, digests, crash-leftover cleanup
- :mod:`~repro.campaign.driver` — epoch execution, resume, the
  self-kill hook the campaign-smoke CI lane uses
- :mod:`~repro.campaign.report` — trend points, the Figure-6-style
  trend report, machine-readable status
- :mod:`~repro.campaign.watch` — the SLO watchdog: declarative rules
  over the trend, persisted to ``alerts.jsonl``
"""

from .archive import (
    ALERTS_NAME,
    CAMPAIGN_FORMAT,
    TREND_FORMAT,
    CampaignArchive,
    CampaignError,
    CampaignSpec,
    CheckpointRecord,
)
from .driver import KILL_ENV, CampaignDriver
from .report import campaign_status, render_trend_report, trend_point
from .watch import DEFAULT_RULES, SloRule, evaluate_rules, wall_time_regression

__all__ = [
    "ALERTS_NAME",
    "CAMPAIGN_FORMAT",
    "CampaignArchive",
    "CampaignDriver",
    "CampaignError",
    "CampaignSpec",
    "CheckpointRecord",
    "DEFAULT_RULES",
    "KILL_ENV",
    "SloRule",
    "TREND_FORMAT",
    "campaign_status",
    "evaluate_rules",
    "render_trend_report",
    "trend_point",
    "wall_time_regression",
]
