"""The on-disk campaign archive: manifest, checkpoints, epoch stores.

A campaign directory is an **append-only** archive of measurement
epochs::

    <dir>/
      campaign.json        manifest: format tag + spec + target epochs
      checkpoints.jsonl    one record per completed epoch, in order
      trend.json           delta-merged trend points (derived)
      report.txt           rendered trend report (derived)
      epochs/
        epoch-0000/        a full Study.save() archive per epoch
        epoch-0001/
        .epoch-0002.partial/   in-flight save (crash leftovers)

Durability protocol (the resume invariants, DESIGN.md §14):

1. an epoch's archive is saved into a hidden ``.epoch-NNNN.partial``
   directory, then published with one atomic ``os.replace`` rename;
2. only after the rename does its checkpoint record land in
   ``checkpoints.jsonl`` (rewritten atomically as a whole — the file
   is logically append-only but physically replaced, so a crash can
   never tear a line);
3. derived artefacts (``trend.json``, ``report.txt``) are rebuilt
   from the checkpoint records after each merge, also atomically.

A crash between any two steps leaves a state resume can classify
exactly: a ``.partial`` directory (discard, re-run), a published epoch
directory with no checkpoint (orphan: discard, re-run — the epoch is
a pure function of the spec, so the re-run is byte-identical), or a
checkpoint whose trend point has not merged yet (idempotent re-merge).
Because every step is atomic, an *unparseable* checkpoint line or a
digest mismatch is never crash fallout — it is genuine corruption, and
resume fails loudly (:class:`CampaignError`) instead of silently
re-running or mis-merging.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import shutil
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path

from ..faults.profiles import PROFILES
from ..ioutil import atomic_write_text
from ..scenario.timeline import (
    PAPER_YEAR,
    EpochDrift,
    Timeline,
    timeline_by_name,
)

#: Version tag rejecting foreign files, mirroring the other envelopes.
CAMPAIGN_FORMAT = "ecn-udp-campaign/1"

#: Version tag of the derived trend document.
TREND_FORMAT = "ecn-udp-campaign-trend/1"

MANIFEST_NAME = "campaign.json"
CHECKPOINTS_NAME = "checkpoints.jsonl"
TREND_NAME = "trend.json"
REPORT_NAME = "report.txt"
ALERTS_NAME = "alerts.jsonl"
EPOCHS_DIRNAME = "epochs"


class CampaignError(ValueError):
    """A campaign archive that cannot be used (missing/corrupt/foreign)."""


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that makes a campaign's epochs reproducible.

    Epoch ``N`` of a campaign is a pure function of ``(spec, N)``:
    the spec carries no runtime knobs (worker counts, progress sinks),
    only identity — which is why a resumed campaign converges on an
    archive byte-identical to an uninterrupted run.
    """

    scale: float = 0.1
    seed: int = 20150401
    start_year: float = PAPER_YEAR
    cadence_years: float = 1.0
    timeline: str = "fresh-look"
    pool_churn: bool = True
    chaos: str | None = None
    chaos_seed: int = 0
    quic: bool = False
    traceroutes: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1:
            raise CampaignError(f"scale must be in (0, 1]: {self.scale!r}")
        if self.cadence_years <= 0:
            raise CampaignError(
                f"cadence_years must be > 0: {self.cadence_years!r}"
            )
        try:
            timeline_by_name(self.timeline)
        except ValueError as exc:
            raise CampaignError(str(exc)) from exc
        if self.chaos is not None and self.chaos not in PROFILES:
            known = ", ".join(sorted(PROFILES))
            raise CampaignError(
                f"unknown chaos profile {self.chaos!r}; one of: {known}"
            )

    @property
    def timeline_obj(self) -> Timeline:
        return timeline_by_name(self.timeline)

    def year_for_epoch(self, epoch: int) -> float:
        return self.start_year + epoch * self.cadence_years

    def drift_for_epoch(self, epoch: int) -> EpochDrift:
        """The drift epoch ``N`` runs under — pure in ``(spec, N)``."""
        return self.timeline_obj.drift_for_epoch(
            seed=self.seed,
            epoch=epoch,
            start_year=self.start_year,
            cadence_years=self.cadence_years,
            pool_churn=self.pool_churn,
        )

    def to_dict(self) -> dict:
        payload: dict = {
            "scale": self.scale,
            "seed": self.seed,
            "start_year": self.start_year,
            "cadence_years": self.cadence_years,
            "timeline": self.timeline,
            "pool_churn": self.pool_churn,
        }
        if self.chaos is not None:
            payload["chaos"] = self.chaos
            payload["chaos_seed"] = self.chaos_seed
        if self.quic:
            payload["quic"] = True
        if not self.traceroutes:
            payload["traceroutes"] = False
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CampaignSpec":
        if not isinstance(payload, Mapping):
            raise CampaignError(f"campaign spec must be an object: {payload!r}")
        try:
            return cls(
                scale=float(payload.get("scale", 0.1)),
                seed=int(payload.get("seed", 20150401)),
                start_year=float(payload.get("start_year", PAPER_YEAR)),
                cadence_years=float(payload.get("cadence_years", 1.0)),
                timeline=str(payload.get("timeline", "fresh-look")),
                pool_churn=bool(payload.get("pool_churn", True)),
                chaos=payload.get("chaos"),
                chaos_seed=int(payload.get("chaos_seed", 0)),
                quic=bool(payload.get("quic", False)),
                traceroutes=bool(payload.get("traceroutes", True)),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, CampaignError):
                raise
            raise CampaignError(f"unusable campaign spec: {exc}") from exc


@dataclass(frozen=True)
class CheckpointRecord:
    """One completed epoch, as recorded in ``checkpoints.jsonl``.

    Deliberately free of wall-clock timestamps: the record is a pure
    function of ``(spec, epoch)`` plus the (deterministic) archive
    digest, so interrupted and uninterrupted campaigns write the same
    bytes.
    """

    epoch: int
    year: float
    drift: EpochDrift
    digest: str

    def to_json_line(self) -> str:
        return json.dumps(
            {
                "epoch": self.epoch,
                "year": self.year,
                "drift": self.drift.to_dict(),
                "digest": self.digest,
            }
        )

    @classmethod
    def from_json_line(cls, line: str, lineno: int) -> "CheckpointRecord":
        try:
            payload = json.loads(line)
        except ValueError as exc:
            raise CampaignError(
                f"corrupt checkpoint record on line {lineno}: {exc} "
                f"(the checkpoint file is written atomically, so this is "
                f"external damage, not crash fallout — restore the archive "
                f"from backup or delete it and re-run the campaign)"
            ) from exc
        if (
            not isinstance(payload, dict)
            or not isinstance(payload.get("epoch"), int)
            or not isinstance(payload.get("digest"), str)
            or "drift" not in payload
        ):
            raise CampaignError(
                f"corrupt checkpoint record on line {lineno}: "
                f"not an epoch record: {line[:120]!r}"
            )
        try:
            drift = EpochDrift.from_dict(payload["drift"])
        except ValueError as exc:
            raise CampaignError(
                f"corrupt checkpoint record on line {lineno}: {exc}"
            ) from exc
        return cls(
            epoch=payload["epoch"],
            year=float(payload.get("year", drift.year)),
            drift=drift,
            digest=payload["digest"],
        )


def _digest_directory(directory: Path) -> str:
    """SHA-256 over an archive directory's relative paths and contents.

    The digest covers every regular file, sorted by POSIX-style
    relative path, so it is independent of filesystem iteration order —
    two byte-identical epoch archives always digest identically.
    """
    outer = hashlib.sha256()
    for path in sorted(
        (p for p in directory.rglob("*") if p.is_file()),
        key=lambda p: p.relative_to(directory).as_posix(),
    ):
        inner = hashlib.sha256(path.read_bytes()).hexdigest()
        outer.update(
            f"{path.relative_to(directory).as_posix()}\n{inner}\n".encode()
        )
    return outer.hexdigest()


class CampaignArchive:
    """Filesystem face of one campaign directory (no execution logic)."""

    def __init__(self, directory: str | Path, spec: CampaignSpec, target_epochs: int) -> None:
        self.directory = Path(directory)
        self.spec = spec
        self.target_epochs = target_epochs

    # ------------------------------------------------------------------
    # Creation / loading
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, directory: str | Path, spec: CampaignSpec, target_epochs: int
    ) -> "CampaignArchive":
        directory = Path(directory)
        if target_epochs < 1:
            raise CampaignError(f"target epochs must be >= 1: {target_epochs!r}")
        if (directory / MANIFEST_NAME).exists():
            raise CampaignError(
                f"campaign archive already exists at {directory}/ — "
                f"resume it instead of re-creating it"
            )
        directory.mkdir(parents=True, exist_ok=True)
        archive = cls(directory, spec, target_epochs)
        archive._write_manifest()
        return archive

    @classmethod
    def load(cls, directory: str | Path) -> "CampaignArchive":
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.is_file():
            raise CampaignError(f"no campaign archive at {directory}/ (missing {MANIFEST_NAME})")
        try:
            document = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise CampaignError(f"unreadable {manifest_path}: {exc}") from exc
        if not isinstance(document, dict) or document.get("format") != CAMPAIGN_FORMAT:
            raise CampaignError(
                f"{manifest_path} is not a campaign manifest (format "
                f"{document.get('format') if isinstance(document, dict) else None!r} "
                f"!= {CAMPAIGN_FORMAT!r})"
            )
        spec = CampaignSpec.from_dict(document.get("spec", {}))
        target = document.get("target_epochs")
        if not isinstance(target, int) or target < 1:
            raise CampaignError(f"{manifest_path}: bad target_epochs {target!r}")
        return cls(directory, spec, target)

    def _write_manifest(self) -> None:
        document = {
            "format": CAMPAIGN_FORMAT,
            "spec": self.spec.to_dict(),
            "target_epochs": self.target_epochs,
        }
        atomic_write_text(
            self.directory / MANIFEST_NAME, json.dumps(document, indent=2)
        )

    def extend_target(self, target_epochs: int) -> None:
        """Raise the epoch target (recurring submissions extend it)."""
        if target_epochs < 1:
            raise CampaignError(f"target epochs must be >= 1: {target_epochs!r}")
        if target_epochs > self.target_epochs:
            self.target_epochs = target_epochs
            self._write_manifest()

    # ------------------------------------------------------------------
    # Epoch directories
    # ------------------------------------------------------------------
    def epoch_name(self, epoch: int) -> str:
        return f"epoch-{epoch:04d}"

    def epoch_dir(self, epoch: int) -> Path:
        return self.directory / EPOCHS_DIRNAME / self.epoch_name(epoch)

    def partial_dir(self, epoch: int) -> Path:
        return self.directory / EPOCHS_DIRNAME / f".{self.epoch_name(epoch)}.partial"

    def digest_epoch(self, epoch: int) -> str:
        return _digest_directory(self.epoch_dir(epoch))

    def epoch_dirs(self) -> list[Path]:
        """Published epoch directories, sorted by epoch index."""
        root = self.directory / EPOCHS_DIRNAME
        if not root.is_dir():
            return []
        return sorted(
            (p for p in root.iterdir() if p.is_dir() and p.name.startswith("epoch-")),
            key=lambda p: p.name,
        )

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    @property
    def checkpoints_path(self) -> Path:
        return self.directory / CHECKPOINTS_NAME

    def checkpoints(self) -> list[CheckpointRecord]:
        """Parse the checkpoint log; loud on any corruption.

        Records must be exactly epochs ``0..n-1`` in order — the file
        is only ever appended to under the durability protocol, so a
        gap, duplicate, or reordering is corruption, not crash
        fallout.
        """
        path = self.checkpoints_path
        if not path.exists():
            return []
        records: list[CheckpointRecord] = []
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if not line.strip():
                raise CampaignError(
                    f"corrupt checkpoint record on line {lineno}: blank line"
                )
            records.append(CheckpointRecord.from_json_line(line, lineno))
        for index, record in enumerate(records):
            if record.epoch != index:
                raise CampaignError(
                    f"checkpoint log out of order: line {index + 1} records "
                    f"epoch {record.epoch}, expected {index} — the archive "
                    f"has been externally modified"
                )
        return records

    def record_epoch(self, record: CheckpointRecord) -> None:
        """Append one checkpoint record (atomic whole-file rewrite).

        The file is small (one line per epoch), so logical append via
        atomic replace costs nothing and guarantees a crash can never
        leave a torn line behind.
        """
        existing = (
            self.checkpoints_path.read_text() if self.checkpoints_path.exists() else ""
        )
        atomic_write_text(
            self.checkpoints_path, existing + record.to_json_line() + "\n"
        )

    # ------------------------------------------------------------------
    # Consistency: verification and crash cleanup
    # ------------------------------------------------------------------
    def verify(self, records: list[CheckpointRecord] | None = None) -> None:
        """Check every recorded epoch's archive against its digest."""
        if records is None:
            records = self.checkpoints()
        for record in records:
            directory = self.epoch_dir(record.epoch)
            if not directory.is_dir():
                raise CampaignError(
                    f"checkpoint records epoch {record.epoch} but "
                    f"{directory}/ is missing — the archive has been "
                    f"externally modified"
                )
            digest = self.digest_epoch(record.epoch)
            if digest != record.digest:
                raise CampaignError(
                    f"epoch {record.epoch} archive digest mismatch "
                    f"({digest[:12]}... != recorded {record.digest[:12]}...) — "
                    f"the epoch directory has been externally modified; "
                    f"refusing to merge corrupt data"
                )

    def clean_interrupted(self, records: list[CheckpointRecord] | None = None) -> list[str]:
        """Remove crash leftovers; returns what was discarded.

        ``.partial`` directories are unpublished saves; a published
        epoch directory beyond the last checkpoint is an orphan (the
        driver died between the rename and the checkpoint write).
        Both are discarded — their epochs re-run deterministically, so
        the final archive is unaffected.
        """
        if records is None:
            records = self.checkpoints()
        discarded: list[str] = []
        root = self.directory / EPOCHS_DIRNAME
        if not root.is_dir():
            return discarded
        completed = len(records)
        for path in sorted(root.iterdir()):
            if not path.is_dir():
                continue
            if path.name.startswith(".") and path.name.endswith(".partial"):
                shutil.rmtree(path)
                discarded.append(path.name)
            elif path.name.startswith("epoch-"):
                try:
                    epoch = int(path.name.split("-", 1)[1])
                except ValueError:
                    continue
                if epoch >= completed:
                    shutil.rmtree(path)
                    discarded.append(path.name)
        return discarded

    # ------------------------------------------------------------------
    # Derived artefacts: the delta-merged trend
    # ------------------------------------------------------------------
    @property
    def trend_path(self) -> Path:
        return self.directory / TREND_NAME

    @property
    def report_path(self) -> Path:
        return self.directory / REPORT_NAME

    def trend_points(self) -> list[dict]:
        """The merged trend points, oldest epoch first."""
        path = self.trend_path
        if not path.exists():
            return []
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CampaignError(f"unreadable {path}: {exc}") from exc
        if not isinstance(document, dict) or document.get("format") != TREND_FORMAT:
            raise CampaignError(
                f"{path} is not a campaign trend document"
            )
        points = document.get("points", [])
        if not isinstance(points, list):
            raise CampaignError(f"{path}: points must be a list")
        return points

    def write_trend_points(self, points: list[dict]) -> None:
        document = {
            "format": TREND_FORMAT,
            "points": sorted(points, key=lambda p: p["epoch"]),
        }
        atomic_write_text(self.trend_path, json.dumps(document, indent=2))

    # ------------------------------------------------------------------
    # Derived artefacts: watchdog alerts
    # ------------------------------------------------------------------
    @property
    def alerts_path(self) -> Path:
        return self.directory / ALERTS_NAME

    def alerts(self) -> list[dict]:
        """The persisted SLO breaches, oldest epoch first."""
        path = self.alerts_path
        if not path.exists():
            return []
        from ..obs import parse_events_jsonl

        try:
            return parse_events_jsonl(path.read_text())
        except (OSError, ValueError) as exc:
            raise CampaignError(f"unreadable {path}: {exc}") from exc

    def refresh_alerts(self) -> list[dict]:
        """Re-evaluate the SLO rules and rewrite ``alerts.jsonl``.

        Like the trend and the report, the alert file is a derived
        artefact rebuilt from scratch: a pure function of the trend
        points and the spec's timeline, written atomically, so
        interrupted and uninterrupted campaigns converge on identical
        bytes.  The file exists (possibly empty) whenever at least one
        evaluation ran — "no alerts" and "never evaluated" stay
        distinguishable.
        """
        from ..obs import render_events_jsonl
        from .watch import evaluate_rules

        alerts = evaluate_rules(self.trend_points(), self.spec.timeline_obj)
        atomic_write_text(self.alerts_path, render_events_jsonl(alerts))
        return alerts

    def merge_epoch(self, record: CheckpointRecord) -> bool:
        """Delta-merge one recorded epoch into ``trend.json``.

        Idempotent: re-merging an epoch that already has a trend point
        is a no-op (returns ``False``), so replays after a crash
        between checkpoint and merge cannot double-count.
        """
        from .report import trend_point  # local: report imports archive

        points = self.trend_points()
        if any(p.get("epoch") == record.epoch for p in points):
            return False
        summary_path = self.epoch_dir(record.epoch) / "summary.json"
        try:
            summary = json.loads(summary_path.read_text())
        except (OSError, ValueError) as exc:
            raise CampaignError(
                f"cannot merge epoch {record.epoch}: unreadable "
                f"{summary_path}: {exc}"
            ) from exc
        points.append(trend_point(record, summary))
        self.write_trend_points(points)
        return True
