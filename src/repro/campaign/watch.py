"""Campaign SLO watchdog: declarative rules over the merged trend.

After every epoch's delta-merge the driver re-evaluates a small set of
**SLO rules** against ``trend.json`` and persists the breaches to
``alerts.jsonl`` in the campaign archive.  The watchdog is how a
long-running campaign notices that its measurements have left the
expected corridor — the 2015→2022 bleaching collapse shows up as a
``bleaching-trend`` alert the moment the drifted epochs pull the
§4.2 strip-event count away from the 2015 baseline.

Determinism contract: every rule here is a **pure function of the
trend points and the campaign spec**.  Alerts carry no timestamps, and
``alerts.jsonl`` is rebuilt from scratch on every evaluation, so an
interrupted-and-resumed campaign converges on a byte-identical alert
file — the same discipline as ``trend.json`` and ``report.txt``.

Wall-clock concerns (epoch wall-time regression) deliberately live
outside this file's output: :func:`wall_time_regression` feeds the
driver's **live** event log only, because wall timings can never join
an artefact that must be byte-stable across reruns.

Rule modes:

* ``baseline-delta`` — the metric at epoch ``N`` has moved more than
  ``threshold_pp`` percentage points from epoch 0's value.  This is
  the trend detector: slow drift accumulates until it crosses.
* ``baseline-ratio`` — the metric at epoch ``N`` has moved more than
  ``threshold_pp`` *percent relative to* epoch 0's value.  The
  scale-robust variant for count-like metrics (``strip_events``) and
  small percentages, where a fixed pp threshold would be meaningless
  at scale 0.02 and trigger on noise at scale 0.1.  A zero baseline
  makes relative change undefined, so those series are skipped.
* ``step-delta`` — the metric jumped more than ``threshold_pp``
  between two *consecutive* epochs: a step change, not drift.
* ``timeline-envelope`` — the measured value strayed more than
  ``threshold_pp`` from what the campaign's own timeline model
  predicts for that year (the expectation is
  ``Timeline.drift_at(year)``).  This is the self-consistency check:
  the synthetic Internet drifts by construction, so a measurement
  outside the model's corridor means the measurement pipeline — not
  the world — changed behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..scenario.timeline import Timeline

#: Alert severity carried by every watchdog breach (matches
#: :data:`repro.obs.events.LEVELS`).
ALERT_LEVEL = "alert"


@dataclass(frozen=True)
class SloRule:
    """One declarative SLO rule over a campaign's trend points.

    ``metric`` names a trend-point field (``mark_survival_pct``,
    ``strip_events``, ``negotiation_pct``, ``udp_blackhole_pct``);
    ``mode`` picks the comparison (see module docstring);
    ``threshold_pp`` is the breach threshold — percentage points for
    the delta/envelope modes, percent-of-baseline for
    ``baseline-ratio``; ``direction`` restricts which way the
    excursion must point (``"drop"``, ``"rise"``, or ``"any"``).
    """

    name: str
    metric: str
    mode: str
    threshold_pp: float
    direction: str = "any"

    def __post_init__(self) -> None:
        if self.mode not in (
            "baseline-delta",
            "baseline-ratio",
            "step-delta",
            "timeline-envelope",
        ):
            raise ValueError(f"unknown SLO rule mode {self.mode!r}")
        if self.direction not in ("drop", "rise", "any"):
            raise ValueError(f"unknown SLO rule direction {self.direction!r}")
        if self.threshold_pp <= 0:
            raise ValueError(f"threshold_pp must be > 0: {self.threshold_pp!r}")

    def breached(self, delta: float) -> bool:
        """Does a signed excursion of ``delta`` pp breach this rule?"""
        if self.direction == "drop":
            return delta < -self.threshold_pp
        if self.direction == "rise":
            return delta > self.threshold_pp
        return abs(delta) > self.threshold_pp


#: Which timeline series models each trend metric, as a percentage.
#: ``mark_survival_pct`` tracks the bleacher population (fewer
#: bleaching routers => more marks survive), so its envelope is the
#: *complement* of the bleacher scale against the 2015 anchor.
_ENVELOPE_METRICS = ("negotiation_pct",)


def _expected_pct(timeline: Timeline, metric: str, year: float) -> float | None:
    """The timeline model's prediction for ``metric`` at ``year``."""
    if metric == "negotiation_pct":
        return timeline.drift_at(year).negotiate_rate * 100.0
    return None


#: The default rule set the driver evaluates.  Thresholds are sized
#: empirically for the repo's reference scales (0.02–0.1), using the
#: frozen/churn-off timeline as the zero-noise control:
#:
#: * ``strip_events`` is the direct §4.2 bleaching count and the only
#:   metric that tracks the fresh-look collapse (bleacher population
#:   1.0 -> 0.12 over 2015–2022) at *every* reference scale — the
#:   observed drop is 27 % at scale 0.02 and 55 % at 0.05, so a 25 %
#:   relative threshold fires on the collapse at both.
#: * ``mark_survival_pct`` barely moves in absolute terms at small
#:   scales (the bleacher population is a sliver of all hops), so it
#:   only carries the *step* rule for catastrophic jumps.
#: * ``udp_blackhole_pct`` halves under fresh-look (blackhole scale
#:   1.0 -> 0.45); a 30 % relative threshold tracks that, where a
#:   fixed pp threshold could never fit both 5 % (scale 0.02) and
#:   2 % (scale 0.05) baselines.
DEFAULT_RULES: tuple[SloRule, ...] = (
    SloRule(
        name="bleaching-trend",
        metric="strip_events",
        mode="baseline-ratio",
        threshold_pp=25.0,
    ),
    SloRule(
        name="bleaching-step",
        metric="mark_survival_pct",
        mode="step-delta",
        threshold_pp=12.0,
    ),
    SloRule(
        name="blackhole-trend",
        metric="udp_blackhole_pct",
        mode="baseline-ratio",
        threshold_pp=30.0,
    ),
    SloRule(
        name="negotiation-envelope",
        metric="negotiation_pct",
        mode="timeline-envelope",
        threshold_pp=15.0,
    ),
)


def _alert(
    rule: SloRule, point: Mapping, value: float, reference: float, delta: float
) -> dict:
    """One breach, as a timestamp-free alert document."""
    return {
        "level": ALERT_LEVEL,
        "kind": "slo-breach",
        "rule": rule.name,
        "mode": rule.mode,
        "metric": rule.metric,
        "epoch": point["epoch"],
        "year": point["year"],
        "value": round(value, 6),
        "reference": round(reference, 6),
        "delta_pp": round(delta, 6),
        "threshold_pp": rule.threshold_pp,
    }


def evaluate_rules(
    points: Sequence[Mapping],
    timeline: Timeline,
    rules: Iterable[SloRule] = DEFAULT_RULES,
) -> list[dict]:
    """Evaluate every rule over the full trend; returns all breaches.

    Pure and total: the result is a function of ``(points, timeline,
    rules)`` alone, every breached ``(rule, epoch)`` pair appears
    exactly once, and the list is ordered by ``(epoch, rule name)`` —
    so rebuilding ``alerts.jsonl`` from it is idempotent.
    """
    ordered = sorted(points, key=lambda p: p["epoch"])
    alerts: list[dict] = []
    for rule in rules:
        series = [
            (p, float(p.get(rule.metric, 0.0)))
            for p in ordered
            if rule.metric in p
        ]
        if not series:
            continue
        if rule.mode == "baseline-delta":
            _, baseline = series[0]
            for point, value in series[1:]:
                delta = value - baseline
                if rule.breached(delta):
                    alerts.append(_alert(rule, point, value, baseline, delta))
        elif rule.mode == "baseline-ratio":
            _, baseline = series[0]
            if baseline == 0:
                continue
            for point, value in series[1:]:
                delta = (value - baseline) / baseline * 100.0
                if rule.breached(delta):
                    alerts.append(_alert(rule, point, value, baseline, delta))
        elif rule.mode == "step-delta":
            for (_, previous), (point, value) in zip(series, series[1:]):
                delta = value - previous
                if rule.breached(delta):
                    alerts.append(_alert(rule, point, value, previous, delta))
        else:  # timeline-envelope
            for point, value in series:
                expected = _expected_pct(timeline, rule.metric, float(point["year"]))
                if expected is None:
                    continue
                delta = value - expected
                if rule.breached(delta):
                    alerts.append(_alert(rule, point, value, expected, delta))
    alerts.sort(key=lambda a: (a["epoch"], a["rule"]))
    return alerts


def wall_time_regression(
    durations: Sequence[tuple[int, float]], factor: float = 3.0, floor: float = 1.0
) -> list[dict]:
    """Flag epochs whose wall time regressed vs the preceding median.

    ``durations`` is ``(epoch, wall_seconds)`` pairs in execution
    order.  An epoch breaches when it ran ``factor``× slower than the
    median of the epochs before it (and above ``floor`` seconds, so
    trivially fast campaigns never alert on scheduler jitter).

    Wall clocks are not deterministic, so these breaches go to the
    driver's **live** event log only — never to ``alerts.jsonl``.
    """
    breaches: list[dict] = []
    seen: list[float] = []
    for epoch, elapsed in durations:
        if seen:
            ranked = sorted(seen)
            median = ranked[len(ranked) // 2]
            if elapsed > floor and median > 0 and elapsed > factor * median:
                breaches.append(
                    {
                        "level": ALERT_LEVEL,
                        "kind": "slo-breach",
                        "rule": "epoch-wall-time",
                        "epoch": epoch,
                        "wall_seconds": round(elapsed, 3),
                        "median_seconds": round(median, 3),
                        "factor": round(elapsed / median, 3),
                        "threshold_factor": factor,
                    }
                )
        seen.append(elapsed)
    return breaches
