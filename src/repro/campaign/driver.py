"""The campaign driver: run epochs, checkpoint, survive being killed.

The driver owns *execution*; :mod:`repro.campaign.archive` owns the
disk format.  One epoch advances through four atomic steps::

    run study --> save into .epoch-NNNN.partial/ --> os.replace to
    epoch-NNNN/ --> append checkpoint record --> merge trend point

Kill the process between any two steps and :meth:`CampaignDriver.resume`
classifies the leftovers exactly (see ``clean_interrupted``), discards
what never reached a checkpoint, and re-runs it.  Because epoch ``N``
is a pure function of ``(spec, N)`` — hermetic epochs underneath, the
drift and world seed derived from the campaign seed — the re-run
produces byte-identical artefacts, so an interrupted-and-resumed
campaign's final archive equals an uninterrupted run's, byte for byte.
The campaign-smoke CI lane (``benchmarks/check_campaign_resume.py``)
enforces exactly that with a SIGKILL mid-epoch.

For crash testing, ``ECNUDP_CAMPAIGN_KILL="<epoch>:<phase>"`` makes
the driver SIGKILL *itself* at a named point (``before-save``,
``partial``, ``renamed``, ``checkpointed``) — a real process death,
not an exception a ``finally`` could tidy up after.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

from ..core.measurement import ProgressFn
from ..study import Study
from .archive import CampaignArchive, CampaignError, CampaignSpec, CheckpointRecord
from .report import render_trend_report
from .watch import wall_time_regression

#: Env var arming the self-kill hook: ``"<epoch>:<phase>"``.
KILL_ENV = "ECNUDP_CAMPAIGN_KILL"

KILL_PHASES = ("before-save", "partial", "renamed", "checkpointed")


def _maybe_kill(epoch: int, phase: str) -> None:
    """SIGKILL ourselves if the crash hook targets this point."""
    spec = os.environ.get(KILL_ENV)
    if not spec:
        return
    try:
        kill_epoch, kill_phase = spec.split(":", 1)
        if int(kill_epoch) == epoch and kill_phase == phase:
            os.kill(os.getpid(), signal.SIGKILL)
    except ValueError:
        raise CampaignError(
            f"bad {KILL_ENV}={spec!r}: expected '<epoch>:<phase>' with "
            f"phase one of {', '.join(KILL_PHASES)}"
        ) from None


class CampaignDriver:
    """Runs a campaign's remaining epochs against its archive."""

    def __init__(
        self,
        archive: CampaignArchive,
        workers: int = 0,
        pool=None,
        progress: ProgressFn | None = None,
        events=None,
    ) -> None:
        self.archive = archive
        self.workers = workers
        self.pool = pool
        self.progress = progress
        #: Live event log (or the server's run-scoped view) the driver
        #: narrates epoch lifecycle and SLO breaches into.  Wall-clock
        #: side only — the deterministic alert record is
        #: ``alerts.jsonl``, written by :meth:`CampaignArchive.refresh_alerts`.
        self.events = events
        #: ``(rule, epoch)`` pairs already narrated, so re-merges do
        #: not re-announce old breaches into the live log.
        self._alerted: set[tuple[str, int]] = set()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str | Path,
        spec: CampaignSpec,
        target_epochs: int,
        workers: int = 0,
        pool=None,
        progress: ProgressFn | None = None,
        events=None,
    ) -> "CampaignDriver":
        archive = CampaignArchive.create(directory, spec, target_epochs)
        return cls(
            archive, workers=workers, pool=pool, progress=progress, events=events
        )

    @classmethod
    def resume(
        cls,
        directory: str | Path,
        target_epochs: int | None = None,
        workers: int = 0,
        pool=None,
        progress: ProgressFn | None = None,
        events=None,
    ) -> "CampaignDriver":
        """Reopen an archive, validate it, and clear crash leftovers.

        Validation is strict: every checkpointed epoch's archive must
        match its recorded digest, and the checkpoint log must parse
        and be contiguous — corruption raises :class:`CampaignError`
        instead of silently re-running or mis-merging.  Crash leftovers
        (``.partial`` saves, published-but-uncheckpointed epoch
        directories) are discarded; their epochs re-run
        deterministically.
        """
        archive = CampaignArchive.load(directory)
        records = archive.checkpoints()
        try:
            archive.verify(records)
        except CampaignError as exc:
            if events:
                events.emit("campaign-digest-mismatch", "alert", error=str(exc))
            raise
        discarded = archive.clean_interrupted(records)
        if target_epochs is not None:
            archive.extend_target(target_epochs)
        if events:
            events.emit(
                "campaign-resume",
                "info",
                campaign=archive.directory.name,
                completed=len(records),
                target=archive.target_epochs,
                discarded=discarded,
            )
        return cls(
            archive, workers=workers, pool=pool, progress=progress, events=events
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Run every remaining epoch; returns epochs executed.

        Finishes with a full re-merge and report regeneration, which
        also absorbs the one crash window the epoch loop cannot see:
        a checkpoint written but its trend point not merged.  Merging
        is idempotent, so the absorption is a no-op on clean runs.
        """
        executed = 0
        records = self.archive.checkpoints()
        durations: list[tuple[int, float]] = []
        for epoch in range(len(records), self.archive.target_epochs):
            started = time.perf_counter()
            records.append(self._run_epoch(epoch))
            durations.append((epoch, time.perf_counter() - started))
            executed += 1
        for record in records:
            self.archive.merge_epoch(record)
        self._refresh_watchdog()
        if self.events:
            # Wall-time regressions are live-log-only: wall clocks can
            # never join alerts.jsonl's byte-identity contract.
            for breach in wall_time_regression(durations):
                self.events.emit(
                    "slo-breach",
                    "alert",
                    **{k: v for k, v in breach.items() if k not in ("level", "kind")},
                )
        report = render_trend_report(self.archive)
        from ..ioutil import atomic_write_text

        atomic_write_text(self.archive.report_path, report)
        return executed

    def _refresh_watchdog(self) -> list[dict]:
        """Rebuild ``alerts.jsonl``; narrate new breaches to the live log."""
        alerts = self.archive.refresh_alerts()
        if self.events:
            for alert in alerts:
                key = (alert["rule"], alert["epoch"])
                if key in self._alerted:
                    continue
                self._alerted.add(key)
                self.events.emit(
                    "slo-breach",
                    "alert",
                    **{k: v for k, v in alert.items() if k not in ("level", "kind")},
                )
        return alerts

    def _run_epoch(self, epoch: int) -> CheckpointRecord:
        archive = self.archive
        drift = archive.spec.drift_for_epoch(epoch)
        partial = archive.partial_dir(epoch)
        final = archive.epoch_dir(epoch)
        if partial.exists():
            import shutil

            shutil.rmtree(partial)
        _maybe_kill(epoch, "before-save")
        self._materialise_epoch(epoch, drift, partial)
        _maybe_kill(epoch, "partial")
        final.parent.mkdir(parents=True, exist_ok=True)
        os.replace(partial, final)
        _maybe_kill(epoch, "renamed")
        record = CheckpointRecord(
            epoch=epoch,
            year=drift.year,
            drift=drift,
            digest=archive.digest_epoch(epoch),
        )
        archive.record_epoch(record)
        _maybe_kill(epoch, "checkpointed")
        if self.events:
            self.events.emit(
                "epoch-publish",
                "info",
                campaign=archive.directory.name,
                epoch=epoch,
                year=round(drift.year, 3),
            )
        archive.merge_epoch(record)
        self._refresh_watchdog()
        return record

    def _materialise_epoch(self, epoch: int, drift, directory: Path) -> None:
        """Run epoch ``N``'s study and save its archive into ``directory``.

        Separated out so tests can substitute a fast deterministic
        fake while exercising the real checkpoint/rename/merge
        machinery around it.  ``collect_metrics`` stays off: telemetry
        carries wall-clock timings, which would break byte-identity
        between interrupted and uninterrupted campaigns.
        """
        spec = self.archive.spec
        study = Study.run(
            scale=spec.scale,
            seed=spec.seed,
            traceroutes=spec.traceroutes,
            workers=self.workers,
            progress=self.progress,
            collect_metrics=False,
            faults=spec.chaos,
            chaos_seed=spec.chaos_seed,
            pool=self.pool,
            quic=spec.quic,
            drift=drift,
        )
        study.save(directory)
