"""Trend extraction and rendering for longitudinal campaigns.

A campaign generalises the paper's Figure 6 from one curve (negotiation
over 2000-2015, from external measurements) to the full drift picture
the synthetic Internet can re-measure per simulated year: mark
survival, bleach vs blackhole shares, negotiation rate, reachability.
Each epoch contributes one **trend point** distilled from its
``summary.json``; :func:`render_trend_report` lays the points out as a
per-year table plus an overlaid ASCII time series in the style of the
Figure 6 renderer.
"""

from __future__ import annotations

from ..reporting.figures import time_series
from ..stats.timeseries import linear_trend
from .archive import CampaignArchive, CheckpointRecord
from .watch import evaluate_rules


def trend_point(record: CheckpointRecord, summary: dict) -> dict:
    """Distill one epoch's summary into a trend point.

    Pure in its inputs — the trend file stays byte-identical across
    interrupted and uninterrupted runs because nothing here looks at a
    clock or the filesystem.
    """
    s41 = summary.get("section_4_1", {})
    s42 = summary.get("section_4_2", {})
    s43 = summary.get("section_4_3", {})
    return {
        "epoch": record.epoch,
        "year": round(record.year, 3),
        "mark_survival_pct": s42.get("pct_hops_passing", 0.0),
        "strip_events": s42.get("strip_events", 0),
        "negotiation_pct": s43.get("pct_negotiated", 0.0),
        # "Blackhole share": the average fraction of plain-reachable
        # servers that ECT probes could NOT reach (§4.1's complement).
        "udp_blackhole_pct": round(
            100.0 - s41.get("avg_pct_ect_given_plain", 100.0), 6
        ),
        "servers_reached": s41.get("avg_udp_plain_reachable", 0.0),
    }


def render_trend_report(archive: CampaignArchive) -> str:
    """Render the campaign's trend as a text report (Figure 6 style)."""
    points = archive.trend_points()
    spec = archive.spec
    # No directory name in the header: the report participates in the
    # byte-identity contract, and archives must survive being renamed
    # or relocated without their derived artefacts changing.
    lines = [
        f"Longitudinal ECN campaign ({spec.timeline} timeline)",
        "=" * 60,
        (
            f"timeline={spec.timeline}  scale={spec.scale}  seed={spec.seed}  "
            f"cadence={spec.cadence_years}y  pool_churn={'on' if spec.pool_churn else 'off'}"
        ),
        f"epochs merged: {len(points)} / target {archive.target_epochs}"
        + (f"  chaos={spec.chaos}" if spec.chaos else ""),
        "",
    ]
    if not points:
        lines.append("(no epochs merged yet)")
        return "\n".join(lines) + "\n"

    header = (
        f"{'year':>8}  {'epoch':>5}  {'mark-survival%':>14}  "
        f"{'strips':>6}  {'negotiation%':>12}  {'ect-blackhole%':>14}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for p in points:
        lines.append(
            f"{p['year']:>8.2f}  {p['epoch']:>5d}  {p['mark_survival_pct']:>14.2f}  "
            f"{p['strip_events']:>6d}  {p['negotiation_pct']:>12.2f}  "
            f"{p['udp_blackhole_pct']:>14.2f}"
        )

    lines.append("")
    lines.append("Trend (M = mark survival %, N = negotiation %):")
    chart_points = [
        (p["year"], p["mark_survival_pct"], "mark") for p in points
    ] + [(p["year"], p["negotiation_pct"], "negotiation") for p in points]
    lines.append(time_series(chart_points))

    if len(points) >= 2:
        years = [p["year"] for p in points]
        mark_slope, _ = linear_trend(years, [p["mark_survival_pct"] for p in points])
        neg_slope, _ = linear_trend(years, [p["negotiation_pct"] for p in points])
        hole_slope, _ = linear_trend(years, [p["udp_blackhole_pct"] for p in points])
        lines.append("")
        lines.append(
            f"least-squares drift per simulated year: "
            f"mark survival {mark_slope:+.2f} pp, "
            f"negotiation {neg_slope:+.2f} pp, "
            f"ECT blackholing {hole_slope:+.2f} pp"
        )

    # Recomputed, not read from alerts.jsonl: the report is a pure
    # function of the trend points, and both artefacts derive from the
    # same rule evaluation, so they can never disagree.
    alerts = evaluate_rules(points, spec.timeline_obj)
    if alerts:
        lines.append("")
        lines.append(f"SLO watchdog: {len(alerts)} breach(es)")
        for alert in alerts:
            # baseline-ratio deltas are percent-of-baseline, the other
            # modes percentage points.
            unit = "%" if alert["mode"] == "baseline-ratio" else " pp"
            lines.append(
                f"  epoch {alert['epoch']:>3d} ({alert['year']:.2f})  "
                f"{alert['rule']}: {alert['metric']} {alert['value']:.2f} "
                f"vs {alert['reference']:.2f} "
                f"(delta {alert['delta_pp']:+.2f}{unit}, "
                f"threshold {alert['threshold_pp']:g}{unit})"
            )
    return "\n".join(lines) + "\n"


def campaign_status(archive: CampaignArchive) -> dict:
    """Machine-readable campaign state for ``campaign status --json``."""
    records = archive.checkpoints()
    merged = {p.get("epoch") for p in archive.trend_points()} if (
        archive.trend_path.exists()
    ) else set()
    alerts = archive.alerts() if archive.alerts_path.exists() else []
    by_rule: dict[str, int] = {}
    for alert in alerts:
        rule = alert.get("rule", "?")
        by_rule[rule] = by_rule.get(rule, 0) + 1
    return {
        "directory": str(archive.directory),
        "spec": archive.spec.to_dict(),
        "target_epochs": archive.target_epochs,
        "completed_epochs": len(records),
        "merged_epochs": len(merged),
        "complete": len(records) >= archive.target_epochs,
        "next_epoch": len(records) if len(records) < archive.target_epochs else None,
        "years": [round(r.year, 3) for r in records],
        "alerts": len(alerts),
        "alerts_by_rule": {rule: by_rule[rule] for rule in sorted(by_rule)},
    }
