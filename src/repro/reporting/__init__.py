"""Text rendering and machine-readable export of study results."""

from .export import export_figure_data, export_summary_json, export_traces_csv
from .figures import (
    bar_chart,
    per_trace_bars,
    spike_plot,
    time_series,
    traceroute_tree,
    world_map,
)
from .report import (
    full_report,
    render_figure1,
    render_regional,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_quic_table,
    render_table1,
    render_table2,
)
from .tables import render_table

__all__ = [
    "bar_chart",
    "export_figure_data",
    "export_summary_json",
    "export_traces_csv",
    "full_report",
    "per_trace_bars",
    "render_figure1",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_quic_table",
    "render_regional",
    "render_table",
    "render_table1",
    "render_table2",
    "spike_plot",
    "time_series",
    "traceroute_tree",
    "world_map",
]
