"""Plain-text table rendering for the reproduced paper tables."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    align_right: Sequence[int] = (),
) -> str:
    """Render an ASCII table.

    ``align_right`` lists column indices to right-align (numbers);
    everything else is left-aligned.
    """
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    right = set(align_right)

    def line(row: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(row):
            if index in right:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    separator = "  ".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(cells[0]))
    out.append(separator)
    out.extend(line(row) for row in cells[1:])
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
