"""Machine-readable exports of study results (JSON / CSV).

The paper archives its dataset at a DOI; these helpers serve the same
role for reproduced studies — everything needed to re-run the analyses
without re-running the measurement.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..core.analysis.correlation import CorrelationTable
from ..core.analysis.geographic import GeographicDistribution
from ..core.analysis.pathanalysis import PathAnalysis
from ..core.analysis.quic_ecn import QUICECNSummary
from ..core.analysis.reachability import ReachabilitySummary
from ..core.analysis.tcp_ecn import TCPECNSummary
from ..core.traces import TraceSet
from ..ioutil import atomic_open, atomic_write_text


def export_summary_json(
    path: str | Path,
    geo: GeographicDistribution,
    reachability: ReachabilitySummary,
    tcp: TCPECNSummary,
    paths: PathAnalysis,
    correlation: CorrelationTable,
    quic: QUICECNSummary | None = None,
) -> dict:
    """Write the headline numbers of every experiment; returns the dict.

    ``quic`` adds a ``quic_validation`` key when the study ran the
    QUIC probe family; the default ``None`` leaves the legacy payload
    byte-identical.
    """
    fraction, boundary, determinate = paths.boundary_strip_fraction()
    payload = {
        "table1": {
            "regions": {name: count for name, count in geo.table_rows()[:-1]},
            "total": geo.total,
        },
        "section_4_1": {
            "avg_udp_plain_reachable": reachability.avg_udp_plain,
            "avg_pct_ect_given_plain": reachability.avg_pct_ect_given_plain,
            "avg_pct_plain_given_ect": reachability.avg_pct_plain_given_ect,
            "min_pct_ect_given_plain": reachability.min_pct_ect_given_plain,
            "batch_avg_reachable": {
                str(batch): value
                for batch, value in reachability.batch_avg_reachable().items()
            },
        },
        "section_4_2": {
            "hops_measured": paths.hops_measured,
            "hops_passing": paths.hops_passing,
            "pct_hops_passing": paths.pct_hops_passing,
            "strip_events": paths.strip_events,
            "strip_locations": len(paths.strip_locations()),
            "sometimes_strip_locations": len(paths.sometimes_strip_locations()),
            "boundary_fraction": fraction,
            "ases_observed": len(paths.ases_observed()),
        },
        "section_4_3": {
            "avg_tcp_reachable": tcp.avg_tcp_reachable,
            "avg_ecn_negotiated": tcp.avg_ecn_negotiated,
            "pct_negotiated": tcp.pct_negotiated,
        },
        "table2": [
            {
                "vantage": row.vantage_key,
                "avg_udp_ect_unreachable": row.avg_udp_ect_unreachable,
                "avg_fail_tcp_ecn": row.avg_fail_tcp_ecn,
                "avg_negotiate_tcp_ecn": row.avg_negotiate_tcp_ecn,
            }
            for row in correlation.rows
        ],
    }
    if quic is not None:
        payload["quic_validation"] = {
            "total_probes": quic.total,
            "pct_ecn_usable": quic.pct_ecn_usable,
            "pct_bleached": quic.pct_bleached,
            "pct_blackholed": quic.pct_blackholed,
            "bleaching_dominates": quic.bleaching_dominates,
            "states": [
                {
                    "state": row.state,
                    "observations": row.observations,
                    "pct_of_total": row.pct_of_total,
                    "raw_ect_reachable_pct": row.raw_ect_reachable_pct,
                    "raw_plain_reachable_pct": row.raw_plain_reachable_pct,
                    "servers_dominant": row.servers_dominant,
                }
                for row in quic.rows
            ],
        }
    atomic_write_text(path, json.dumps(payload, indent=2))
    return payload


def export_figure_data(
    directory: str | Path,
    reachability: ReachabilitySummary,
    tcp: TCPECNSummary,
    differential_a,
    differential_b,
    measured_pct_negotiated: float,
) -> list[Path]:
    """Write per-figure CSVs for external plotting tools.

    Produces ``figure2.csv`` (per-trace percentages), ``figure3a.csv``
    / ``figure3b.csv`` (per-vantage per-server differential fractions)
    and ``figure6.csv`` (the deployment time series including the
    measured point).  Returns the written paths.
    """
    from ..core.analysis.tcp_ecn import ecn_deployment_series

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    figure2 = directory / "figure2.csv"
    with atomic_open(figure2, newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ("trace_id", "vantage", "batch", "pct_2a", "pct_2b", "tcp_reachable", "ecn_negotiated")
        )
        tcp_by_id = {t.trace_id: t for t in tcp.per_trace}
        for record in reachability.per_trace:
            tcp_record = tcp_by_id.get(record.trace_id)
            writer.writerow(
                (
                    record.trace_id,
                    record.vantage_key,
                    record.batch,
                    f"{record.pct_ect_given_plain:.4f}" if record.pct_ect_given_plain is not None else "",
                    f"{record.pct_plain_given_ect:.4f}" if record.pct_plain_given_ect is not None else "",
                    tcp_record.tcp_reachable if tcp_record else "",
                    tcp_record.ecn_negotiated if tcp_record else "",
                )
            )
    written.append(figure2)

    for name, analysis in (("figure3a", differential_a), ("figure3b", differential_b)):
        path = directory / f"{name}.csv"
        with atomic_open(path, newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(("vantage", "server_addr", "fraction"))
            for vantage_key in analysis.vantage_keys:
                fractions = analysis.fractions_for_vantage(vantage_key)
                for addr, fraction in zip(analysis.server_addrs, fractions):
                    writer.writerow((vantage_key, addr, f"{fraction:.4f}"))
        written.append(path)

    figure6 = directory / "figure6.csv"
    with atomic_open(figure6, newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("year", "pct_negotiated", "study"))
        for point in ecn_deployment_series(measured_pct_negotiated):
            writer.writerow((point.year, point.pct_negotiated, point.label))
    written.append(figure6)
    return written


def export_metrics_json(path: str | Path, snapshot: dict) -> dict:
    """Write a metric snapshot (counters + gauges); returns the dict.

    Snapshots from :meth:`repro.obs.MetricsRegistry.snapshot` and
    :func:`repro.obs.merge_snapshots` are already key-sorted, so the
    serialised bytes are stable across runs and shard orderings.
    """
    atomic_write_text(path, json.dumps(snapshot, indent=2))
    return snapshot


def export_telemetry_json(path: str | Path, telemetry) -> dict:
    """Write a :class:`repro.obs.RunTelemetry` document; returns it."""
    payload = telemetry.to_dict()
    atomic_write_text(path, json.dumps(payload, indent=2))
    return payload


def export_spans_json(path: str | Path, spans: list[dict]) -> dict:
    """Write an assembled span list (study root first); returns the doc.

    The payload wraps the spans in a version-tagged envelope so loaders
    can reject foreign files, mirroring the shard wire format and the
    flight-recorder dump format.
    """
    payload = {"format": "ecn-udp-spans/1", "spans": spans}
    atomic_write_text(path, json.dumps(payload, indent=2))
    return payload


def export_traces_csv(path: str | Path, trace_set: TraceSet) -> int:
    """Flatten a trace set to CSV (one row per server per trace).

    When any outcome carries QUIC validation data, eight ``quic_*``
    columns are appended to the header and every row (blank for
    outcomes without the probe); a legacy trace set writes the legacy
    twelve-column file byte for byte.  Returns the number of data rows
    written.
    """
    has_quic = any(
        outcome.quic is not None
        for trace in trace_set
        for outcome in trace.outcomes.values()
    )
    rows = 0
    with atomic_open(path, newline="") as handle:
        writer = csv.writer(handle)
        header = [
            "trace_id",
            "vantage",
            "batch",
            "server_addr",
            "udp_plain",
            "udp_ect",
            "udp_plain_attempts",
            "udp_ect_attempts",
            "tcp_plain",
            "tcp_ecn",
            "ecn_negotiated",
            "http_status",
        ]
        if has_quic:
            header += [
                "quic_state",
                "quic_handshake_ok",
                "quic_handshake_attempts",
                "quic_packets_sent",
                "quic_packets_acked",
                "quic_ect0_echoed",
                "quic_ect1_echoed",
                "quic_ce_echoed",
            ]
        writer.writerow(header)
        for trace in trace_set:
            for outcome in trace.outcomes.values():
                row = [
                    trace.trace_id,
                    trace.vantage_key,
                    trace.batch,
                    outcome.server_addr,
                    int(outcome.udp_plain),
                    int(outcome.udp_ect),
                    outcome.udp_plain_attempts,
                    outcome.udp_ect_attempts,
                    int(outcome.tcp_plain),
                    int(outcome.tcp_ecn),
                    int(outcome.ecn_negotiated),
                    outcome.http_status if outcome.http_status is not None else "",
                ]
                if has_quic:
                    quic = outcome.quic
                    if quic is not None:
                        row += [
                            quic.state,
                            int(quic.handshake_ok),
                            quic.handshake_attempts,
                            quic.packets_sent,
                            quic.packets_acked,
                            quic.ect0_echoed,
                            quic.ect1_echoed,
                            quic.ce_echoed,
                        ]
                    else:
                        row += [""] * 8
                writer.writerow(row)
                rows += 1
    return rows
