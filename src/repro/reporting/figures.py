"""Plain-text figure rendering: bar charts, spike plots, a world map.

Each function renders the data behind one of the paper's figures as
terminal-friendly text, so examples and the CLI can show the
reproduced result without a plotting dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

#: Characters for vertical resolution inside one text row.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    floor: float | None = None,
    ceiling: float | None = None,
) -> str:
    """Horizontal bar chart, one labelled row per value.

    ``floor``/``ceiling`` pin the axis (e.g. 90-100 % to match the
    zoomed y-axis of Figure 2).
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must be parallel")
    if not values:
        return "(no data)"
    low = floor if floor is not None else min(values)
    high = ceiling if ceiling is not None else max(values)
    span = high - low or 1.0
    label_width = max(len(label) for label in labels)
    rows = []
    for label, value in zip(labels, values):
        filled = int(round((min(max(value, low), high) - low) / span * width))
        bar = "#" * filled + "." * (width - filled)
        rows.append(f"{label.rjust(label_width)} |{bar}| {value:.2f}{unit}")
    return "\n".join(rows)


def per_trace_bars(
    groups: Sequence[tuple[str, Sequence[float]]],
    floor: float = 90.0,
    ceiling: float = 100.0,
) -> str:
    """Figure 2/5-style rendering: one character column per trace.

    ``groups`` holds ``(vantage label, per-trace values)`` in display
    order; bars within a group abut, groups are separated by spaces —
    mirroring how the paper plots its 210 bars.
    """
    if not groups:
        return "(no data)"
    span = ceiling - floor or 1.0
    columns: list[str] = []
    labels_row: list[str] = []
    for label, values in groups:
        glyphs = []
        for value in values:
            clamped = min(max(value, floor), ceiling)
            level = int(round((clamped - floor) / span * (len(_BLOCKS) - 1)))
            glyphs.append(_BLOCKS[level])
        block = "".join(glyphs) or " "
        columns.append(block)
        short = label.split()[-1][: max(len(block), 1)]
        labels_row.append(short.ljust(len(block)))
    bars = " ".join(columns)
    names = " ".join(labels_row)
    return f"{ceiling:5.0f}% |{bars}|\n{floor:5.0f}% +{'-' * len(bars)}+\n        {names}"


def spike_plot(values: Sequence[float], width: int = 100, height_label: str = "") -> str:
    """Figure 3-style spike plot: one column per server, 0..1 heights.

    Down-samples by taking the *maximum* within each bucket, because
    the interesting feature is the tall, thin spikes — a mean would
    erase exactly what the figure exists to show.
    """
    if not values:
        return "(no data)"
    bucket_count = min(width, len(values))
    per_bucket = len(values) / bucket_count
    columns = []
    for bucket in range(bucket_count):
        start = int(bucket * per_bucket)
        end = max(start + 1, int((bucket + 1) * per_bucket))
        peak = max(values[start:end])
        level = int(round(peak * (len(_BLOCKS) - 1)))
        columns.append(_BLOCKS[level])
    prefix = f"{height_label} " if height_label else ""
    return f"{prefix}|{''.join(columns)}|"


def time_series(
    points: Sequence[tuple[float, float, str]],
    width: int = 64,
    height: int = 12,
    y_max: float = 100.0,
) -> str:
    """Scatter a labelled (x, y, label) series on a text grid (Fig 6)."""
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    x_low, x_high = min(xs), max(xs)
    x_span = x_high - x_low or 1.0
    grid = [[" " for _ in range(width)] for _ in range(height)]
    for x, y, label in points:
        col = int(round((x - x_low) / x_span * (width - 1)))
        row = height - 1 - int(round(min(y, y_max) / y_max * (height - 1)))
        marker = label[0].upper() if label else "*"
        grid[row][col] = marker
    lines = []
    for index, row in enumerate(grid):
        y_value = y_max * (height - 1 - index) / (height - 1)
        lines.append(f"{y_value:5.0f}% |" + "".join(row))
    lines.append("       " + "-" * width)
    lines.append(f"       {x_low:.0f}" + " " * (width - 10) + f"{x_high:.0f}")
    return "\n".join(lines)


def world_map(
    points: Sequence[tuple[float, float]],
    width: int = 72,
    height: int = 24,
) -> str:
    """Figure 1-style density map from (latitude, longitude) points."""
    if not points:
        return "(no data)"
    grid = [[0 for _ in range(width)] for _ in range(height)]
    for lat, lon in points:
        col = int((lon + 180.0) / 360.0 * (width - 1))
        row = int((90.0 - lat) / 180.0 * (height - 1))
        if 0 <= row < height and 0 <= col < width:
            grid[row][col] += 1
    shades = " .:*#@"
    lines = []
    for row in grid:
        line = []
        for count in row:
            index = min(len(shades) - 1, count if count < 3 else 3 + int(math.log2(count)))
            index = min(index, len(shades) - 1)
            line.append(shades[index])
        lines.append("".join(line))
    return "\n".join(lines)


def traceroute_tree(
    paths: Sequence[Sequence[tuple[int, bool]]],
    max_paths: int = 24,
) -> str:
    """Figure 4-style rendering: one line per path, hops as glyphs.

    Each path is a sequence of ``(responder, mark_preserved)``; hops
    that kept the mark render ``o`` (green in the paper), hops where
    the returned ECN field differed render ``X`` (red), giving the
    paper's "runs of red after the mark is stripped".
    """
    lines = []
    for path in list(paths)[:max_paths]:
        glyphs = "".join("o" if preserved else "X" for _, preserved in path)
        lines.append(f"src -{glyphs}-> dst")
    if len(paths) > max_paths:
        lines.append(f"... ({len(paths) - max_paths} more paths)")
    return "\n".join(lines)
