"""Assembles the paper's tables and figures as text reports.

Every ``render_*`` function takes the corresponding analysis output
and produces the text artefact; :func:`full_report` strings them all
together — this is what ``python -m repro report`` prints and what
EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from ..core.analysis.correlation import CorrelationTable
from ..core.analysis.differential import DifferentialAnalysis
from ..core.analysis.geographic import GeographicDistribution
from ..core.analysis.pathanalysis import PathAnalysis
from ..core.analysis.quic_ecn import QUICECNSummary
from ..core.analysis.reachability import ReachabilitySummary
from ..core.analysis.tcp_ecn import (
    TCPECNSummary,
    ecn_deployment_series,
    fit_deployment_trend,
)
from ..core.traces import TracerouteCampaign
from ..scenario.vantages import VANTAGES
from .figures import (
    bar_chart,
    per_trace_bars,
    spike_plot,
    time_series,
    traceroute_tree,
    world_map,
)
from .tables import render_table

#: Paper-order vantage keys and their short figure labels.
_VANTAGE_LABELS = {spec.key: spec.table_label for spec in VANTAGES}


def _ordered_keys(present: list[str]) -> list[str]:
    """Vantages in the paper's figure order, filtered to those present."""
    ordered = [spec.key for spec in VANTAGES if spec.key in present]
    extras = [key for key in present if key not in ordered]
    return ordered + extras


def render_table1(geo: GeographicDistribution) -> str:
    """Table 1: geographic distribution of NTP pool servers."""
    return render_table(
        ("Region", "NTP Server Count"),
        geo.table_rows(),
        title="Table 1: Geographic distribution of NTP pool servers",
        align_right=(1,),
    )


def render_figure1(geo: GeographicDistribution) -> str:
    """Figure 1: world map of server locations."""
    points = [(p.latitude, p.longitude) for p in geo.points]
    return (
        "Figure 1: Geographic locations of NTP pool servers\n"
        + world_map(points)
    )


def render_figure2(summary: ReachabilitySummary) -> str:
    """Figure 2: per-vantage UDP reachability percentages."""
    keys = _ordered_keys(list(summary.by_vantage().keys()))
    avg_a = summary.vantage_avg_pct("a")
    avg_b = summary.vantage_avg_pct("b")
    labels = [_VANTAGE_LABELS.get(key, key) for key in keys]
    part_a = bar_chart(
        labels,
        [avg_a.get(key, 0.0) for key in keys],
        unit="%",
        floor=90.0,
        ceiling=100.0,
    )
    part_b = bar_chart(
        labels,
        [avg_b.get(key, 0.0) for key in keys],
        unit="%",
        floor=90.0,
        ceiling=100.0,
    )
    grouped = summary.by_vantage()
    trace_groups = [
        (
            _VANTAGE_LABELS.get(key, key),
            [
                record.pct_ect_given_plain
                for record in grouped[key]
                if record.pct_ect_given_plain is not None
            ],
        )
        for key in keys
    ]
    per_trace = per_trace_bars(trace_groups)
    return (
        "Figure 2a: % of not-ECT-reachable servers also reachable with ECT(0)\n"
        f"{part_a}\n\n"
        "Figure 2a, one bar per trace (paper rendering):\n"
        f"{per_trace}\n\n"
        "Figure 2b: % of ECT(0)-reachable servers also reachable with not-ECT\n"
        f"{part_b}"
    )


def render_figure3(
    analysis_a: DifferentialAnalysis, analysis_b: DifferentialAnalysis
) -> str:
    """Figure 3: per-server differential reachability spike plots."""
    lines = ["Figure 3a: reachable by not-ECT but not ECT(0) (one column per server)"]
    for key in _ordered_keys(analysis_a.vantage_keys):
        lines.append(
            spike_plot(
                analysis_a.fractions_for_vantage(key),
                height_label=f"{_VANTAGE_LABELS.get(key, key):>18}",
            )
        )
    lines.append("")
    lines.append("Figure 3b: reachable by ECT(0) but not by not-ECT")
    for key in _ordered_keys(analysis_b.vantage_keys):
        lines.append(
            spike_plot(
                analysis_b.fractions_for_vantage(key),
                height_label=f"{_VANTAGE_LABELS.get(key, key):>18}",
            )
        )
    return "\n".join(lines)


def render_figure4(campaign: TracerouteCampaign, analysis: PathAnalysis) -> str:
    """Figure 4: sample traceroutes with strip runs, plus §4.2 stats."""
    sample = []
    # Prefer paths that show a strip (the figure's point), then fill
    # with clean paths.
    with_strip = [p for p in campaign if p.first_strip_ttl() is not None]
    clean = [p for p in campaign if p.first_strip_ttl() is None]
    for path in (with_strip + clean)[:24]:
        sample.append(
            [
                (hop.responder, bool(hop.mark_preserved))
                for hop in path.responding_hops()
            ]
        )
    fraction, boundary, determinate = analysis.boundary_strip_fraction()
    stats = (
        f"hops measured: {analysis.hops_measured}, "
        f"passing ECT(0): {analysis.hops_passing} ({analysis.pct_hops_passing:.2f}%)\n"
        f"strip events: {analysis.strip_events} at "
        f"{len(analysis.strip_locations())} locations "
        f"({len(analysis.sometimes_strip_locations())} only sometimes strip)\n"
        f"strip locations at AS boundaries: {fraction:.1%} "
        f"({boundary}/{determinate} determinate)\n"
        f"ASes observed: {len(analysis.ases_observed())}"
    )
    return (
        "Figure 4: sample traceroutes (o = ECT(0) intact, X = mark missing)\n"
        + traceroute_tree(sample)
        + "\n\n"
        + stats
    )


def render_figure5(summary: TCPECNSummary) -> str:
    """Figure 5: TCP reachability and ECN negotiation per vantage."""
    keys = _ordered_keys(list(summary.by_vantage().keys()))
    grouped = summary.by_vantage()
    labels = [_VANTAGE_LABELS.get(key, key) for key in keys]
    reachable = [
        sum(t.tcp_reachable for t in grouped[key]) / len(grouped[key]) for key in keys
    ]
    negotiated = [
        sum(t.ecn_negotiated for t in grouped[key]) / len(grouped[key]) for key in keys
    ]
    ceiling = float(summary.total_servers)
    part_reach = bar_chart(labels, reachable, floor=0.0, ceiling=ceiling)
    part_neg = bar_chart(labels, negotiated, floor=0.0, ceiling=ceiling)
    return (
        "Figure 5: web servers reachable using TCP (top) and negotiating ECN (bottom)\n"
        f"{part_reach}\n\n{part_neg}\n\n"
        f"average reachable: {summary.avg_tcp_reachable:.0f} of {summary.total_servers}; "
        f"negotiating ECN: {summary.avg_ecn_negotiated:.0f} "
        f"({summary.pct_negotiated:.1f}% of TCP-reachable)"
    )


def render_figure6(measured_pct: float) -> str:
    """Figure 6: ECN TCP capability trend, history plus our point."""
    series = ecn_deployment_series(measured_pct)
    fit = fit_deployment_trend()
    plotted = [(p.year, p.pct_negotiated, p.label) for p in series]
    residual = fit.residual(series[-1].year, measured_pct)
    return (
        "Figure 6: Trends in ECN TCP capability (letters = study initials)\n"
        + time_series(plotted)
        + f"\nlogistic trend (fit on prior studies): midpoint {fit.midpoint:.1f}, "
        f"rate {fit.rate:.2f}; measured 2015 point sits {residual:+.1f} pp "
        "versus the extrapolated curve"
    )


def render_regional(rows) -> str:
    """Extension table: §4.1 reachability split by Table 1's regions."""
    return render_table(
        (
            "Region",
            "Servers",
            "Avg reachable (not-ECT)",
            "ECT-given-plain %",
        ),
        [
            (
                row.region.value,
                row.servers,
                f"{row.avg_plain_reachable:.1f}",
                f"{row.pct_ect_given_plain:.2f}" if row.pct_ect_given_plain is not None else "-",
            )
            for row in rows
        ],
        title="Extension: UDP/ECN reachability by region",
        align_right=(1, 2, 3),
    )


def render_table2(table: CorrelationTable) -> str:
    """Table 2: UDP vs TCP reachability correlation."""
    rows = []
    for key in _ordered_keys([row.vantage_key for row in table.rows]):
        row = table.row(key)
        if row is None:
            continue
        rows.append(
            (
                _VANTAGE_LABELS.get(key, key),
                f"{row.avg_udp_ect_unreachable:.0f}",
                f"{row.avg_fail_tcp_ecn:.0f}",
            )
        )
    return render_table(
        ("Location", "Avg unreachable UDP w/ECT", "Fail to negotiate ECN w/TCP"),
        rows,
        title="Table 2: Correlation between UDP and TCP reachability",
        align_right=(1, 2),
    )


def render_quic_table(summary: QUICECNSummary) -> str:
    """Extension table: QUIC §13.4 validation vs raw-UDP reachability.

    One row per validation state, cross-tabulated with how often the
    *same* probe pair found the server reachable with raw ECT(0) UDP —
    the column that shows bleaching is invisible to reachability-only
    probing while blackholing is the one failure it can see.
    """

    def pct(value: float | None) -> str:
        return f"{value:.2f}" if value is not None else "-"

    rows = [
        (
            row.state,
            row.observations,
            f"{row.pct_of_total:.2f}",
            pct(row.raw_ect_reachable_pct),
            pct(row.raw_plain_reachable_pct),
            row.servers_dominant,
        )
        for row in summary.rows
    ]
    table = render_table(
        (
            "Validation state",
            "Probes",
            "% of probes",
            "Raw ECT reach %",
            "Raw plain reach %",
            "Servers (dominant)",
        ),
        rows,
        title="Extension: QUIC ECN validation (RFC 9000 §13.4) vs raw UDP",
        align_right=(1, 2, 3, 4, 5),
    )
    dominance = (
        "bleaching dominates blackholing"
        if summary.bleaching_dominates
        else "blackholing is at least as common as bleaching"
    )
    return (
        f"{table}\n"
        f"ECN usable after validation: {summary.pct_ecn_usable:.2f}% of probes\n"
        f"bleached {summary.pct_bleached:.2f}% vs blackholed "
        f"{summary.pct_blackholed:.2f}%: {dominance}"
    )


def full_report(
    geo: GeographicDistribution,
    reachability: ReachabilitySummary,
    differential_a: DifferentialAnalysis,
    differential_b: DifferentialAnalysis,
    tcp: TCPECNSummary,
    campaign: TracerouteCampaign,
    paths: PathAnalysis,
    correlation: CorrelationTable,
    quic: QUICECNSummary | None = None,
) -> str:
    """Every artefact, in the paper's order.

    ``quic`` appends the QUIC validation extension table when the
    study ran that probe family; ``None`` (the default) reproduces the
    legacy report byte for byte.
    """
    sections = [
        render_table1(geo),
        render_figure1(geo),
        render_figure2(reachability),
        render_figure3(differential_a, differential_b),
        render_figure4(campaign, paths),
        render_figure5(tcp),
        render_figure6(tcp.pct_negotiated),
        render_table2(correlation),
        "Headline (paper vs reproduced):\n"
        f"  avg servers reachable (not-ECT UDP): paper 2253/2500; "
        f"here {reachability.avg_udp_plain:.0f}/{reachability.total_servers}\n"
        f"  Fig 2a average: paper 98.97%; here {reachability.avg_pct_ect_given_plain:.2f}%\n"
        f"  Fig 2b average: paper 99.45%; here {reachability.avg_pct_plain_given_ect:.2f}%\n"
        f"  hops passing ECT(0): paper ~98%; here {paths.pct_hops_passing:.2f}%\n"
        f"  TCP servers negotiating ECN: paper 82.0%; here {tcp.pct_negotiated:.1f}%",
    ]
    if quic is not None:
        sections.append(render_quic_table(quic))
    return ("\n\n" + "=" * 78 + "\n\n").join(sections)
