"""IP-to-AS mapping, with the inaccuracies the paper cautions about.

Section 4.2 maps traceroute hop addresses to AS numbers "subject to
the usual limitations of IP to AS mapping accuracy" (citing Zhang et
al.).  We model both parts: a prefix→ASN registry built from the
topology's true allocations, and an optional noise model that corrupts
a fraction of lookups the way third-party prefix-origin data does —
mostly at exactly the places that matter for boundary inference,
because inter-AS link addresses are conventionally numbered from one
side's space.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netsim.ipv4 import Prefix
from ..netsim.routing import PrefixTrie

#: Returned when an address maps to no known origin.
UNKNOWN_ASN = -1


class ASMap:
    """Longest-prefix-match IP→ASN lookups."""

    def __init__(self) -> None:
        self._trie = PrefixTrie()
        self._prefix_count = 0
        self._asns: set[int] = set()

    def register(self, prefix: Prefix, asn: int) -> None:
        """Record that ``asn`` originates ``prefix``."""
        self._trie.insert(prefix, asn)
        self._prefix_count += 1
        self._asns.add(asn)

    def lookup(self, addr: int) -> int:
        """ASN originating the covering prefix, or :data:`UNKNOWN_ASN`."""
        result = self._trie.lookup_default(addr)
        return UNKNOWN_ASN if result is None else result

    @property
    def prefix_count(self) -> int:
        return self._prefix_count

    @property
    def asn_count(self) -> int:
        return len(self._asns)


@dataclass
class NoisyASMap:
    """An :class:`ASMap` view with lookup errors.

    With probability ``miss_rate`` a lookup returns
    :data:`UNKNOWN_ASN` (prefix absent from the registry snapshot);
    with probability ``misattribution_rate`` it returns a neighbouring
    ASN instead of the true one (stale or aggregated origin data).
    Noise is deterministic per address — repeated lookups of the same
    hop must agree, as they would against a fixed database snapshot.
    """

    truth: ASMap
    seed: int = 0
    miss_rate: float = 0.02
    misattribution_rate: float = 0.03

    def lookup(self, addr: int) -> int:
        true_asn = self.truth.lookup(addr)
        if true_asn == UNKNOWN_ASN:
            return UNKNOWN_ASN
        rng = random.Random((self.seed << 32) ^ addr)
        roll = rng.random()
        if roll < self.miss_rate:
            return UNKNOWN_ASN
        if roll < self.miss_rate + self.misattribution_rate:
            # Attribute to a plausible other ASN, deterministically.
            others = sorted(self.truth._asns - {true_asn})
            if others:
                return others[rng.randrange(len(others))]
        return true_asn
