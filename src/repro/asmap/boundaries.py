"""AS-boundary classification of path positions.

The paper reports that 59.1 % of the locations where ECT(0) marks are
stripped "were at AS boundaries (again, subject to the limitations of
inferring AS number from traceroute IP addresses)".  Given a sequence
of per-hop ASNs, this module decides whether a given hop sits at a
boundary: its ASN differs from the previous responsive hop's ASN, with
unknown hops skipped the way traceroute analyses conventionally do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .mapping import UNKNOWN_ASN


@dataclass(frozen=True)
class BoundaryVerdict:
    """Classification of one hop position."""

    is_boundary: bool
    #: True when unknown ASNs prevented a confident call.
    determinate: bool


def classify_hop(asns: Sequence[int], index: int) -> BoundaryVerdict:
    """Is the hop at ``index`` the first hop inside a new AS?

    A hop is *at an AS boundary* when its ASN is known and differs from
    the nearest preceding hop with a known ASN.  If either side is
    unknown the verdict is indeterminate (and counted as non-boundary,
    the conservative choice the paper's phrasing implies).
    """
    if not 0 <= index < len(asns):
        raise IndexError(f"hop index {index} out of range")
    here = asns[index]
    if here == UNKNOWN_ASN:
        return BoundaryVerdict(is_boundary=False, determinate=False)
    for prev_index in range(index - 1, -1, -1):
        previous = asns[prev_index]
        if previous != UNKNOWN_ASN:
            return BoundaryVerdict(is_boundary=previous != here, determinate=True)
    # First known hop on the path: not a boundary crossing.
    return BoundaryVerdict(is_boundary=False, determinate=True)


def boundary_fraction(
    paths: Sequence[Sequence[int]],
    flagged: Sequence[Sequence[bool]],
) -> tuple[float, int, int]:
    """Fraction of *flagged* hops that sit at AS boundaries.

    ``paths`` holds per-path ASN sequences; ``flagged`` parallel
    booleans marking the hops of interest (e.g. where an ECT mark was
    first seen stripped).  Returns ``(fraction, boundary_count,
    determinate_count)``; the fraction is over hops with a determinate
    verdict, matching the paper's "where we were able to determine the
    AS" qualifier.
    """
    if len(paths) != len(flagged):
        raise ValueError("paths and flagged must be parallel")
    boundary = 0
    determinate = 0
    for asns, marks in zip(paths, flagged):
        if len(asns) != len(marks):
            raise ValueError("per-path ASN and flag lists must be parallel")
        for index, marked in enumerate(marks):
            if not marked:
                continue
            verdict = classify_hop(asns, index)
            if verdict.determinate:
                determinate += 1
                if verdict.is_boundary:
                    boundary += 1
    fraction = boundary / determinate if determinate else 0.0
    return fraction, boundary, determinate
