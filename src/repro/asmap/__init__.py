"""IP→AS mapping and AS-boundary inference."""

from .boundaries import BoundaryVerdict, boundary_fraction, classify_hop
from .mapping import ASMap, NoisyASMap, UNKNOWN_ASN

__all__ = [
    "ASMap",
    "BoundaryVerdict",
    "NoisyASMap",
    "UNKNOWN_ASN",
    "boundary_fraction",
    "classify_hop",
]
