"""TCP with RFC 3168 ECN negotiation over the simulated IP layer."""

from .connection import (
    ConnState,
    ECNServerPolicy,
    ECNStats,
    TCPConnection,
    TCPListener,
    TCPStack,
)
from .segment import (
    DEFAULT_MSS,
    ECN_SETUP_SYN,
    ECN_SETUP_SYNACK,
    Flags,
    TCPSegment,
)

__all__ = [
    "ConnState",
    "DEFAULT_MSS",
    "ECNServerPolicy",
    "ECNStats",
    "ECN_SETUP_SYN",
    "ECN_SETUP_SYNACK",
    "Flags",
    "TCPConnection",
    "TCPListener",
    "TCPSegment",
    "TCPStack",
]
