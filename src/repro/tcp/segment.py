"""TCP segment codec (RFC 793 header, RFC 3168 ECE/CWR flags).

The paper's TCP experiment is entirely about two header bits: an
"ECN-setup SYN" carries ECE+CWR, and a server agreeing to use ECN
answers with an "ECN-setup SYN-ACK" carrying ECE but **not** CWR.  The
codec is byte-exact (including the pseudo-header checksum) so captures
show what a real tcpdump would show.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from ..netsim.checksum import internet_checksum, pseudo_header
from ..netsim.errors import CodecError
from ..netsim.ipv4 import PROTO_TCP

_HEADER = struct.Struct("!HHIIBBHHH")
HEADER_LEN = _HEADER.size  # 20 bytes without options

#: Option kinds we encode/decode.
OPT_END = 0
OPT_NOP = 1
OPT_MSS = 2

DEFAULT_MSS = 1460


class Flags(enum.IntFlag):
    """TCP header flags, including the ECN pair from RFC 3168."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80


#: The flag combination of an ECN-setup SYN (RFC 3168 §6.1.1).
ECN_SETUP_SYN = Flags.SYN | Flags.ECE | Flags.CWR
#: The flag combination of an ECN-setup SYN-ACK.
ECN_SETUP_SYNACK = Flags.SYN | Flags.ACK | Flags.ECE


@dataclass
class TCPSegment:
    """A parsed TCP segment."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: Flags = Flags(0)
    window: int = 65535
    payload: bytes = b""
    mss: int | None = None

    # ------------------------------------------------------------------
    # Flag conveniences
    # ------------------------------------------------------------------
    @property
    def is_syn(self) -> bool:
        return bool(self.flags & Flags.SYN) and not (self.flags & Flags.ACK)

    @property
    def is_synack(self) -> bool:
        return bool(self.flags & Flags.SYN) and bool(self.flags & Flags.ACK)

    @property
    def is_ecn_setup_syn(self) -> bool:
        """SYN with both ECE and CWR set: the client requests ECN."""
        return self.is_syn and bool(self.flags & Flags.ECE) and bool(self.flags & Flags.CWR)

    @property
    def is_ecn_setup_synack(self) -> bool:
        """SYN-ACK with ECE set and CWR clear: the server accepts ECN.

        RFC 3168 §6.1.1: a SYN-ACK with both ECE and CWR is *not* a
        valid ECN-setup SYN-ACK (it indicates a broken or reflecting
        implementation) and MUST be treated as non-ECN-setup.
        """
        return (
            self.is_synack
            and bool(self.flags & Flags.ECE)
            and not (self.flags & Flags.CWR)
        )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def encode(self, src_addr: int, dst_addr: int) -> bytes:
        """Serialise with checksum over the IPv4 pseudo-header."""
        for name, port in (("src", self.src_port), ("dst", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise CodecError(f"TCP {name} port out of range: {port}")
        options = b""
        if self.mss is not None:
            options = struct.pack("!BBH", OPT_MSS, 4, self.mss)
        # Pad options to a 32-bit boundary.
        while len(options) % 4:
            options += bytes((OPT_NOP,))
        data_offset = (HEADER_LEN + len(options)) // 4
        header = _HEADER.pack(
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            data_offset << 4,
            int(self.flags) & 0xFF,
            self.window,
            0,
            0,
        )
        segment = header + options + self.payload
        pseudo = pseudo_header(src_addr, dst_addr, PROTO_TCP, len(segment))
        csum = internet_checksum(pseudo + segment)
        return segment[:16] + struct.pack("!H", csum) + segment[18:]

    @classmethod
    def decode(
        cls,
        data: bytes,
        src_addr: int | None = None,
        dst_addr: int | None = None,
        verify: bool = False,
    ) -> "TCPSegment":
        """Parse wire bytes (checksum verified only on request)."""
        if len(data) < HEADER_LEN:
            raise CodecError(f"TCP header truncated: {len(data)} bytes")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_byte,
            flag_byte,
            window,
            _csum,
            _urgent,
        ) = _HEADER.unpack_from(data)
        data_offset = (offset_byte >> 4) * 4
        if data_offset < HEADER_LEN or len(data) < data_offset:
            raise CodecError(f"bad TCP data offset: {data_offset}")
        if verify:
            if src_addr is None or dst_addr is None:
                raise CodecError("TCP checksum verification needs IP addresses")
            pseudo = pseudo_header(src_addr, dst_addr, PROTO_TCP, len(data))
            if internet_checksum(pseudo + data) != 0:
                raise CodecError("TCP checksum mismatch")
        mss = _parse_mss(data[HEADER_LEN:data_offset])
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=Flags(flag_byte),
            window=window,
            payload=data[data_offset:],
            mss=mss,
        )

    def __repr__(self) -> str:
        names = [flag.name for flag in Flags if self.flags & flag]
        return (
            f"TCPSegment({self.src_port} -> {self.dst_port}, "
            f"seq={self.seq}, ack={self.ack}, flags={'|'.join(names) or '-'}, "
            f"len={len(self.payload)})"
        )


def _parse_mss(options: bytes) -> int | None:
    """Extract the MSS option value, if present."""
    i = 0
    while i < len(options):
        kind = options[i]
        if kind == OPT_END:
            break
        if kind == OPT_NOP:
            i += 1
            continue
        if i + 1 >= len(options):
            break
        length = options[i + 1]
        if length < 2 or i + length > len(options):
            break
        if kind == OPT_MSS and length == 4:
            return struct.unpack_from("!H", options, i + 2)[0]
        i += length
    return None
