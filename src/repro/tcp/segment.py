"""TCP segment codec (RFC 793 header, RFC 3168 ECE/CWR flags).

The paper's TCP experiment is entirely about two header bits: an
"ECN-setup SYN" carries ECE+CWR, and a server agreeing to use ECN
answers with an "ECN-setup SYN-ACK" carrying ECE but **not** CWR.  The
codec is byte-exact (including the pseudo-header checksum) so captures
show what a real tcpdump would show.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from ..netsim.checksum import data_sum16, internet_checksum, pseudo_header
from ..netsim.errors import CodecError
from ..netsim.ipv4 import PROTO_TCP

_HEADER = struct.Struct("!HHIIBBHHH")
HEADER_LEN = _HEADER.size  # 20 bytes without options

#: Option kinds we encode/decode.
OPT_END = 0
OPT_NOP = 1
OPT_MSS = 2

DEFAULT_MSS = 1460


class Flags(enum.IntFlag):
    """TCP header flags, including the ECN pair from RFC 3168."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80


#: Plain-int mirrors of the flag bits.  ``IntFlag`` bitwise operators
#: construct a new enum instance per ``&``/``|`` — measurably hot when
#: every segment is tested against half a dozen masks — so the segment
#: stores its flags as a plain ``int`` and the hot paths combine these
#: constants with native int arithmetic instead.
FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20
ECE = 0x40
CWR = 0x80

#: The flag combination of an ECN-setup SYN (RFC 3168 §6.1.1).
ECN_SETUP_SYN = Flags.SYN | Flags.ECE | Flags.CWR
#: The flag combination of an ECN-setup SYN-ACK.
ECN_SETUP_SYNACK = Flags.SYN | Flags.ACK | Flags.ECE


@dataclass
class TCPSegment:
    """A parsed TCP segment.

    ``flags`` is normalised to a plain ``int`` (``Flags`` members are
    accepted — they are ints — and converted), so per-segment flag
    tests run as native integer masking.
    """

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    payload: bytes = b""
    mss: int | None = None

    def __post_init__(self) -> None:
        # Strip any IntFlag wrapper so downstream `&`/`|` stay int-fast.
        if type(self.flags) is not int:
            self.flags = int(self.flags)

    # ------------------------------------------------------------------
    # Flag conveniences
    # ------------------------------------------------------------------
    @property
    def is_syn(self) -> bool:
        return (self.flags & (SYN | ACK)) == SYN

    @property
    def is_synack(self) -> bool:
        return (self.flags & (SYN | ACK)) == (SYN | ACK)

    @property
    def is_ecn_setup_syn(self) -> bool:
        """SYN with both ECE and CWR set: the client requests ECN."""
        return (self.flags & (SYN | ACK | ECE | CWR)) == (SYN | ECE | CWR)

    @property
    def is_ecn_setup_synack(self) -> bool:
        """SYN-ACK with ECE set and CWR clear: the server accepts ECN.

        RFC 3168 §6.1.1: a SYN-ACK with both ECE and CWR is *not* a
        valid ECN-setup SYN-ACK (it indicates a broken or reflecting
        implementation) and MUST be treated as non-ECN-setup.
        """
        return (self.flags & (SYN | ACK | ECE | CWR)) == (SYN | ACK | ECE)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def encode(self, src_addr: int, dst_addr: int) -> bytes:
        """Serialise with checksum over the IPv4 pseudo-header.

        The checksum is computed arithmetically from the header fields
        and pseudo-header values (RFC 1071 sums are order-independent
        16-bit adds), so only the options+payload tail — empty for the
        pure ACKs that dominate a connection — needs a byte sweep, and
        the header is packed exactly once.
        """
        if not 0 <= self.src_port <= 0xFFFF:
            raise CodecError(f"TCP src port out of range: {self.src_port}")
        if not 0 <= self.dst_port <= 0xFFFF:
            raise CodecError(f"TCP dst port out of range: {self.dst_port}")
        options = b""
        if self.mss is not None:
            options = struct.pack("!BBH", OPT_MSS, 4, self.mss)
        # Pad options to a 32-bit boundary.
        while len(options) % 4:
            options += bytes((OPT_NOP,))
        data_offset = (HEADER_LEN + len(options)) // 4
        flag_byte = self.flags & 0xFF
        seq = self.seq & 0xFFFFFFFF
        ack = self.ack & 0xFFFFFFFF
        src = src_addr & 0xFFFFFFFF
        dst = dst_addr & 0xFFFFFFFF
        tail = options + self.payload
        length = HEADER_LEN + len(tail)
        total = (
            # pseudo-header: addresses, protocol, TCP length
            (src >> 16) + (src & 0xFFFF)
            + (dst >> 16) + (dst & 0xFFFF)
            + PROTO_TCP + (length & 0xFFFF)
            # header words (checksum field itself counts as zero)
            + self.src_port + self.dst_port
            + (seq >> 16) + (seq & 0xFFFF)
            + (ack >> 16) + (ack & 0xFFFF)
            + ((data_offset << 12) | flag_byte)
            + self.window
            + (data_sum16(tail) if tail else 0)
        )
        total = (total & 0xFFFF) + (total >> 16)
        total = (total & 0xFFFF) + (total >> 16)
        return (
            _HEADER.pack(
                self.src_port,
                self.dst_port,
                seq,
                ack,
                data_offset << 4,
                flag_byte,
                self.window,
                ~total & 0xFFFF,
                0,
            )
            + tail
        )

    @classmethod
    def decode(
        cls,
        data: bytes,
        src_addr: int | None = None,
        dst_addr: int | None = None,
        verify: bool = False,
    ) -> "TCPSegment":
        """Parse wire bytes (checksum verified only on request)."""
        if len(data) < HEADER_LEN:
            raise CodecError(f"TCP header truncated: {len(data)} bytes")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_byte,
            flag_byte,
            window,
            _csum,
            _urgent,
        ) = _HEADER.unpack_from(data)
        data_offset = (offset_byte >> 4) * 4
        if data_offset < HEADER_LEN or len(data) < data_offset:
            raise CodecError(f"bad TCP data offset: {data_offset}")
        if verify:
            if src_addr is None or dst_addr is None:
                raise CodecError("TCP checksum verification needs IP addresses")
            pseudo = pseudo_header(src_addr, dst_addr, PROTO_TCP, len(data))
            if internet_checksum(pseudo + data) != 0:
                raise CodecError("TCP checksum mismatch")
        mss = _parse_mss(data[HEADER_LEN:data_offset]) if data_offset > HEADER_LEN else None
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flag_byte,
            window=window,
            payload=data[data_offset:],
            mss=mss,
        )

    def __repr__(self) -> str:
        names = [flag.name for flag in Flags if self.flags & flag]
        return (
            f"TCPSegment({self.src_port} -> {self.dst_port}, "
            f"seq={self.seq}, ack={self.ack}, flags={'|'.join(names) or '-'}, "
            f"len={len(self.payload)})"
        )


def _parse_mss(options: bytes) -> int | None:
    """Extract the MSS option value, if present."""
    i = 0
    while i < len(options):
        kind = options[i]
        if kind == OPT_END:
            break
        if kind == OPT_NOP:
            i += 1
            continue
        if i + 1 >= len(options):
            break
        length = options[i + 1]
        if length < 2 or i + length > len(options):
            break
        if kind == OPT_MSS and length == 4:
            return struct.unpack_from("!H", options, i + 2)[0]
        i += length
    return None
