"""TCP connections with RFC 3168 ECN negotiation.

This is a deliberately compact but *behaviourally real* TCP: three-way
handshake, cumulative ACKs, retransmission with exponential backoff,
FIN teardown, RST handling — enough to carry HTTP requests across a
lossy simulated Internet.  What it models carefully, because the paper
measures exactly this, is ECN:

* a client can send an **ECN-setup SYN** (ECE+CWR set, IP field
  not-ECT — see the paper's footnote 1: the SYN itself is never
  ECT-marked, so UDP and TCP probe response rates are not directly
  comparable);
* servers implement one of several observed policies
  (:class:`ECNServerPolicy`): negotiate per RFC 3168, ignore the
  request, reflect both bits (broken — the client must treat that as
  non-ECN), or silently drop ECN-setup SYNs (the failure mode Langley
  reported for ~0.5 % of hosts in 2008);
* once negotiated, data segments are sent ECT(0)-marked, CE marks are
  echoed with ECE until the sender responds with CWR.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..netsim.ecn import ECN
from ..netsim.engine import Event
from ..netsim.errors import CodecError, SocketError
from ..netsim.ipv4 import IPv4Packet, PROTO_TCP, format_addr
from .segment import ACK, CWR, DEFAULT_MSS, ECE, FIN, PSH, RST, SYN, TCPSegment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..netsim.host import Host


class ECNServerPolicy(enum.Enum):
    """How a server responds to an ECN-setup SYN."""

    #: RFC 3168-compliant: reply with an ECN-setup SYN-ACK, use ECN.
    NEGOTIATE = "negotiate"
    #: ECN-unaware: reply with a plain SYN-ACK.
    IGNORE = "ignore"
    #: Broken: reflect both ECE and CWR on the SYN-ACK (clients must
    #: treat this as a failed negotiation).
    REFLECT = "reflect"
    #: Pathological: silently ignore ECN-setup SYNs while answering
    #: plain SYNs normally.
    DROP_ECN_SYN = "drop-ecn-syn"


class ConnState(enum.Enum):
    """Connection states (the subset of RFC 793 we traverse)."""

    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    FIN_WAIT_1 = "fin-wait-1"
    FIN_WAIT_2 = "fin-wait-2"
    CLOSE_WAIT = "close-wait"
    LAST_ACK = "last-ack"
    TIME_WAIT = "time-wait"
    FAILED = "failed"


@dataclass
class ECNStats:
    """Per-connection ECN accounting, used by tests and analysis."""

    ect_data_sent: int = 0
    ce_received: int = 0
    ece_sent: int = 0
    ece_received: int = 0
    cwr_sent: int = 0
    cwr_received: int = 0


#: Callback signatures.
EstablishedFn = Callable[["TCPConnection"], None]
DataFn = Callable[["TCPConnection", bytes], None]
CloseFn = Callable[["TCPConnection", str], None]
FailureFn = Callable[["TCPConnection", str], None]


class TCPConnection:
    """One end of a TCP connection."""

    def __init__(
        self,
        stack: "TCPStack",
        local_port: int,
        remote_addr: int,
        remote_port: int,
        iss: int,
        use_ecn: bool = False,
        syn_retries: int = 2,
        data_retries: int = 4,
        rto_initial: float = 1.0,
        mss: int = DEFAULT_MSS,
    ) -> None:
        self.stack = stack
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.use_ecn = use_ecn
        self.syn_retries = syn_retries
        self.data_retries = data_retries
        self.rto_initial = rto_initial
        self.mss = mss

        self.state = ConnState.CLOSED
        self.ecn_active = False
        #: Flag bits observed on the peer's SYN/SYN-ACK (None until seen);
        #: the measurement application records this to decide whether
        #: an ECN-setup SYN-ACK came back.
        self.peer_syn_flags: int | None = None
        self.ecn_stats = ECNStats()

        self.snd_nxt = iss
        self.snd_una = iss
        self.rcv_nxt = 0
        self._ece_pending = False
        self._cwr_pending = False
        #: Test instrumentation (Kühlewind et al.'s usability check):
        #: when set, the next ECT-eligible data segment is sent with
        #: ECN-CE already applied, as if a router had marked it.
        self.force_ce_once = False

        #: Unacknowledged segments: list of (seq, payload, flags).
        self._retx_queue: list[tuple[int, bytes, int]] = []
        self._retx_timer: Event | None = None
        self._retx_count = 0
        self._rto = rto_initial

        # Congestion control (RFC 5681 slow start/AIMD, RFC 6928
        # initial window, RFC 3168 §6.1.2 ECE-triggered reduction).
        #: Congestion window, in segments.
        self.cwnd: float = 10.0
        #: Slow-start threshold, in segments.
        self.ssthresh: float = 64.0
        #: Application bytes accepted but not yet transmitted (window-
        #: gated).
        self._send_queue: list[bytes] = []
        #: snd_nxt at the last window reduction: at most one reduction
        #: per window of data (RFC 3168 §6.1.2).
        self._last_reduction_mark = iss
        #: True when close() ran with data still queued; the FIN goes
        #: out once the send queue drains.
        self._fin_pending = False

        self.on_established: EstablishedFn | None = None
        self.on_data: DataFn | None = None
        self.on_close: CloseFn | None = None
        self.on_failure: FailureFn | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def key(self) -> tuple[int, int, int]:
        return (self.local_port, self.remote_addr, self.remote_port)

    def open_active(self) -> None:
        """Send the (possibly ECN-setup) SYN and enter SYN_SENT."""
        flags = SYN
        if self.use_ecn:
            flags |= ECE | CWR
        self.state = ConnState.SYN_SENT
        self._send_and_track(flags, b"", syn_or_fin=True)

    def send(self, data: bytes) -> None:
        """Queue application data for reliable, window-gated delivery."""
        if self.state not in (ConnState.ESTABLISHED, ConnState.CLOSE_WAIT):
            raise SocketError(f"cannot send in state {self.state.value}")
        for start in range(0, len(data), self.mss):
            self._send_queue.append(data[start : start + self.mss])
        self._pump_send_queue()

    @property
    def in_flight(self) -> int:
        """Unacknowledged segments currently in the network."""
        return len(self._retx_queue)

    def _pump_send_queue(self) -> None:
        """Transmit queued data while the congestion window allows."""
        while self._send_queue and self.in_flight < int(self.cwnd):
            chunk = self._send_queue.pop(0)
            self._send_and_track(ACK | PSH, chunk)
        if self._fin_pending and not self._send_queue:
            self._fin_pending = False
            self._send_and_track(FIN | ACK, b"", syn_or_fin=True)

    # ------------------------------------------------------------------
    # Congestion control
    # ------------------------------------------------------------------
    def _on_ack_progress(self, newly_acked_segments: int) -> None:
        """Grow cwnd: slow start below ssthresh, AIMD above."""
        for _ in range(newly_acked_segments):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0
            else:
                self.cwnd += 1.0 / self.cwnd
        self._pump_send_queue()

    def _congestion_reduce(self, to_one: bool = False) -> None:
        """Multiplicative decrease (ECE or retransmission timeout)."""
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0 if to_one else self.ssthresh
        self._last_reduction_mark = self.snd_nxt

    def close(self) -> None:
        """Begin an orderly shutdown (send FIN after any queued data)."""
        if self.state is ConnState.ESTABLISHED:
            self.state = ConnState.FIN_WAIT_1
        elif self.state is ConnState.CLOSE_WAIT:
            self.state = ConnState.LAST_ACK
        elif self.state in (ConnState.CLOSED, ConnState.FAILED, ConnState.TIME_WAIT):
            return
        else:
            self._teardown("aborted")
            return
        if self._send_queue:
            # Window-gated data is still waiting; the FIN must carry a
            # sequence number after it, so send it when the queue
            # drains (see _pump_send_queue).
            self._fin_pending = True
            return
        self._send_and_track(FIN | ACK, b"", syn_or_fin=True)

    def abort(self, reason: str = "aborted") -> None:
        """Tear the connection down immediately (send RST if useful)."""
        if self.state in (ConnState.CLOSED, ConnState.FAILED):
            return
        if self.state is not ConnState.SYN_SENT:
            self._emit(RST | ACK, b"")
        self._teardown(reason)

    # ------------------------------------------------------------------
    # Segment transmission
    # ------------------------------------------------------------------
    def _send_and_track(self, flags: int, payload: bytes, syn_or_fin: bool = False) -> None:
        seq = self.snd_nxt
        self.snd_nxt += len(payload) + (1 if syn_or_fin else 0)
        self._retx_queue.append((seq, payload, flags))
        self._emit(flags, payload, seq)
        self._arm_retx_timer()

    def _emit(self, flags: int, payload: bytes, seq: int | None = None) -> None:
        """Encode and hand one segment to the IP layer."""
        if seq is None:
            seq = self.snd_nxt
        if self._ece_pending and (flags & ACK):
            flags |= ECE
            self.ecn_stats.ece_sent += 1
        if self._cwr_pending and payload:
            flags |= CWR
            self._cwr_pending = False
            self.ecn_stats.cwr_sent += 1
        segment = TCPSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=self.rcv_nxt if (flags & ACK) else 0,
            flags=flags,
            mss=self.mss if (flags & SYN) else None,
            payload=payload,
        )
        # RFC 3168: only data segments of an ECN-negotiated connection
        # are ECT-marked; SYNs, pure ACKs and retransmissions of the
        # handshake are sent not-ECT.
        ecn_mark = ECN.NOT_ECT
        if self.ecn_active and payload:
            ecn_mark = ECN.ECT_0
            self.ecn_stats.ect_data_sent += 1
            if self.force_ce_once:
                ecn_mark = ECN.CE
                self.force_ce_once = False
        self.stack.transmit(self, segment, ecn_mark)

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------
    def _arm_retx_timer(self) -> None:
        if self._retx_timer is None and self._retx_queue:
            self._retx_timer = self.stack.scheduler.schedule(self._rto, self._on_retx_timeout)

    def _cancel_retx_timer(self) -> None:
        if self._retx_timer is not None:
            self._retx_timer.cancel()
            self._retx_timer = None

    def _on_retx_timeout(self) -> None:
        self._retx_timer = None
        if not self._retx_queue or self.state in (ConnState.CLOSED, ConnState.FAILED):
            return
        limit = self.syn_retries if self.state is ConnState.SYN_SENT else self.data_retries
        if self._retx_count >= limit:
            reason = "syn-timeout" if self.state is ConnState.SYN_SENT else "retx-timeout"
            self._teardown(reason)
            return
        self._retx_count += 1
        self._rto *= 2
        if self.state is not ConnState.SYN_SENT:
            self._congestion_reduce(to_one=True)
        seq, payload, flags = self._retx_queue[0]
        self._emit(flags, payload, seq)
        self._retx_timer = self.stack.scheduler.schedule(self._rto, self._on_retx_timeout)

    def _ack_retx_queue(self, ack: int) -> None:
        """Drop fully acknowledged segments; reset backoff on progress."""
        acked = 0
        while self._retx_queue:
            seq, payload, flags = self._retx_queue[0]
            seg_len = len(payload) + (1 if flags & (SYN | FIN) else 0)
            if ack >= seq + seg_len:
                self._retx_queue.pop(0)
                acked += 1
            else:
                break
        if acked:
            self.snd_una = ack
            self._retx_count = 0
            self._rto = self.rto_initial
            self._cancel_retx_timer()
            self._arm_retx_timer()
            self._on_ack_progress(acked)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def handle_segment(self, segment: TCPSegment, packet: IPv4Packet) -> None:
        """Process one arriving segment (called by the stack demux)."""
        if packet.ecn.is_ce:
            self.ecn_stats.ce_received += 1
            self._ece_pending = True
        if segment.flags & ECE and not (segment.flags & SYN):
            self.ecn_stats.ece_received += 1
            # RFC 3168 §6.1.2: react as if a packet were dropped —
            # halve the window, at most once per window of data — and
            # acknowledge with CWR on the next data segment.
            self._cwr_pending = True
            if segment.ack > self._last_reduction_mark or (
                self.snd_una > self._last_reduction_mark
            ):
                self._congestion_reduce()
        if segment.flags & CWR and not (segment.flags & SYN):
            self.ecn_stats.cwr_received += 1
            self._ece_pending = False

        if segment.flags & RST:
            self._handle_rst()
            return

        handler = _STATE_HANDLERS.get(self.state)
        if handler is not None:
            handler(self, segment)

    def _handle_rst(self) -> None:
        if self.state is ConnState.SYN_SENT:
            self._teardown("refused")
        else:
            self._teardown("reset")

    def _handle_syn_sent(self, segment: TCPSegment) -> None:
        if not segment.is_synack:
            return
        self.peer_syn_flags = segment.flags
        if self.use_ecn and segment.is_ecn_setup_synack:
            self.ecn_active = True
        self.rcv_nxt = (segment.seq + 1) & 0xFFFFFFFF
        self._ack_retx_queue(segment.ack)
        self.state = ConnState.ESTABLISHED
        self._emit(ACK, b"")
        if self.on_established is not None:
            self.on_established(self)

    def _handle_syn_rcvd(self, segment: TCPSegment) -> None:
        if segment.flags & ACK:
            self._ack_retx_queue(segment.ack)
            self.state = ConnState.ESTABLISHED
            if self.on_established is not None:
                self.on_established(self)
            # The ACK completing the handshake may carry data.
            if segment.payload or segment.flags & FIN:
                self._handle_established(segment)

    def _handle_established(self, segment: TCPSegment) -> None:
        if segment.flags & ACK:
            self._ack_retx_queue(segment.ack)
        self._absorb_payload(segment)
        if segment.flags & FIN and segment.seq == self.rcv_nxt:
            self.rcv_nxt = (self.rcv_nxt + 1) & 0xFFFFFFFF
            self.state = ConnState.CLOSE_WAIT
            self._emit(ACK, b"")
            if self.on_close is not None:
                self.on_close(self, "peer-fin")

    def _handle_fin_wait_1(self, segment: TCPSegment) -> None:
        if segment.flags & ACK:
            self._ack_retx_queue(segment.ack)
            if not self._retx_queue:
                self.state = ConnState.FIN_WAIT_2
        self._absorb_payload(segment)
        if segment.flags & FIN and segment.seq == self.rcv_nxt:
            self.rcv_nxt = (self.rcv_nxt + 1) & 0xFFFFFFFF
            self._emit(ACK, b"")
            self._enter_time_wait()

    def _handle_fin_wait_2(self, segment: TCPSegment) -> None:
        self._absorb_payload(segment)
        if segment.flags & FIN and segment.seq == self.rcv_nxt:
            self.rcv_nxt = (self.rcv_nxt + 1) & 0xFFFFFFFF
            self._emit(ACK, b"")
            self._enter_time_wait()

    def _handle_close_wait(self, segment: TCPSegment) -> None:
        if segment.flags & ACK:
            self._ack_retx_queue(segment.ack)

    def _handle_last_ack(self, segment: TCPSegment) -> None:
        if segment.flags & ACK:
            self._ack_retx_queue(segment.ack)
            if not self._retx_queue:
                self._teardown("closed")

    def _handle_time_wait(self, segment: TCPSegment) -> None:
        # Re-ACK a retransmitted FIN.
        if segment.flags & FIN:
            self._emit(ACK, b"")

    def _absorb_payload(self, segment: TCPSegment) -> None:
        if not segment.payload:
            return
        if segment.seq == self.rcv_nxt:
            self.rcv_nxt = (self.rcv_nxt + len(segment.payload)) & 0xFFFFFFFF
            self._emit(ACK, b"")
            if self.on_data is not None:
                self.on_data(self, segment.payload)
        else:
            # Out of order or duplicate: re-ACK what we have.
            self._emit(ACK, b"")

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _enter_time_wait(self) -> None:
        self.state = ConnState.TIME_WAIT
        self._cancel_retx_timer()
        self.stack.scheduler.schedule(1.0, self._time_wait_expired)
        if self.on_close is not None:
            self.on_close(self, "closed")

    def _time_wait_expired(self) -> None:
        if self.state is ConnState.TIME_WAIT:
            self._teardown_quiet()

    def _teardown(self, reason: str) -> None:
        failed = self.state is ConnState.SYN_SENT or reason in (
            "refused",
            "syn-timeout",
            "retx-timeout",
            "reset",
        )
        was_closed_cleanly = reason == "closed"
        self.state = ConnState.FAILED if failed else ConnState.CLOSED
        self._cancel_retx_timer()
        self.stack.forget(self)
        if failed and self.on_failure is not None:
            self.on_failure(self, reason)
        elif was_closed_cleanly and self.on_close is not None:
            self.on_close(self, reason)

    def _teardown_quiet(self) -> None:
        self.state = ConnState.CLOSED
        self._cancel_retx_timer()
        self.stack.forget(self)

    def __repr__(self) -> str:
        return (
            f"TCPConnection({self.local_port} <-> "
            f"{format_addr(self.remote_addr)}:{self.remote_port}, "
            f"{self.state.value}, ecn={self.ecn_active})"
        )


_STATE_HANDLERS = {
    ConnState.SYN_SENT: TCPConnection._handle_syn_sent,
    ConnState.SYN_RCVD: TCPConnection._handle_syn_rcvd,
    ConnState.ESTABLISHED: TCPConnection._handle_established,
    ConnState.FIN_WAIT_1: TCPConnection._handle_fin_wait_1,
    ConnState.FIN_WAIT_2: TCPConnection._handle_fin_wait_2,
    ConnState.CLOSE_WAIT: TCPConnection._handle_close_wait,
    ConnState.LAST_ACK: TCPConnection._handle_last_ack,
    ConnState.TIME_WAIT: TCPConnection._handle_time_wait,
}


@dataclass
class TCPListener:
    """A passive open: accepts connections on a port."""

    port: int
    on_connection: Callable[[TCPConnection], None]
    ecn_policy: ECNServerPolicy = ECNServerPolicy.IGNORE


class TCPStack:
    """Per-host TCP: port demux, listeners, and connection table."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        host.tcp = self
        self.listeners: dict[int, TCPListener] = {}
        self.connections: dict[tuple[int, int, int], TCPConnection] = {}
        self._next_iss = 1_000_000
        self._next_port = 33000
        self._next_ident = 1

    @property
    def scheduler(self):
        if self.host.network is None:
            raise SocketError(f"host {self.host.hostname!r} is not attached")
        return self.host.network.scheduler

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def listen(
        self,
        port: int,
        on_connection: Callable[[TCPConnection], None],
        ecn_policy: ECNServerPolicy = ECNServerPolicy.IGNORE,
    ) -> TCPListener:
        """Open a listening port."""
        if port in self.listeners:
            raise SocketError(f"TCP port {port} already listening on {self.host.hostname}")
        listener = TCPListener(port=port, on_connection=on_connection, ecn_policy=ecn_policy)
        self.listeners[port] = listener
        return listener

    def connect(
        self,
        remote_addr: int,
        remote_port: int,
        use_ecn: bool = False,
        syn_retries: int = 2,
        rto_initial: float = 1.0,
    ) -> TCPConnection:
        """Open an active connection; wire callbacks before events run."""
        local_port = self._allocate_port()
        conn = TCPConnection(
            stack=self,
            local_port=local_port,
            remote_addr=remote_addr,
            remote_port=remote_port,
            iss=self._allocate_iss(),
            use_ecn=use_ecn,
            syn_retries=syn_retries,
            rto_initial=rto_initial,
        )
        self.connections[conn.key] = conn
        # The SYN goes out on the next scheduler tick so the caller can
        # attach callbacks after connect() returns.
        self.scheduler.schedule(0.0, conn.open_active)
        return conn

    def _allocate_port(self) -> int:
        for _ in range(30000):
            candidate = self._next_port
            self._next_port += 1
            if self._next_port > 60999:
                self._next_port = 33000
            if all(key[0] != candidate for key in self.connections):
                return candidate
        raise SocketError("no ephemeral TCP ports left")

    def _allocate_iss(self) -> int:
        self._next_iss = (self._next_iss + 64000) & 0xFFFFFFFF
        return self._next_iss

    def forget(self, conn: TCPConnection) -> None:
        """Remove a connection from the demux table."""
        self.connections.pop(conn.key, None)

    def reset_ephemeral_state(self) -> None:
        """Return port/ISS/ident counters to their built state.

        Measurement-epoch boundary support: with these counters (and
        any lingering demux entries) reset, the stack issues the exact
        same ports and sequence numbers as a freshly constructed one,
        which the hermetic shard-replay contract relies on.  Listeners
        are configuration and survive the reset.
        """
        self.connections.clear()
        self._next_iss = 1_000_000
        self._next_port = 33000
        self._next_ident = 1

    # ------------------------------------------------------------------
    # IP interface
    # ------------------------------------------------------------------
    def transmit(self, conn: TCPConnection, segment: TCPSegment, ecn_mark: ECN) -> None:
        """Encode a segment into an IP packet and send it."""
        self._next_ident = (self._next_ident + 1) & 0xFFFF
        packet = IPv4Packet(
            src=self.host.addr,
            dst=conn.remote_addr,
            protocol=PROTO_TCP,
            payload=segment.encode(self.host.addr, conn.remote_addr),
            # tos_byte(0, ecn) is just the codepoint (DSCP 0 on every
            # stack-originated segment).
            tos=int(ecn_mark),
            ident=self._next_ident,
        )
        self.host.send_ip(packet)

    def deliver(self, packet: IPv4Packet, now: float) -> None:
        """Demux an arriving TCP/IP packet."""
        try:
            segment = TCPSegment.decode(packet.payload)
        except CodecError:
            return
        key = (segment.dst_port, packet.src, segment.src_port)
        conn = self.connections.get(key)
        if conn is not None:
            conn.handle_segment(segment, packet)
            return
        if segment.is_syn:
            self._handle_passive_open(segment, packet)
            return
        if not (segment.flags & RST):
            self._send_rst(segment, packet)

    def _handle_passive_open(self, segment: TCPSegment, packet: IPv4Packet) -> None:
        listener = self.listeners.get(segment.dst_port)
        if listener is None:
            self._send_rst(segment, packet)
            return
        policy = listener.ecn_policy
        ecn_requested = segment.is_ecn_setup_syn
        if ecn_requested and policy is ECNServerPolicy.DROP_ECN_SYN:
            return  # pathological server: pretend the SYN never arrived
        conn = TCPConnection(
            stack=self,
            local_port=segment.dst_port,
            remote_addr=packet.src,
            remote_port=segment.src_port,
            iss=self._allocate_iss(),
        )
        conn.peer_syn_flags = segment.flags
        conn.rcv_nxt = (segment.seq + 1) & 0xFFFFFFFF
        conn.state = ConnState.SYN_RCVD
        self.connections[conn.key] = conn
        listener.on_connection(conn)
        synack = SYN | ACK
        if ecn_requested and policy is ECNServerPolicy.NEGOTIATE:
            synack |= ECE
            conn.ecn_active = True
        elif ecn_requested and policy is ECNServerPolicy.REFLECT:
            synack |= ECE | CWR
        conn._send_and_track(synack, b"", syn_or_fin=True)

    def _send_rst(self, segment: TCPSegment, packet: IPv4Packet) -> None:
        seg_len = len(segment.payload) + (1 if segment.flags & (SYN | FIN) else 0)
        rst = TCPSegment(
            src_port=segment.dst_port,
            dst_port=segment.src_port,
            seq=segment.ack,
            ack=(segment.seq + seg_len) & 0xFFFFFFFF,
            flags=RST | ACK,
        )
        self._next_ident = (self._next_ident + 1) & 0xFFFF
        reply = IPv4Packet(
            src=self.host.addr,
            dst=packet.src,
            protocol=PROTO_TCP,
            payload=rst.encode(self.host.addr, packet.src),
            ident=self._next_ident,
        )
        self.host.send_ip(reply)
