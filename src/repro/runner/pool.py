"""A process pool shared by many concurrently running studies.

The :class:`~repro.runner.scheduler.ShardScheduler` normally owns its
executor outright: one study, one pool, torn down when the campaign
ends.  A long-lived study server inverts that — many studies in flight
at once, all multiplexed over **one** pool of worker processes so the
per-process world cache (:mod:`repro.runner.worker`) keeps paying off
across studies that share a ``(scale, seed)``.

:class:`SharedWorkerPool` provides that shared executor with the same
degradation and recovery semantics the owned path has:

* creation is lazy and capability-probed — on platforms where worker
  processes cannot start the pool acquires to ``None`` and every
  scheduler falls back to inline execution;
* a wedged or broken pool is *invalidated*, which tears the executor
  down and lets the next acquirer rebuild it.  Invalidation is keyed
  by the executor instance, so two studies discovering the same dead
  pool concurrently trigger exactly one rebuild;
* shards are pure functions of their job, so a rebuild that cancels
  another study's in-flight shards only costs that study a gang retry,
  never its determinism.
"""

from __future__ import annotations

import logging
import threading
import time

logger = logging.getLogger("repro.runner")


def _probe_worker() -> bool:
    """Trivial task proving worker processes actually start."""
    return True


class SharedWorkerPool:
    """One ``ProcessPoolExecutor`` multiplexed across studies.

    ``workers`` fixes the pool width for the pool's whole life; unlike
    the owned path the width is *not* clamped per campaign, because the
    pool serves many campaigns at once.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"a shared pool needs at least one worker: {workers!r}")
        self.workers = workers
        self._lock = threading.Lock()
        self._executor = None
        self._closed = False
        #: ``True`` once pool creation has failed terminally (platform
        #: cannot start worker processes); acquirers then get ``None``
        #: immediately instead of re-probing per study.
        self._unavailable = False
        #: Executors retired by :meth:`invalidate`; rebuilds count here.
        self.rebuilds = 0
        #: Monotonic stamp of the last successful :meth:`acquire`,
        #: ``None`` until the pool first hands out an executor.
        self._last_acquire: float | None = None

    # ------------------------------------------------------------------
    def acquire(self):
        """Return the live shared executor, or ``None`` when worker
        processes are unavailable on this platform (callers then run
        inline, exactly as the owned scheduler path degrades)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("shared worker pool is shut down")
            if self._unavailable:
                return None
            if self._executor is None:
                self._executor = self._build()
                if self._executor is None:
                    self._unavailable = True
            if self._executor is not None:
                self._last_acquire = time.monotonic()
            return self._executor

    def invalidate(self, executor) -> None:
        """Retire a dead/wedged executor so the next acquire rebuilds.

        Idempotent per executor instance: concurrent studies that both
        diagnose the same dead pool cause one teardown, one rebuild.
        """
        with self._lock:
            if executor is None or executor is not self._executor:
                return
            self._executor = None
            self.rebuilds += 1
        executor.shutdown(wait=False, cancel_futures=True)

    def describe(self) -> dict:
        """Liveness snapshot for health endpoints.

        ``workers_alive`` counts the executor's worker processes that
        are actually running right now; a lazily-unstarted pool reports
        ``started: False`` with zero alive, which is healthy (the first
        study will build it), while ``lost: True`` means the pool can
        no longer execute shards: the platform probe failed terminally,
        the pool was shut down, or every started worker process died.
        """
        with self._lock:
            executor = self._executor
            closed = self._closed
            unavailable = self._unavailable
            rebuilds = self.rebuilds
            last_acquire = self._last_acquire
        alive = 0
        started = executor is not None
        if started:
            # ProcessPoolExecutor keeps its worker Process objects in
            # `_processes`; private, but stable across the supported
            # CPythons and the only window into per-worker liveness.
            processes = getattr(executor, "_processes", None) or {}
            alive = sum(1 for process in processes.values() if process.is_alive())
        lost = closed or unavailable or (started and alive == 0)
        document = {
            "workers": self.workers,
            "workers_alive": alive,
            "started": started,
            "rebuilds": rebuilds,
            "lost": lost,
        }
        if last_acquire is not None:
            document["last_acquire_age_seconds"] = round(
                time.monotonic() - last_acquire, 3
            )
        return document

    def shutdown(self) -> None:
        """Tear the pool down for good (server shutdown path)."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    @staticmethod
    def _context():
        """A start method whose workers do not inherit the parent's
        descriptors.

        The shared pool lives inside a serving process: plain ``fork``
        would copy every accepted client socket into the workers, which
        then hold those connections open long after the handler closes
        them (clients never see EOF), and forking a threaded asyncio
        process is unsafe anyway.  ``forkserver`` (and ``spawn``) start
        workers from a freshly exec'd process instead.
        """
        import multiprocessing

        try:
            context = multiprocessing.get_context("forkserver")
            # Preload the shard worker so forks start hot.  (As with any
            # spawn-family context, the embedding __main__ must be
            # import-safe; the capability probe degrades to inline
            # execution when it is not.)
            context.set_forkserver_preload(["repro.runner.worker"])
            return context
        except ValueError:  # pragma: no cover - platform-dependent
            return multiprocessing.get_context("spawn")

    def _build(self):
        try:
            from concurrent.futures import ProcessPoolExecutor
        except ImportError as exc:  # pragma: no cover - exotic platforms
            logger.warning("process pools unavailable (%s); running inline", exc)
            return None
        try:
            executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._context()
            )
            # Same fail-fast capability probe as the owned path: surface
            # sandboxes without multiprocessing semaphores here, not in
            # the middle of somebody's campaign.
            executor.submit(_probe_worker).result(timeout=60)
            return executor
        except Exception as exc:  # noqa: BLE001 - capability probe
            logger.warning("cannot start worker processes (%s); running inline", exc)
            return None
