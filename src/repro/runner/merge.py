"""Deterministic reassembly of shard results.

Shard results cross the process boundary as plain dicts of lists and
scalars (a compact, version-tagged wire encoding — no pickled domain
objects, so worker and parent never disagree about class identity).
The decoders rebuild full-fidelity :class:`Trace` / :class:`PathTrace`
objects — including the hop fields (`rtt`, `quoted_tos`,
`quoted_ident`) that the archival JSON format drops — and the merge
functions reassemble them in exactly the order the sequential path
produces: traces ascending by ``trace_id`` (the schedule's plan
order), traceroutes by vantage build order.  Because every epoch is a
pure function of ``(params, epoch index)``, the merged study is
bit-identical to a sequential run; ``tests/runner/test_equivalence.py``
enforces that contract.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.traces import (
    HopObservation,
    PathTrace,
    Trace,
    TraceSet,
    TracerouteCampaign,
    _outcome_from_row,
    _outcome_to_row,
)

#: Wire-format tag carried by every shard result.
WIRE_FORMAT = "ecn-udp-shard/1"


class MergeError(ValueError):
    """A shard result could not be decoded or reassembled."""


# ----------------------------------------------------------------------
# Trace codec
# ----------------------------------------------------------------------
def encode_trace(trace: Trace) -> dict:
    """Trace -> wire dict (outcome rows *are* the archival row format).

    Sharing the archival row codec keeps the two encodings in lockstep:
    the QUIC extension (rows grow from 9 to 17 elements when the probe
    family runs) lives in one place, ``repro.core.traces``.
    """
    return {
        "trace_id": trace.trace_id,
        "vantage_key": trace.vantage_key,
        "batch": trace.batch,
        "started_at": trace.started_at,
        "outcomes": [_outcome_to_row(o) for o in trace.outcomes.values()],
    }


def decode_trace(data: dict) -> Trace:
    """Wire dict -> Trace (inverse of :func:`encode_trace`)."""
    trace = Trace(
        trace_id=data["trace_id"],
        vantage_key=data["vantage_key"],
        batch=data["batch"],
        started_at=data["started_at"],
    )
    for row in data["outcomes"]:
        trace.add(_outcome_from_row(row))
    return trace


# ----------------------------------------------------------------------
# Traceroute codec
# ----------------------------------------------------------------------
def encode_path(path: PathTrace) -> dict:
    """PathTrace -> wire dict, keeping the analysis-optional hop fields
    (rtt, quoted TOS/ident) the archival format deliberately drops."""
    return {
        "vantage_key": path.vantage_key,
        "dst_addr": path.dst_addr,
        "sent_ecn": path.sent_ecn,
        "reached_destination": path.reached_destination,
        "hops": [
            [
                hop.ttl,
                hop.responder,
                hop.sent_ecn,
                hop.quoted_ecn,
                hop.rtt,
                hop.quoted_tos,
                hop.quoted_ident,
            ]
            for hop in path.hops
        ],
    }


def decode_path(data: dict) -> PathTrace:
    """Wire dict -> PathTrace (inverse of :func:`encode_path`)."""
    path = PathTrace(
        vantage_key=data["vantage_key"],
        dst_addr=data["dst_addr"],
        sent_ecn=data["sent_ecn"],
        reached_destination=data["reached_destination"],
    )
    for ttl, responder, sent, quoted, rtt, tos, ident in data["hops"]:
        path.hops.append(
            HopObservation(
                ttl=ttl,
                responder=responder,
                sent_ecn=sent,
                quoted_ecn=quoted,
                rtt=rtt,
                quoted_tos=tos,
                quoted_ident=ident,
            )
        )
    return path


# ----------------------------------------------------------------------
# Reassembly
# ----------------------------------------------------------------------
def _check_format(result: dict) -> None:
    if result.get("format") != WIRE_FORMAT:
        raise MergeError(f"unknown shard wire format: {result.get('format')!r}")


def merge_traces(
    results: Iterable[dict],
    server_addrs: Sequence[int],
    description: str,
) -> TraceSet:
    """Reassemble trace-shard results into the sequential TraceSet.

    The sequential study appends traces in plan order, which is
    ascending ``trace_id`` by construction, so a sort restores it no
    matter how shards raced.  Duplicate ids (a shard retried after a
    partial failure whose first result nevertheless arrived) collapse
    to a single copy — both are bit-identical by the epoch contract.
    """
    by_id: dict[int, Trace] = {}
    for result in results:
        _check_format(result)
        for raw in result.get("traces", ()):
            trace = decode_trace(raw)
            by_id[trace.trace_id] = trace
    trace_set = TraceSet(server_addrs=list(server_addrs), description=description)
    trace_set.extend(by_id[trace_id] for trace_id in sorted(by_id))
    return trace_set


def collect_shard_spans(results: Iterable[dict]) -> dict[int, list[dict]]:
    """Gather per-shard span subtrees from wire results, deduplicated.

    Workers ship their span recorder's
    :meth:`~repro.obs.SpanRecorder.shard_exports` under the ``spans``
    key.  A shard observed twice (gang-recovery races) contributes one
    subtree — either copy is canonically identical by the span
    determinism contract.  Feed the result to
    :func:`repro.obs.assemble_study_spans`.
    """
    by_shard: dict[int, list[dict]] = {}
    for result in results:
        _check_format(result)
        for shard_id, spans in result.get("spans", {}).items():
            by_shard.setdefault(int(shard_id), spans)
    return by_shard


def collect_shard_events(results: Iterable[dict]) -> dict[int, list[dict]]:
    """Gather per-shard event buffers from wire results, deduplicated.

    Workers ship their event log's export under the ``events`` key.
    The same setdefault discipline as :func:`collect_shard_spans`: a
    shard observed twice contributes one buffer — either copy is
    identical by the event determinism contract (per-shard seqs, no
    wall stamps).  Feed the result to
    :func:`repro.obs.assemble_study_events`.
    """
    by_shard: dict[int, list[dict]] = {}
    for result in results:
        _check_format(result)
        events = result.get("events")
        if events:
            by_shard.setdefault(int(result["shard_id"]), events)
    return by_shard


def merge_campaign(
    results: Iterable[dict],
    vantage_order: Sequence[str],
) -> TracerouteCampaign:
    """Reassemble traceroute-shard results in vantage build order."""
    by_vantage: dict[str, list[PathTrace]] = {}
    for result in results:
        _check_format(result)
        raw_paths = result.get("paths")
        if not raw_paths:
            continue
        paths = [decode_path(raw) for raw in raw_paths]
        by_vantage[paths[0].vantage_key] = paths
    campaign = TracerouteCampaign()
    for key in vantage_order:
        campaign.extend(by_vantage.get(key, ()))
    return campaign
