"""Shard planning: partition a study into independent units of work.

A **shard** is the dispatch unit of the parallel runner: one
``(vantage, batch)`` slice of the trace schedule, or one vantage's
traceroute sweep.  Shards are deliberately coarser than measurement
epochs (every trace inside a shard still runs in its own hermetic
epoch — see :meth:`SyntheticInternet.begin_epoch`), so the grouping
affects only scheduling and transport overhead, never results: any
partition of the epoch set merges to the same study.

The ``(vantage, batch)`` granularity mirrors how real distributed ECN
campaigns operate — per-vantage probing agents reporting to a central
collector — and yields 16-26 trace shards plus 13 traceroute shards,
comfortably more than typical worker counts without drowning in
per-shard world-build overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.measurement import PlannedTrace, trace_plan
from ..scenario.parameters import TraceScheduleParams
from ..scenario.vantages import VANTAGES

#: Shard kinds.
KIND_TRACES = "traces"
KIND_TRACEROUTES = "traceroutes"


@dataclass(frozen=True)
class Shard:
    """One independently executable slice of a study.

    ``trace_ids`` is populated for :data:`KIND_TRACES` shards and holds
    the schedule's trace ids in ascending order; a traceroute shard
    covers every target from ``vantage_key`` and carries no ids.
    """

    shard_id: int
    kind: str
    vantage_key: str
    batch: int = 0
    trace_ids: tuple[int, ...] = ()

    def planned_traces(self) -> list[PlannedTrace]:
        """Rehydrate this shard's slice of the trace plan."""
        return [
            PlannedTrace(trace_id, self.vantage_key, self.batch)
            for trace_id in self.trace_ids
        ]

    def units(self, target_count: int) -> int:
        """Progress weight: traces for trace shards, probes-per-vantage
        (one unit per target) for traceroute shards."""
        if self.kind == KIND_TRACES:
            return len(self.trace_ids)
        return target_count

    def label(self) -> str:
        if self.kind == KIND_TRACES:
            return f"{self.vantage_key} (batch {self.batch})"
        return f"{self.vantage_key} (traceroutes)"


def shard_context_map(
    schedule: TraceScheduleParams,
    traceroutes: bool = True,
) -> dict[tuple[str, str, int], int]:
    """Map ``(kind, vantage, batch)`` execution contexts to shard ids.

    This is how the span recorder attributes work to shards without
    the measurement application knowing about sharding: the sequential
    study resolves every epoch through the full map, a worker through
    the entries of its own shard, and both mint identical span ids
    because the map is a pure function of the schedule.  Traceroute
    contexts use batch 0 (sweeps have no batch).
    """
    return {
        (shard.kind, shard.vantage_key, shard.batch): shard.shard_id
        for shard in plan_shards(schedule, traceroutes=traceroutes)
    }


def plan_shards(
    schedule: TraceScheduleParams,
    traceroutes: bool = True,
) -> list[Shard]:
    """Partition a study schedule into shards.

    Trace shards group the plan by ``(vantage, batch)`` in
    first-appearance order; traceroute shards follow, one per vantage
    in the paper's figure order (the same order the sequential
    campaign walks).
    """
    grouped: dict[tuple[str, int], list[int]] = {}
    for planned in trace_plan(schedule):
        grouped.setdefault((planned.vantage_key, planned.batch), []).append(
            planned.trace_id
        )
    shards = [
        Shard(
            shard_id=shard_id,
            kind=KIND_TRACES,
            vantage_key=vantage_key,
            batch=batch,
            trace_ids=tuple(trace_ids),
        )
        for shard_id, ((vantage_key, batch), trace_ids) in enumerate(grouped.items())
    ]
    if traceroutes:
        offset = len(shards)
        shards.extend(
            Shard(
                shard_id=offset + index,
                kind=KIND_TRACEROUTES,
                vantage_key=spec.key,
            )
            for index, spec in enumerate(VANTAGES)
        )
    return shards
