"""Shard execution inside a worker process.

A worker receives a :class:`ShardJob` — everything needed to rebuild
the study context from scratch: ``(scale, seed)`` to rebuild the
synthetic Internet through the canonical
:func:`~repro.scenario.parameters.params_for_scale` mapping, the probe
target list (discovery runs once, in the parent), and the shard to
execute.  Worlds are cached per process, so a worker pays the build
cost once and then runs any number of shards against it; hermetic
measurement epochs guarantee the execution order across shards cannot
influence results.

Observability rides along per job: ``observe`` installs a fresh
metrics registry, ``span_detail`` a fresh span recorder (its subtree
ships back in the wire result), ``profile_dir`` wraps the measurement
in :mod:`cProfile`, and ``flight_dir`` arms the process-wide crash
flight recorder — a bounded ring of span/fault/lifecycle events dumped
to ``flight-shard-<id>.json`` when a shard execution dies.

Fault injection (:class:`FaultSpec`) exists for the scheduler's
retry-path tests: a job can be told to raise — or hard-kill its worker
process — while its attempt counter is below a threshold, which
exercises exactly the recovery machinery a real crashed worker would.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from ..core.measurement import MeasurementApplication
from ..faults.events import FaultPlan
from ..obs.events import EventLog
from ..obs.flight import FlightRecorder
from ..obs.metrics import MetricsRegistry
from ..obs.spans import SpanRecorder
from ..scenario.internet import SyntheticInternet
from ..scenario.timeline import EpochDrift, drifted_params
from .merge import WIRE_FORMAT, encode_path, encode_trace
from .shard import KIND_TRACES, Shard, shard_context_map

#: Fault kinds understood by :func:`execute_shard`.
FAULT_RAISE = "raise"
FAULT_EXIT = "exit"
FAULT_HANG = "hang"


class InjectedShardFault(RuntimeError):
    """Deliberate failure raised by a :class:`FaultSpec` (tests only)."""


@dataclass(frozen=True)
class FaultSpec:
    """Fail a shard's first ``attempts`` executions (tests only).

    ``kind=FAULT_HANG`` sleeps ``hang_seconds`` before failing, wedging
    the worker long enough to trip the scheduler's global
    ``shard_timeout`` — the gang-recovery path a crashed worker never
    reaches (its future resolves immediately).
    """

    kind: str = FAULT_RAISE
    attempts: int = 1
    hang_seconds: float = 30.0


@dataclass(frozen=True)
class ShardJob:
    """A self-contained unit of work shipped to a worker process."""

    scale: float
    seed: int
    targets: tuple[int, ...]
    shard: Shard
    attempt: int = 0
    fault: FaultSpec | None = None
    #: When True the worker installs a fresh metrics registry around
    #: this shard and ships its snapshot (plus timing) in the result.
    observe: bool = False
    #: Chaos schedule applied by every worker identically (hashable, so
    #: it participates in the per-process world cache key).
    fault_plan: FaultPlan | None = None
    #: Span detail level (:data:`repro.obs.DETAIL_EPOCH` /
    #: :data:`~repro.obs.DETAIL_PROBE`); ``None`` records no spans.
    span_detail: str | None = None
    #: When True the worker buffers structured events (epoch starts,
    #: chaos installations) in a fresh per-shard EventLog and ships
    #: them back under the wire result's ``events`` key.
    events: bool = False
    #: Directory for crash flight-recorder dumps; ``None`` disarms.
    flight_dir: str | None = None
    #: Directory for per-shard cProfile dumps; ``None`` disables.
    profile_dir: str | None = None
    #: Run the QUIC ECN-validation probe family after the paper's four
    #: measurements.  Deliberately *not* part of the world-cache key:
    #: QUIC servers are always deployed, only the probing app changes.
    quic: bool = False
    #: Longitudinal drift applied to the scenario parameters before the
    #: world is built (hashable, so it joins the world-cache key next
    #: to the fault plan); ``None`` is the legacy undrifted world.
    drift: EpochDrift | None = None


#: Per-process world cache: building a synthetic Internet dominates
#: small-shard runtime, and every shard of a study shares one.  The
#: cache is a small LRU rather than single-entry: a long-lived shared
#: pool (``ecnudp serve``) interleaves shards of *different* studies on
#: one worker, and clearing on every key change would rebuild worlds
#: per shard instead of per study.  Insertion order is the LRU order.
_WORLD_CACHE: dict[
    tuple[float, int, FaultPlan | None, EpochDrift | None], SyntheticInternet
] = {}

#: Worlds kept per worker process.  Small on purpose: a full-scale
#: world is large, and a server mixing more than this many distinct
#: ``(scale, seed, plan)`` keys at once should pay rebuilds, not RAM.
WORLD_CACHE_SIZE = 4

#: Lifetime cache hits/misses for this worker process (observability
#: and the serve dedupe tests; not part of the shard wire format).
_WORLD_CACHE_STATS = {"hits": 0, "misses": 0}

#: Per-process flight recorder: the black box this worker dumps when a
#: shard execution dies.  One ring per process (not per shard) so the
#: tail can span a world rebuild or an earlier shard's spans.
_FLIGHT: FlightRecorder | None = None


def _world_for(
    scale: float,
    seed: int,
    fault_plan: FaultPlan | None = None,
    drift: EpochDrift | None = None,
) -> SyntheticInternet:
    key = (scale, seed, fault_plan, drift)
    world = _WORLD_CACHE.get(key)
    if world is None:
        _WORLD_CACHE_STATS["misses"] += 1
        # Evict least-recently-used worlds so long-lived pools don't
        # accumulate topologies beyond the budget.
        while len(_WORLD_CACHE) >= WORLD_CACHE_SIZE:
            _WORLD_CACHE.pop(next(iter(_WORLD_CACHE)))
        world = SyntheticInternet(drifted_params(scale, seed, drift))
        if fault_plan is not None:
            world.install_fault_plan(fault_plan)
        _WORLD_CACHE[key] = world
    else:
        _WORLD_CACHE_STATS["hits"] += 1
        # Move-to-end marks the key most recently used.
        _WORLD_CACHE[key] = _WORLD_CACHE.pop(key)
    return world


def world_cache_stats() -> dict:
    """This process's world-cache hit/miss counters (a copy)."""
    return dict(_WORLD_CACHE_STATS)


def _flight_recorder() -> FlightRecorder:
    global _FLIGHT
    if _FLIGHT is None:
        _FLIGHT = FlightRecorder(label="worker")
    return _FLIGHT


def _dump_flight(flight: FlightRecorder, job: ShardJob, reason: str) -> None:
    """Dump the worker's ring as this shard's black box."""
    flight.label = f"shard-{job.shard.shard_id}"
    flight.dump(
        job.flight_dir,
        reason=reason,
        shard_id=job.shard.shard_id,
        shard_label=job.shard.label(),
        attempt=job.attempt,
    )


def execute_shard(job: ShardJob) -> dict:
    """Run one shard to completion and return its wire-format result."""
    flight = _flight_recorder() if job.flight_dir is not None else None
    if flight:
        flight.record(
            "shard-start",
            shard=job.shard.shard_id,
            label=job.shard.label(),
            attempt=job.attempt,
        )
    try:
        result = _execute_shard(job, flight)
    except BaseException as exc:
        if flight is not None:
            flight.record(
                "shard-crash", shard=job.shard.shard_id, error=repr(exc)
            )
            _dump_flight(flight, job, reason=f"{type(exc).__name__}: {exc}")
        raise
    if flight:
        flight.record(
            "shard-done",
            shard=job.shard.shard_id,
            elapsed=round(result.get("elapsed", 0.0), 3),
        )
    return result


def _execute_shard(job: ShardJob, flight: FlightRecorder | None) -> dict:
    if job.fault is not None and job.attempt < job.fault.attempts:
        if flight is not None:
            # The injected crash fires before the measurement builds
            # its per-shard event log, so narrate the injection into a
            # fresh shard-scoped log first: the crash dump's event tail
            # then describes the *triggering* shard, never whatever
            # shard this worker process happened to run last.
            crash_log = None
            if job.events:
                crash_log = EventLog(stamp_wall=False, shard=job.shard.shard_id)
                crash_log.emit(
                    "fault-injected",
                    "warning",
                    fault=job.fault.kind,
                    attempt=job.attempt,
                )
            flight.attach_events(crash_log)
        if job.fault.kind == FAULT_EXIT:
            # Simulate a crashed/killed worker: bypass all exception
            # handling, including the executor's own bookkeeping.  The
            # flight recorder flushes first — standing in for the
            # persistent ring file a production recorder would keep,
            # which is exactly what survives a real SIGKILL.
            if flight is not None:
                flight.record("shard-killed", shard=job.shard.shard_id)
                _dump_flight(flight, job, reason="injected hard kill (os._exit)")
            os._exit(1)
        if job.fault.kind == FAULT_HANG:
            # Simulate a wedged worker.  The parent abandons the pool
            # when its hang budget expires; once the sleep ends this
            # raise lands in the abandoned executor and frees the
            # process, so tests don't leak sleeping workers past exit.
            if flight is not None:
                flight.record(
                    "shard-hang",
                    shard=job.shard.shard_id,
                    hang_seconds=job.fault.hang_seconds,
                )
            time.sleep(job.fault.hang_seconds)
        raise InjectedShardFault(
            f"injected failure for shard {job.shard.shard_id} "
            f"(attempt {job.attempt})"
        )
    world = _world_for(job.scale, job.seed, job.fault_plan, job.drift)
    app = MeasurementApplication(world, targets=list(job.targets), quic=job.quic)
    shard = job.shard
    result: dict = {
        "format": WIRE_FORMAT,
        "shard_id": shard.shard_id,
        "kind": shard.kind,
    }
    # A fresh registry per shard, installed only around the measurement
    # itself, makes per-shard snapshots partition the sequential run's
    # counters exactly: summing them reproduces the sequential totals
    # bit for bit.  Cached worlds outlive shards, so always uninstall.
    registry = MetricsRegistry() if job.observe else None
    if registry is not None:
        world.network.set_observability(registry)
    # Likewise a fresh span recorder per shard: its subtree ships back
    # in the result, and a retried shard re-records from scratch.
    spans = None
    if job.span_detail is not None:
        spans = SpanRecorder(
            detail=job.span_detail,
            context_map=shard_context_map(world.params.schedule),
            flight=flight,
        )
        world.set_span_recorder(spans)
    # And a fresh event log per shard: no wall stamps (shard events are
    # part of the determinism contract) and the same context map the
    # span recorder uses, so sequential and sharded runs mint identical
    # (shard, seq) pairs.  A retried shard re-emits from scratch.
    event_log = None
    if job.events:
        event_log = EventLog(
            stamp_wall=False,
            context_map=shard_context_map(world.params.schedule),
        )
        world.set_event_log(event_log)
    if flight is not None:
        # (Re)attach per job — also detaches a previous shard's log
        # when this job runs without events, so a crash dump never
        # carries a stale tail.  Not detached in the finally below:
        # the crash dump happens *after* that finally runs.
        flight.attach_events(event_log)
    profiler = None
    if job.profile_dir is not None:
        import cProfile

        profiler = cProfile.Profile()
    started = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    try:
        if shard.kind == KIND_TRACES:
            traces = app.run_planned(shard.planned_traces())
            result["traces"] = [encode_trace(trace) for trace in traces]
        else:
            paths = app.run_traceroute_vantage(shard.vantage_key)
            result["paths"] = [encode_path(path) for path in paths]
    finally:
        if profiler is not None:
            profiler.disable()
        if registry is not None:
            world.network.set_observability(None)
        if spans is not None:
            world.set_span_recorder(None)
        if event_log is not None:
            world.set_event_log(None)
    result["elapsed"] = time.perf_counter() - started
    if registry is not None:
        result["metrics"] = registry.snapshot()
    if spans is not None:
        result["spans"] = spans.shard_exports()
    if event_log is not None:
        result["events"] = event_log.export()
    if profiler is not None:
        directory = Path(job.profile_dir)
        directory.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(directory / f"profile-shard-{shard.shard_id}.pstats")
    return result
