"""repro.runner — sharded parallel campaign execution.

The sequential study walks its trace schedule one epoch at a time in a
single process.  This package partitions the same schedule into
independent **shards** — one per ``(vantage, batch)`` slice of the
trace plan, plus one per-vantage traceroute sweep — and executes them
across a pool of worker processes.  Each worker deterministically
rebuilds the synthetic Internet from ``(scale, seed)`` and runs its
shards inside hermetic measurement epochs, so the merged study is
**bit-identical** to a sequential run regardless of worker count,
shard ordering, or mid-campaign retries.

Layout:

- :mod:`~repro.runner.shard` — partition a schedule into shards
- :mod:`~repro.runner.worker` — execute one shard in a worker process
- :mod:`~repro.runner.scheduler` — dispatch, retries, pool recovery
- :mod:`~repro.runner.merge` — wire codec + deterministic reassembly
- :mod:`~repro.runner.progress` — fold shard completions into the
  sequential ``ProgressFn`` channel

The high-level entry point is :func:`run_study_parallel`, which
``Study.run(workers=N)`` and ``ecnudp study --workers N`` call.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Mapping, Sequence

from ..core.measurement import ProgressFn, trace_plan
from ..core.traces import TraceSet, TracerouteCampaign
from ..faults.events import FaultPlan
from ..obs import (
    FlightRecorder,
    MetricsRegistry,
    RunTelemetry,
    ShardRecord,
    assemble_study_events,
    assemble_study_spans,
    merge_snapshots,
)
from ..scenario.internet import SyntheticInternet
from ..scenario.timeline import EpochDrift, drifted_params
from .merge import (
    MergeError,
    WIRE_FORMAT,
    collect_shard_events,
    collect_shard_spans,
    decode_path,
    decode_trace,
    encode_path,
    encode_trace,
    merge_campaign,
    merge_traces,
)
from .pool import SharedWorkerPool
from .progress import ProgressAggregator, ProgressOverflowError
from .scheduler import RetryPolicy, ShardExecutionError, ShardScheduler
from .shard import KIND_TRACEROUTES, KIND_TRACES, Shard, plan_shards, shard_context_map
from .worker import (
    FAULT_EXIT,
    FAULT_HANG,
    FAULT_RAISE,
    FaultSpec,
    InjectedShardFault,
    ShardJob,
    execute_shard,
)

__all__ = [
    "FAULT_EXIT",
    "FAULT_HANG",
    "FAULT_RAISE",
    "FaultSpec",
    "InjectedShardFault",
    "KIND_TRACEROUTES",
    "KIND_TRACES",
    "MergeError",
    "ProgressAggregator",
    "ProgressOverflowError",
    "RetryPolicy",
    "Shard",
    "ShardExecutionError",
    "ShardJob",
    "ShardScheduler",
    "SharedWorkerPool",
    "WIRE_FORMAT",
    "collect_shard_events",
    "collect_shard_spans",
    "decode_path",
    "decode_trace",
    "encode_path",
    "encode_trace",
    "execute_shard",
    "merge_campaign",
    "merge_traces",
    "plan_shards",
    "run_study_parallel",
    "shard_context_map",
]


def run_study_parallel(
    scale: float,
    seed: int,
    workers: int,
    targets: Sequence[int] | None = None,
    world: SyntheticInternet | None = None,
    traceroutes: bool = True,
    progress: ProgressFn | None = None,
    retry: RetryPolicy | None = None,
    shard_timeout: float | None = None,
    faults: Mapping[int, "FaultSpec"] | None = None,
    fault_plan: FaultPlan | None = None,
    telemetry: RunTelemetry | None = None,
    observe: bool | None = None,
    span_detail: str | None = None,
    span_sink: list | None = None,
    event_sink: list | None = None,
    event_log=None,
    flight_dir: str | Path | None = None,
    profile_dir: str | Path | None = None,
    pool: SharedWorkerPool | None = None,
    quic: bool = False,
    drift: EpochDrift | None = None,
) -> tuple[TraceSet, TracerouteCampaign]:
    """Execute a full study as parallel shards and merge the results.

    The parent builds (or receives) the world and the probe-target
    list — discovery runs exactly once, in the parent — then ships
    only ``(scale, seed, targets, shard)`` to each worker.  Returns
    ``(TraceSet, TracerouteCampaign)`` bit-identical to what the
    sequential ``MeasurementApplication`` path produces.

    Passing a :class:`~repro.obs.RunTelemetry` turns observation on:
    every shard runs under a fresh worker-side metrics registry, and
    the telemetry object is filled in place with per-shard timing,
    runner counters, and the deterministic merge of all shard metric
    snapshots (deduplicated by shard id, so retries and recovery
    cannot double-count).  ``observe=False`` keeps the timing and
    runner counters but skips the worker-side registries — what the
    speedup benchmark wants, since per-packet counting is not free.

    ``faults`` maps shard ids to :class:`FaultSpec` and exists for the
    fault-tolerance tests; production callers never pass it.

    ``fault_plan`` is the simulation-level chaos schedule
    (:class:`~repro.faults.FaultPlan`).  It ships inside every
    :class:`ShardJob` and joins the worker's world-cache key, so each
    worker installs the identical plan before its epochs run — the
    merged chaotic study stays bit-identical to a sequential run given
    the same plan.

    ``pool`` executes the shards on a shared
    :class:`~repro.runner.pool.SharedWorkerPool` instead of an owned
    per-campaign executor — the study server's path, where many
    concurrent studies multiplex one pool and reuse each worker's
    per-process world cache across studies with the same
    ``(scale, seed)``.  ``workers`` is then informational only.

    ``span_detail`` turns on per-shard span recording at the given
    level; worker subtrees ship back in the wire results and the
    assembled study span list (root first, deduplicated by shard) is
    appended to ``span_sink``.  ``flight_dir`` arms crash flight
    recorders on both sides of the process boundary: workers dump
    ``flight-shard-<id>.json`` when a shard execution dies, and the
    parent dumps ``flight-parent.json`` on any scheduler recovery path
    (gang retry after a hang or pool loss, retry-budget exhaustion) or
    a :class:`ProgressOverflowError`.  ``profile_dir`` captures one
    cProfile stats file per shard execution.

    ``event_sink`` turns on per-shard structured event buffering:
    each worker runs under a fresh :class:`~repro.obs.EventLog`
    (epoch starts, chaos installations — no wall stamps), buffers ship
    back in the wire results, and the assembled study event list
    (ordered by ``(shard, seq)``, deduplicated by shard) is appended
    to the sink — byte-identical to a sequential run's log.
    ``event_log`` is different: a live, wall-clock
    :class:`~repro.obs.EventLog` (the serve layer's, or the study's
    own) that the parent-side scheduler narrates shard lifecycle into
    — dispatch, retries, gang recoveries, pool rebuilds.

    ``quic`` turns on the QUIC ECN-validation probe family in every
    shard's measurement application; it rides in the
    :class:`ShardJob` without joining the worker world-cache key.

    ``drift`` applies longitudinal drift
    (:class:`~repro.scenario.timeline.EpochDrift`) to the scenario
    parameters: the parent builds (or receives) the drifted world, and
    the drift ships inside every :class:`ShardJob`, joining the worker
    world-cache key so each worker rebuilds the identical drifted
    world.  ``None`` is the legacy undrifted path, bit for bit.
    """
    if world is None:
        world = SyntheticInternet(drifted_params(scale, seed, drift))
    if targets is None:
        targets = [server.addr for server in world.servers]
    target_tuple = tuple(targets)
    schedule = world.params.schedule
    plan = trace_plan(schedule)
    shards = plan_shards(schedule, traceroutes=traceroutes)
    fault_map = dict(faults) if faults else {}
    if observe is None:
        observe = telemetry is not None
    flight_path = str(flight_dir) if flight_dir is not None else None
    profile_path = str(profile_dir) if profile_dir is not None else None
    jobs = [
        ShardJob(
            scale=scale,
            seed=seed,
            targets=target_tuple,
            shard=shard,
            fault=fault_map.get(shard.shard_id),
            observe=observe,
            fault_plan=fault_plan,
            span_detail=span_detail,
            events=event_sink is not None,
            flight_dir=flight_path,
            profile_dir=profile_path,
            quic=quic,
            drift=drift,
        )
        for shard in shards
    ]
    aggregator = ProgressAggregator(
        progress, sum(shard.units(len(target_tuple)) for shard in shards)
    )
    parent_flight = (
        FlightRecorder(label="parent") if flight_path is not None else None
    )

    def on_complete(job: ShardJob, result: dict) -> None:
        aggregator.shard_completed(job.shard, job.shard.units(len(target_tuple)))
        if parent_flight:
            parent_flight.record(
                "shard-complete",
                shard=job.shard.shard_id,
                attempts=job.attempt + 1,
            )
        if telemetry is not None:
            telemetry.record_shard(
                ShardRecord(
                    shard_id=job.shard.shard_id,
                    kind=job.shard.kind,
                    label=job.shard.label(),
                    attempts=job.attempt + 1,
                    elapsed=float(result.get("elapsed", 0.0)),
                    units=job.shard.units(len(target_tuple)),
                )
            )

    runner_metrics = MetricsRegistry() if telemetry is not None else None
    scheduler = ShardScheduler(
        workers,
        retry=retry,
        shard_timeout=shard_timeout,
        metrics=runner_metrics,
        flight=parent_flight,
        flight_dir=flight_path,
        pool=pool,
        events=event_log,
    )
    started = time.perf_counter()
    try:
        results = scheduler.run(jobs, on_complete=on_complete)
    except ProgressOverflowError as exc:
        # Strict progress accounting tripped: the shard plan and the
        # completions disagree.  Leave the black box before aborting.
        if parent_flight is not None and flight_path is not None:
            parent_flight.record("progress-overflow", error=str(exc))
            parent_flight.dump(flight_path, reason=f"progress overflow: {exc}")
        raise
    if telemetry is not None:
        telemetry.workers = workers
        telemetry.wall_seconds = time.perf_counter() - started
        telemetry.runner = runner_metrics.snapshot()["counters"]
        if fault_plan is not None:
            telemetry.chaos = fault_plan.summary()
        # Completion order must not influence the merged metrics, and
        # a shard observed twice (gang recovery races) must count once.
        by_shard = {}
        for result in results:
            if "metrics" in result:
                by_shard.setdefault(result["shard_id"], result["metrics"])
        telemetry.merge_metrics(
            by_shard[shard_id] for shard_id in sorted(by_shard)
        )
    if span_sink is not None and span_detail is not None:
        # Same dedup-by-shard discipline as metrics, same assembly
        # path as the sequential recorder: bit-identical by design.
        span_sink.extend(assemble_study_spans(collect_shard_spans(results)))
    if event_sink is not None:
        event_sink.extend(assemble_study_events(collect_shard_events(results)))
    traces = merge_traces(
        (r for r in results if r["kind"] == KIND_TRACES),
        server_addrs=list(target_tuple),
        description=(
            "ECN/UDP reachability study: "
            f"{len(plan)} traces x {len(target_tuple)} servers"
        ),
    )
    campaign = (
        merge_campaign(
            (r for r in results if r["kind"] == KIND_TRACEROUTES),
            vantage_order=list(world.vantage_hosts),
        )
        if traceroutes
        else TracerouteCampaign()
    )
    return traces, campaign
