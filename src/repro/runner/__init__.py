"""repro.runner — sharded parallel campaign execution.

The sequential study walks its trace schedule one epoch at a time in a
single process.  This package partitions the same schedule into
independent **shards** — one per ``(vantage, batch)`` slice of the
trace plan, plus one per-vantage traceroute sweep — and executes them
across a pool of worker processes.  Each worker deterministically
rebuilds the synthetic Internet from ``(scale, seed)`` and runs its
shards inside hermetic measurement epochs, so the merged study is
**bit-identical** to a sequential run regardless of worker count,
shard ordering, or mid-campaign retries.

Layout:

- :mod:`~repro.runner.shard` — partition a schedule into shards
- :mod:`~repro.runner.worker` — execute one shard in a worker process
- :mod:`~repro.runner.scheduler` — dispatch, retries, pool recovery
- :mod:`~repro.runner.merge` — wire codec + deterministic reassembly
- :mod:`~repro.runner.progress` — fold shard completions into the
  sequential ``ProgressFn`` channel

The high-level entry point is :func:`run_study_parallel`, which
``Study.run(workers=N)`` and ``ecnudp study --workers N`` call.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.measurement import ProgressFn, trace_plan
from ..core.traces import TraceSet, TracerouteCampaign
from ..scenario.internet import SyntheticInternet
from ..scenario.parameters import params_for_scale
from .merge import (
    MergeError,
    WIRE_FORMAT,
    decode_path,
    decode_trace,
    encode_path,
    encode_trace,
    merge_campaign,
    merge_traces,
)
from .progress import ProgressAggregator
from .scheduler import RetryPolicy, ShardExecutionError, ShardScheduler
from .shard import KIND_TRACEROUTES, KIND_TRACES, Shard, plan_shards
from .worker import (
    FAULT_EXIT,
    FAULT_RAISE,
    FaultSpec,
    InjectedShardFault,
    ShardJob,
    execute_shard,
)

__all__ = [
    "FAULT_EXIT",
    "FAULT_RAISE",
    "FaultSpec",
    "InjectedShardFault",
    "KIND_TRACEROUTES",
    "KIND_TRACES",
    "MergeError",
    "ProgressAggregator",
    "RetryPolicy",
    "Shard",
    "ShardExecutionError",
    "ShardJob",
    "ShardScheduler",
    "WIRE_FORMAT",
    "decode_path",
    "decode_trace",
    "encode_path",
    "encode_trace",
    "execute_shard",
    "merge_campaign",
    "merge_traces",
    "plan_shards",
    "run_study_parallel",
]


def run_study_parallel(
    scale: float,
    seed: int,
    workers: int,
    targets: Sequence[int] | None = None,
    world: SyntheticInternet | None = None,
    traceroutes: bool = True,
    progress: ProgressFn | None = None,
    retry: RetryPolicy | None = None,
    shard_timeout: float | None = None,
    faults: Mapping[int, "FaultSpec"] | None = None,
) -> tuple[TraceSet, TracerouteCampaign]:
    """Execute a full study as parallel shards and merge the results.

    The parent builds (or receives) the world and the probe-target
    list — discovery runs exactly once, in the parent — then ships
    only ``(scale, seed, targets, shard)`` to each worker.  Returns
    ``(TraceSet, TracerouteCampaign)`` bit-identical to what the
    sequential ``MeasurementApplication`` path produces.

    ``faults`` maps shard ids to :class:`FaultSpec` and exists for the
    fault-tolerance tests; production callers never pass it.
    """
    if world is None:
        world = SyntheticInternet(params_for_scale(scale, seed))
    if targets is None:
        targets = [server.addr for server in world.servers]
    target_tuple = tuple(targets)
    schedule = world.params.schedule
    plan = trace_plan(schedule)
    shards = plan_shards(schedule, traceroutes=traceroutes)
    fault_map = dict(faults) if faults else {}
    jobs = [
        ShardJob(
            scale=scale,
            seed=seed,
            targets=target_tuple,
            shard=shard,
            fault=fault_map.get(shard.shard_id),
        )
        for shard in shards
    ]
    aggregator = ProgressAggregator(
        progress, sum(shard.units(len(target_tuple)) for shard in shards)
    )

    def on_complete(job: ShardJob, _result: dict) -> None:
        aggregator.shard_completed(job.shard, job.shard.units(len(target_tuple)))

    scheduler = ShardScheduler(workers, retry=retry, shard_timeout=shard_timeout)
    results = scheduler.run(jobs, on_complete=on_complete)
    traces = merge_traces(
        (r for r in results if r["kind"] == KIND_TRACES),
        server_addrs=list(target_tuple),
        description=(
            "ECN/UDP reachability study: "
            f"{len(plan)} traces x {len(target_tuple)} servers"
        ),
    )
    campaign = (
        merge_campaign(
            (r for r in results if r["kind"] == KIND_TRACEROUTES),
            vantage_order=list(world.vantage_hosts),
        )
        if traceroutes
        else TracerouteCampaign()
    )
    return traces, campaign
