"""Fault-tolerant shard scheduling over a process pool.

The scheduler owns the lifecycle of a campaign's shards: dispatch to a
``ProcessPoolExecutor``, collection in completion order, and recovery
when a shard fails or its worker dies outright.  Failures are retried
with capped exponential backoff up to a per-shard attempt budget; a
broken pool (a worker killed hard enough to take the executor down —
``BrokenProcessPool``) is rebuilt and the affected shards resubmitted.
Because every shard is a pure function of ``(params, shard)``, a retry
cannot produce a different result, so recovery never threatens the
determinism contract — it only threatens wall-clock time.

When ``workers <= 0``, or the platform cannot provide process pools at
all (no ``multiprocessing`` semaphores in a sandbox, for instance),
the scheduler degrades to in-process execution of the same jobs with
the same retry policy, preserving behaviour exactly — just without
the parallelism.
"""

from __future__ import annotations

import dataclasses
import logging
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from .worker import ShardJob, execute_shard

logger = logging.getLogger("repro.runner")

#: Completion callback: (job, wire-format result dict).
CompletionFn = Callable[[ShardJob, dict], None]


class ShardExecutionError(RuntimeError):
    """A shard kept failing after exhausting its retry budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before declaring a shard dead."""

    #: Total executions allowed per shard (first try included).
    max_attempts: int = 3
    #: Base delay before a retry; doubles per attempt.
    backoff: float = 0.25
    #: Upper bound on any single backoff delay.
    backoff_cap: float = 2.0

    def delay(self, attempt: int) -> float:
        return min(self.backoff * (2.0 ** max(attempt - 1, 0)), self.backoff_cap)


class ShardScheduler:
    """Run shard jobs across workers, retrying failures."""

    def __init__(
        self,
        workers: int,
        retry: RetryPolicy | None = None,
        shard_timeout: float | None = None,
        metrics=None,
        flight=None,
        flight_dir=None,
        pool=None,
        events=None,
    ) -> None:
        self.workers = workers
        self.retry = retry if retry is not None else RetryPolicy()
        #: Shared :class:`~repro.runner.pool.SharedWorkerPool` to
        #: execute on instead of an owned executor.  The scheduler then
        #: never tears the executor down itself — a dead/wedged pool is
        #: *invalidated* (one rebuild even if many concurrent studies
        #: diagnose it) and the pool outlives this campaign.
        self.pool = pool
        #: Seconds of *global* inactivity (no shard completing) after
        #: which the pool is presumed hung, torn down, and all
        #: in-flight shards resubmitted.  ``None`` disables the check.
        self.shard_timeout = shard_timeout
        #: Parent-side :mod:`repro.obs` registry for runner counters
        #: (``runner.shards_dispatched`` etc.); falsey when disabled.
        self.metrics = metrics
        #: Parent-side :class:`~repro.obs.FlightRecorder` capturing
        #: dispatch/retry/recovery decisions; dumped to ``flight_dir``
        #: whenever a recovery path fires (gang retry, pool rebuild,
        #: budget exhaustion), so even a run that ultimately succeeds
        #: leaves a black box of every brush with failure.
        self.flight = flight
        self.flight_dir = flight_dir
        #: Parent-side live :class:`~repro.obs.EventLog` the scheduler
        #: narrates shard lifecycle into (dispatch, retries, gang
        #: recoveries, pool rebuilds); falsey when disabled.  Distinct
        #: from the workers' deterministic per-shard logs — these
        #: events carry wall clocks and never join the merge contract.
        self.events = events

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[ShardJob],
        on_complete: CompletionFn | None = None,
    ) -> list[dict]:
        """Execute every job; returns results in completion order."""
        if not jobs:
            return []
        if self.metrics:
            self.metrics.incr("runner.shards_dispatched", len(jobs))
        if self.flight:
            self.flight.record(
                "dispatch", shards=len(jobs), workers=self.workers
            )
        if self.events:
            self.events.emit(
                "shard-dispatch", "info", shards=len(jobs), workers=self.workers
            )
        if self.pool is not None:
            return self._run_pooled(jobs, self.pool.acquire, on_complete)
        if self.workers <= 0:
            return self._run_inline(jobs, on_complete)
        executor_factory = self._executor_factory(len(jobs))
        if executor_factory is None:
            return self._run_inline(jobs, on_complete)
        return self._run_pooled(jobs, executor_factory, on_complete)

    # ------------------------------------------------------------------
    # Degraded path: same jobs, same retry policy, one process
    # ------------------------------------------------------------------
    def _run_inline(
        self,
        jobs: Sequence[ShardJob],
        on_complete: CompletionFn | None,
    ) -> list[dict]:
        results = []
        for job in jobs:
            while True:
                try:
                    result = execute_shard(job)
                except Exception as exc:  # noqa: BLE001 - retry boundary
                    job = self._next_attempt(job, exc)
                    continue
                break
            results.append(result)
            if on_complete is not None:
                on_complete(job, result)
        return results

    # ------------------------------------------------------------------
    # Pooled path
    # ------------------------------------------------------------------
    def _executor_factory(self, job_count: int):
        """Build a zero-arg executor constructor, or None if the
        platform cannot run process pools at all."""
        try:
            from concurrent.futures import ProcessPoolExecutor
        except ImportError as exc:  # pragma: no cover - exotic platforms
            logger.warning("process pools unavailable (%s); running inline", exc)
            return None
        max_workers = min(self.workers, job_count)

        def factory():
            try:
                executor = ProcessPoolExecutor(max_workers=max_workers)
                # Fail fast on platforms where pool *creation* succeeds
                # but workers cannot start (missing semaphores, locked-
                # down sandboxes): surface it here, not mid-campaign.
                executor.submit(_probe_worker).result(timeout=60)
                return executor
            except Exception as exc:  # noqa: BLE001 - capability probe
                logger.warning(
                    "cannot start worker processes (%s); running inline", exc
                )
                return None

        return factory

    def _run_pooled(
        self,
        jobs: Sequence[ShardJob],
        executor_factory,
        on_complete: CompletionFn | None,
    ) -> list[dict]:
        from concurrent.futures import FIRST_COMPLETED, CancelledError, wait
        from concurrent.futures.process import BrokenProcessPool

        executor = executor_factory()
        if executor is None:
            return self._run_inline(jobs, on_complete)
        results: list[dict] = []
        pending: dict = {}
        executor = self._submit_batch(
            executor, executor_factory, pending, list(jobs)
        )
        try:
            while pending:
                done, _ = wait(
                    pending, timeout=self.shard_timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Nothing completed within the hang budget: the
                    # pool is wedged.  Abandon it and start over with
                    # the shards still owed.
                    owed = list(pending.values())
                    pending.clear()
                    self._discard_executor(executor)
                    executor = self._require_executor(executor_factory)
                    pending = self._gang_retry(
                        executor, owed, TimeoutError("no shard completed in time")
                    )
                    continue
                completed: list[tuple[ShardJob, dict]] = []
                failed: list[tuple[ShardJob, Exception]] = []
                crashed: list[ShardJob] = []
                pool_error: Exception | None = None
                for future in done:
                    job = pending.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        crashed.append(job)
                        pool_error = exc
                    except CancelledError as exc:
                        # Only a pool teardown cancels in-flight futures
                        # (this scheduler never cancels its own): on a
                        # shared pool a sibling study's recovery tore
                        # the executor down under us.  Same treatment
                        # as a broken pool — gang retry on a fresh one.
                        crashed.append(job)
                        pool_error = exc
                    except Exception as exc:  # noqa: BLE001 - retry boundary
                        failed.append((job, exc))
                    else:
                        completed.append((job, result))
                for job, result in completed:
                    results.append(result)
                    if on_complete is not None:
                        on_complete(job, result)
                if crashed:
                    # A worker died hard and took the pool with it.  The
                    # executor cannot say which job it was running, so
                    # every uncollected shard is charged one attempt and
                    # resubmitted on a fresh pool: the guilty shard is
                    # guaranteed to burn budget, and a fault that keeps
                    # killing workers exhausts everyone and aborts.
                    owed = crashed + [job for job, _ in failed]
                    owed.extend(pending.values())
                    pending.clear()
                    self._discard_executor(executor)
                    executor = self._require_executor(executor_factory)
                    pending = self._gang_retry(executor, owed, pool_error)
                else:
                    retries = [
                        self._next_attempt(job, exc) for job, exc in failed
                    ]
                    executor = self._submit_batch(
                        executor, executor_factory, pending, retries
                    )
        finally:
            if self.pool is None:
                executor.shutdown(wait=False, cancel_futures=True)
        return results

    def _submit_batch(self, executor, executor_factory, pending, batch):
        """Submit jobs, surviving a shared executor dying mid-submit.

        On an owned pool ``submit`` cannot fail this way; on a shared
        pool a sibling study's recovery may shut the executor down
        between our ``wait`` and this submit, which raises
        ``RuntimeError``.  The unsubmitted remainder plus everything
        already in flight is then gang-retried on a fresh executor.
        Returns the (possibly replaced) executor.
        """
        for index, job in enumerate(batch):
            try:
                pending[executor.submit(execute_shard, job)] = job
            except RuntimeError as exc:
                owed = batch[index:] + list(pending.values())
                pending.clear()
                self._discard_executor(executor)
                executor = self._require_executor(executor_factory)
                pending.update(self._gang_retry(executor, owed, exc))
                break
        return executor

    def _discard_executor(self, executor) -> None:
        """Retire a dead executor: owned pools are shut down, shared
        pools are invalidated (one rebuild across all users)."""
        if self.pool is not None:
            self.pool.invalidate(executor)
        else:
            executor.shutdown(wait=False, cancel_futures=True)

    def _gang_retry(self, executor, owed, cause: Exception):
        """Charge one attempt to every shard still owed and resubmit.

        Used when failure cannot be attributed to a single shard (dead
        pool, global hang): one shared backoff, then all back in.
        """
        if self.flight:
            self.flight.record(
                "gang-recovery",
                cause=repr(cause),
                shards=[job.shard.shard_id for job in owed],
            )
            self._dump_flight(f"gang recovery: {cause}")
        if self.events:
            self.events.emit(
                "gang-recovery",
                "warning",
                cause=repr(cause),
                shards=[job.shard.shard_id for job in owed],
            )
        retries = [self._next_attempt(job, cause, sleep=False) for job in owed]
        if self.metrics:
            self.metrics.incr("runner.shards_recovered", len(retries))
        delay = max(
            (self.retry.delay(retry.attempt) for retry in retries), default=0.0
        )
        if delay > 0:
            time.sleep(delay)
        return {executor.submit(execute_shard, retry): retry for retry in retries}

    def _require_executor(self, executor_factory):
        if self.metrics:
            self.metrics.incr("runner.pool_rebuilds")
        if self.flight:
            self.flight.record("pool-rebuild")
        if self.events:
            self.events.emit("pool-rebuild", "warning")
        executor = executor_factory()
        if executor is None:
            self._dump_flight("worker pool died and could not be rebuilt")
            raise ShardExecutionError(
                "worker pool died and could not be rebuilt"
            )
        return executor

    def _dump_flight(self, reason: str) -> None:
        """Dump the parent black box (no-op when not armed)."""
        if self.flight is not None and self.flight_dir is not None:
            self.flight.dump(self.flight_dir, reason=reason)

    # ------------------------------------------------------------------
    # Retry bookkeeping
    # ------------------------------------------------------------------
    def _next_attempt(
        self, job: ShardJob, exc: Exception, sleep: bool = True
    ) -> ShardJob:
        attempt = job.attempt + 1
        if attempt >= self.retry.max_attempts:
            if self.flight:
                self.flight.record(
                    "budget-exhausted", shard=job.shard.shard_id, error=repr(exc)
                )
                self._dump_flight(
                    f"shard {job.shard.shard_id} exhausted its retry budget"
                )
            if self.events:
                self.events.emit(
                    "budget-exhausted",
                    "alert",
                    shard=job.shard.shard_id,
                    error=repr(exc),
                )
            raise ShardExecutionError(
                f"shard {job.shard.shard_id} ({job.shard.label()}) failed "
                f"after {attempt} attempts: {exc}"
            ) from exc
        if self.metrics:
            self.metrics.incr("runner.shards_retried")
        if self.flight:
            self.flight.record(
                "shard-retry", shard=job.shard.shard_id, attempt=attempt, error=repr(exc)
            )
        if self.events:
            self.events.emit(
                "shard-retry",
                "warning",
                shard=job.shard.shard_id,
                attempt=attempt,
                error=repr(exc),
            )
        delay = self.retry.delay(attempt)
        logger.warning(
            "shard %d (%s) failed (%s); retry %d/%d in %.2fs",
            job.shard.shard_id,
            job.shard.label(),
            exc,
            attempt,
            self.retry.max_attempts - 1,
            delay,
        )
        if sleep and delay > 0:
            time.sleep(delay)
        return dataclasses.replace(job, attempt=attempt)


def _probe_worker() -> bool:
    """Trivial task proving worker processes actually start."""
    return True
