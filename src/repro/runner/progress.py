"""Progress aggregation across shards.

The sequential study reports progress through a ``ProgressFn``
callback, one call per trace.  Shards complete out of order and in
parallel, so the aggregator folds per-shard completions back into
that same channel: each completion advances a monotone unit counter
(traces for trace shards, per-target probes for traceroute sweeps)
and reports the index of the last finished unit, keeping existing
consumers — the CLI's ``trace N/M`` line in particular — working
unchanged under the parallel runner.
"""

from __future__ import annotations

import logging
import threading

from ..core.measurement import ProgressFn
from .shard import Shard

logger = logging.getLogger("repro.runner")


class ProgressOverflowError(RuntimeError):
    """More units reported done than the campaign planned (strict mode)."""


class ProgressAggregator:
    """Fold unordered shard completions into a ``ProgressFn`` stream.

    ``strict=True`` turns unit-count overflows (a shard reported twice,
    or mis-planned totals) into :class:`ProgressOverflowError` instead
    of a logged warning; the displayed count is clamped either way so
    consumers never see ``N+1/N``.
    """

    def __init__(
        self,
        progress: ProgressFn | None,
        total_units: int,
        strict: bool = False,
    ) -> None:
        self._progress = progress
        self._total = total_units
        self._done = 0
        self._strict = strict
        # Completions arrive from whichever thread collects futures;
        # the lock keeps the counter and callback ordering coherent.
        self._lock = threading.Lock()

    @property
    def done_units(self) -> int:
        return self._done

    def shard_started(self, shard: Shard) -> None:
        """Announce dispatch (index of the first not-yet-done unit)."""
        if self._progress is None:
            return
        with self._lock:
            # After the last unit completes ``_done == _total``, and a
            # late dispatch announcement (a retry racing the final
            # completion) would display as ``N+1/N``.  Clamp to the
            # last valid index — consumers render ``index + 1``.
            index = min(self._done, self._total - 1) if self._total > 0 else 0
            self._progress(index, self._total, shard.label())

    def shard_completed(self, shard: Shard, units: int) -> None:
        """Record ``units`` finished units from ``shard``."""
        with self._lock:
            if self._done + units > self._total:
                # An overflow means the shard plan and the completions
                # disagree — a double-reported shard or a wrong total.
                # Never swallow it silently: the clamp below keeps the
                # display sane, but the bookkeeping bug must surface.
                message = (
                    f"progress overflow: {self._done} done + {units} from "
                    f"shard {shard.shard_id} ({shard.label()}) exceeds "
                    f"total {self._total}"
                )
                if self._strict:
                    raise ProgressOverflowError(message)
                logger.warning("%s", message)
            self._done = min(self._done + units, self._total)
            if self._progress is not None and units > 0:
                self._progress(self._done - 1, self._total, shard.label())
