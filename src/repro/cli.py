"""Command-line interface: run and report reproduction studies.

Usage (installed as ``ecnudp``, also ``python -m repro``):

* ``ecnudp study --scale 0.1 --seed 7 --out results/`` — build the
  synthetic Internet, discover the pool, run the trace schedule and
  the traceroute campaign, write the dataset and print the report.
* ``ecnudp report --study results/`` — re-analyse a saved study.
* ``ecnudp discover --scale 0.1`` — run only the DNS discovery phase.
* ``ecnudp traceroute --scale 0.1 --vantage ec2-virginia --server 0``
  — print one annotated traceroute.
* ``ecnudp serve --port 8750 --workers 2`` — run the multi-tenant
  study server (submit/monitor studies over HTTP).
* ``ecnudp studies --dir results/`` — enumerate a results tree's
  run-id index (migrating pre-index archives into it).

Exit codes: ``0`` success, ``2`` invalid arguments or unusable input
(missing/corrupt study directories included).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core.analysis import (
    DifferentialAnalysis,
    analyze_campaign,
    analyze_correlation,
    analyze_geography,
    analyze_quic_ecn,
    analyze_reachability,
    analyze_tcp_ecn,
)
from .core.discovery import PoolDiscovery
from .core.measurement import MeasurementApplication
from .core.traces import TraceSet, TracerouteCampaign
from .ioutil import atomic_write_text
from .netsim.ipv4 import format_addr
from .obs import (
    FilterError,
    MetricsRegistry,
    PathTracer,
    RunTelemetry,
    parse_filter,
    render_metrics_report,
)
from .reporting.export import (
    export_figure_data,
    export_metrics_json,
    export_spans_json,
    export_summary_json,
    export_telemetry_json,
    export_traces_csv,
)
from .reporting.report import full_report
from .scenario.internet import SyntheticInternet
from .scenario.timeline import EpochDrift, drifted_params


def _build_world(
    scale: float, seed: int, drift: EpochDrift | None = None
) -> SyntheticInternet:
    return SyntheticInternet(drifted_params(scale, seed, drift))


def _fail(message: str) -> int:
    """Print a one-line error and return the CLI's failure exit code."""
    print(message, file=sys.stderr)
    return 2


def _checked_world(scale: float, seed: int) -> SyntheticInternet:
    """Build a world, treating any out-of-range scale as input error.

    ``params_for_scale`` maps scales above 1 to the full paper scale;
    on the command line that is almost certainly a typo, so the CLI
    rejects it rather than silently running a 2500-server study.
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1]: {scale!r}")
    return _build_world(scale, seed)


def _analyses(world: SyntheticInternet, traces: TraceSet, campaign: TracerouteCampaign):
    geo = analyze_geography(traces.server_addrs, world.geo)
    reach = analyze_reachability(traces)
    diff_a = DifferentialAnalysis(traces, "plain-only")
    diff_b = DifferentialAnalysis(traces, "ect-only")
    tcp = analyze_tcp_ecn(traces)
    paths = analyze_campaign(campaign, world.noisy_as_map)
    corr = analyze_correlation(traces)
    # None when the study ran without the QUIC probe family — report
    # and export then reproduce the legacy artefacts byte for byte.
    quic_summary = analyze_quic_ecn(traces)
    quic = quic_summary if quic_summary.total else None
    return geo, reach, diff_a, diff_b, tcp, paths, corr, quic


def cmd_study(args: argparse.Namespace) -> int:
    trace_filter = getattr(args, "trace_packets", None)
    workers = args.workers
    if workers < 0:
        return _fail(f"--workers must be >= 0: {workers}")
    span_detail = getattr(args, "spans", None)
    profile = getattr(args, "profile", False)
    obs_dir = args.out if args.out else None
    if profile and obs_dir is None:
        return _fail("--profile needs --out to write profile dumps into")
    if trace_filter is not None:
        try:
            parse_filter(trace_filter)
        except FilterError as exc:
            return _fail(f"bad --trace-packets expression: {exc}")
        if workers > 0:
            # Per-packet event streams have no wire encoding, so they
            # cannot come back from shard workers.
            print(
                "--trace-packets requires sequential execution; "
                "ignoring --workers",
                file=sys.stderr,
            )
            workers = 0

    try:
        world = _checked_world(args.scale, args.seed)
    except ValueError as exc:
        return _fail(str(exc))
    print(f"built {world!r}", file=sys.stderr)

    fault_plan = None
    if args.chaos is not None:
        from .faults import generate_fault_plan

        try:
            fault_plan = generate_fault_plan(
                world, profile=args.chaos, chaos_seed=args.chaos_seed
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        summary = fault_plan.summary()
        print(
            f"chaos profile={summary['profile']} seed={summary['chaos_seed']}: "
            f"{summary['events']} events over "
            f"{summary['epochs_touched']} epochs",
            file=sys.stderr,
        )

    discovery = PoolDiscovery(
        world.vantage_hosts["ugla-wired"], world.dns_addr, world.pool.zone_names()
    )
    report = discovery.run()
    print(
        f"discovered {len(report)} servers in {report.sweeps} sweeps",
        file=sys.stderr,
    )

    def progress(done: int, total: int, label: str) -> None:
        print(f"trace {done + 1}/{total} from {label}", file=sys.stderr)

    metrics_snapshot = None
    telemetry = None
    spans = None
    events_list = None
    tracer = PathTracer(match=trace_filter) if trace_filter is not None else None
    if workers > 0:
        from .runner import run_study_parallel

        print(f"running sharded across {args.workers} workers", file=sys.stderr)
        telemetry = RunTelemetry() if args.metrics else None
        span_sink: list = []
        event_sink: list = []
        traces, campaign = run_study_parallel(
            scale=args.scale,
            seed=args.seed,
            workers=workers,
            targets=report.addresses,
            world=world,
            progress=progress if args.verbose else None,
            fault_plan=fault_plan,
            telemetry=telemetry,
            span_detail=span_detail,
            span_sink=span_sink if span_detail is not None else None,
            event_sink=event_sink if args.events else None,
            flight_dir=obs_dir,
            profile_dir=obs_dir if profile else None,
            quic=args.quic,
        )
        if span_detail is not None:
            spans = span_sink
        if args.events:
            events_list = event_sink
        if telemetry is not None:
            metrics_snapshot = telemetry.metrics
    else:
        registry = MetricsRegistry() if args.metrics else None
        if registry is not None or tracer is not None:
            world.network.set_observability(registry, tracer)
        recorder = None
        if span_detail is not None:
            from .obs import SpanRecorder
            from .runner.shard import shard_context_map

            recorder = SpanRecorder(
                detail=span_detail,
                context_map=shard_context_map(world.params.schedule),
            )
            world.set_span_recorder(recorder)
        event_log = None
        if args.events:
            from .obs import EventLog
            from .runner.shard import shard_context_map

            event_log = EventLog(
                stamp_wall=False,
                context_map=shard_context_map(world.params.schedule),
            )
            world.set_event_log(event_log)
        if fault_plan is not None:
            world.install_fault_plan(fault_plan)
        profiler = None
        if profile:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
        try:
            app = MeasurementApplication(world, targets=report.addresses, quic=args.quic)
            traces = app.run_study(progress=progress if args.verbose else None)
            campaign = app.run_traceroutes()
        finally:
            if profiler is not None:
                profiler.disable()
            if registry is not None or tracer is not None:
                world.network.set_observability(None, None)
            if recorder is not None:
                world.set_span_recorder(None)
            if event_log is not None:
                world.set_event_log(None)
            if fault_plan is not None:
                world.install_fault_plan(None)
        if recorder is not None:
            spans = recorder.export()
        if event_log is not None:
            events_list = event_log.export()
        if profiler is not None:
            out = Path(obs_dir)
            out.mkdir(parents=True, exist_ok=True)
            profiler.dump_stats(out / "profile-sequential.pstats")
        if registry is not None:
            metrics_snapshot = registry.snapshot()

    geo, reach, diff_a, diff_b, tcp, paths, corr, quic = _analyses(
        world, traces, campaign
    )
    text = full_report(geo, reach, diff_a, diff_b, tcp, campaign, paths, corr, quic=quic)

    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        manifest: dict = {"scale": args.scale, "seed": args.seed}
        if args.quic:
            manifest["quic"] = True
        if fault_plan is not None:
            manifest["chaos"] = fault_plan.summary()
        atomic_write_text(out / "manifest.json", json.dumps(manifest))
        traces.save(out / "traces.json")
        campaign.save(out / "traceroutes.json")
        export_summary_json(out / "summary.json", geo, reach, tcp, paths, corr, quic=quic)
        export_traces_csv(out / "traces.csv", traces)
        if metrics_snapshot is not None:
            export_metrics_json(out / "metrics.json", metrics_snapshot)
        if telemetry is not None:
            export_telemetry_json(out / "telemetry.json", telemetry)
        if spans is not None:
            from .obs import export_chrome_trace

            export_spans_json(out / "spans.json", spans)
            export_chrome_trace(spans, out / "trace.json")
        if events_list is not None:
            from .obs import canonical_events, render_events_jsonl

            atomic_write_text(
                out / "events.jsonl",
                render_events_jsonl(canonical_events(events_list)),
            )
        export_figure_data(
            out / "figures", reach, tcp, diff_a, diff_b, tcp.pct_negotiated
        )
        atomic_write_text(out / "report.txt", text + "\n")
        print(f"study written to {out}/", file=sys.stderr)
    print(text)
    if tracer is not None:
        print(f"\n== Packet trace ({trace_filter}) ==")
        dumped = tracer.dump(max_lines=args.trace_limit)
        print(dumped if dumped else "  (no packets matched)")
    if metrics_snapshot is not None:
        print()
        print(render_metrics_report(metrics_snapshot, telemetry))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    study = Path(args.study)
    metrics_path = study / "metrics.json"
    if not metrics_path.exists():
        return _fail(
            f"no metrics.json in {study}/ — re-run the study with "
            "`ecnudp study --metrics`"
        )
    try:
        snapshot = json.loads(metrics_path.read_text())
    except (OSError, ValueError) as exc:
        return _fail(f"unreadable {metrics_path}: {exc}")
    if getattr(args, "format", "text") == "prometheus":
        from .obs import render_prometheus

        print(render_prometheus(snapshot), end="")
        return 0
    telemetry = None
    telemetry_path = study / "telemetry.json"
    if telemetry_path.exists():
        try:
            document = json.loads(telemetry_path.read_text())
        except (OSError, ValueError) as exc:
            return _fail(f"unreadable {telemetry_path}: {exc}")
        telemetry = RunTelemetry(
            workers=document.get("workers", 0),
            wall_seconds=document.get("wall_seconds", 0.0),
            metrics=document.get("metrics", snapshot),
            runner=document.get("runner", {}),
        )
        from .obs import ShardRecord

        for entry in document.get("shards", []):
            telemetry.record_shard(ShardRecord(**entry))
    print(render_metrics_report(snapshot, telemetry))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if args.study is not None:
        study = Path(args.study)
    else:
        # --run-id: resolve the archive through the results index.
        from .serve import StudyIndex, StudyIndexError

        try:
            resolved = StudyIndex(args.dir).directory(args.run_id)
        except StudyIndexError as exc:
            return _fail(str(exc))
        if resolved is None:
            return _fail(f"run id {args.run_id!r} not in {args.dir}/index.json")
        study = resolved
    if not study.is_dir():
        return _fail(f"no study directory at {study}/")
    try:
        manifest = json.loads((study / "manifest.json").read_text())
        # Drifted archives (campaign epochs) carry their drift in the
        # manifest; rebuilding from (scale, seed) alone would analyse
        # the traces against the wrong world.
        drift = (
            EpochDrift.from_dict(manifest["drift"])
            if "drift" in manifest
            else None
        )
        world = _build_world(manifest["scale"], manifest["seed"], drift)
        traces = TraceSet.load(study / "traces.json")
        campaign = TracerouteCampaign.load(study / "traceroutes.json")
    except (OSError, ValueError, KeyError) as exc:
        return _fail(f"cannot load study from {study}/: {exc}")
    # ``quic`` is auto-detected from the loaded traces: archives
    # written with --quic carry the extended outcome rows.
    geo, reach, diff_a, diff_b, tcp, paths, corr, quic = _analyses(
        world, traces, campaign
    )
    print(full_report(geo, reach, diff_a, diff_b, tcp, campaign, paths, corr, quic=quic))
    dashboard = getattr(args, "dashboard", None)
    if dashboard is not None:
        from .obs import write_dashboard

        target = study / "dashboard.html" if dashboard == "" else Path(dashboard)
        written = write_dashboard(study, target)
        print(f"dashboard written to {written}", file=sys.stderr)
    return 0


def cmd_discover(args: argparse.Namespace) -> int:
    try:
        world = _checked_world(args.scale, args.seed)
    except ValueError as exc:
        return _fail(str(exc))
    discovery = PoolDiscovery(
        world.vantage_hosts["ugla-wired"], world.dns_addr, world.pool.zone_names()
    )
    report = discovery.run()
    print(
        f"{len(report)} servers discovered over {report.sweeps} sweeps "
        f"({report.queries_sent} queries, {report.queries_answered} answered)"
    )
    for addr in report.addresses[: args.limit]:
        print(f"  {format_addr(addr)}")
    if len(report) > args.limit:
        print(f"  ... and {len(report) - args.limit} more")
    return 0


def cmd_traceroute(args: argparse.Namespace) -> int:
    from .core.probes import run_traceroute

    try:
        world = _checked_world(args.scale, args.seed)
    except ValueError as exc:
        return _fail(str(exc))
    if args.vantage not in world.vantage_hosts:
        print(f"unknown vantage {args.vantage!r}; one of: "
              f"{', '.join(world.vantage_hosts)}", file=sys.stderr)
        return 2
    if not 0 <= args.server < len(world.servers):
        print(f"server index out of range (0..{len(world.servers) - 1})", file=sys.stderr)
        return 2
    target = world.servers[args.server]
    path = run_traceroute(
        world.vantage_hosts[args.vantage], target.addr, params=world.params.probes
    )
    print(f"traceroute to {target.hostname} ({format_addr(target.addr)}) "
          f"from {args.vantage}, ECT(0)-marked UDP")
    for hop in path.hops:
        if not hop.responded:
            print(f"{hop.ttl:3d}  *")
            continue
        mark = "ECT(0) intact" if hop.mark_preserved else "ECN field cleared"
        rtt = f"{hop.rtt * 1000:.1f} ms" if hop.rtt is not None else "-"
        print(f"{hop.ttl:3d}  {format_addr(hop.responder):15s}  {rtt:>9s}  {mark}")
    return 0


def cmd_tracebox(args: argparse.Namespace) -> int:
    from .core.tracebox import run_tracebox
    from .netsim.ecn import dscp_from_tos, ecn_from_tos

    try:
        world = _checked_world(args.scale, args.seed)
    except ValueError as exc:
        return _fail(str(exc))
    if args.vantage not in world.vantage_hosts:
        print(f"unknown vantage {args.vantage!r}", file=sys.stderr)
        return 2
    if not 0 <= args.server < len(world.servers):
        print(f"server index out of range (0..{len(world.servers) - 1})", file=sys.stderr)
        return 2
    target = world.servers[args.server]
    result = run_tracebox(
        world.vantage_hosts[args.vantage],
        target.addr,
        dscp=args.dscp,
        params=world.params.probes,
    )
    print(
        f"tracebox to {target.hostname} from {args.vantage} "
        f"(sent DSCP={args.dscp}, ECT(0))"
    )
    for hop in result.path.hops:
        if hop.responder is None or hop.quoted_tos is None:
            print(f"{hop.ttl:3d}  *")
            continue
        ecn = ecn_from_tos(hop.quoted_tos)
        dscp = dscp_from_tos(hop.quoted_tos)
        print(
            f"{hop.ttl:3d}  {format_addr(hop.responder):15s}  "
            f"quoted DSCP={dscp:<2d} ECN={ecn.describe()}"
        )
    print(f"verdict: {result.classify_tos_interference()}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .core.analysis.uncertainty import headline_intervals
    from .core.analysis.validation import validate_study

    try:
        world = _checked_world(args.scale, args.seed)
    except ValueError as exc:
        return _fail(str(exc))
    app = MeasurementApplication(world)
    traces = app.run_study()
    campaign = app.run_traceroutes()

    print("Headline statistics (bootstrap over traces):")
    for line in headline_intervals(traces).summary_lines():
        print(f"  {line}")

    print("\nInference quality vs deployed ground truth:")
    for quality in validate_study(world, traces, campaign):
        print(
            f"  {quality.name:<18} precision={quality.precision:.2f} "
            f"recall={quality.recall:.2f} f1={quality.f1:.2f}"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import logging

    from .serve import ServeConfig, run_server

    if not 0 <= args.port <= 65535:
        return _fail(f"--port must be in [0, 65535]: {args.port}")
    if args.workers < 0:
        return _fail(f"--workers must be >= 0: {args.workers}")
    if args.queue_depth < 1:
        return _fail(f"--queue-depth must be >= 1: {args.queue_depth}")
    if args.tenant_quota < 1:
        return _fail(f"--tenant-quota must be >= 1: {args.tenant_quota}")
    if args.max_concurrent < 1:
        return _fail(f"--max-concurrent must be >= 1: {args.max_concurrent}")
    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        tenant_quota=args.tenant_quota,
        max_concurrent=args.max_concurrent,
        data_dir=args.data_dir,
    )
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


def cmd_studies(args: argparse.Namespace) -> int:
    from .serve import StudyIndexError, migrate_results_root

    root = Path(args.dir)
    try:
        index, added = migrate_results_root(root)
    except StudyIndexError as exc:
        return _fail(str(exc))
    if added:
        print(f"indexed {len(added)} pre-index archive(s)", file=sys.stderr)
    entries = index.entries()
    if args.json:
        print(json.dumps({"studies": entries}, indent=2))
        return 0
    if not entries:
        print(f"no studies indexed under {root}/")
        return 0
    for run_id, entry in entries.items():
        tenant = entry.get("tenant", "-")
        print(
            f"{run_id:<16} {entry.get('status', '?'):<10} "
            f"scale={entry.get('scale')} seed={entry.get('seed')} "
            f"tenant={tenant} dir={entry.get('dir')}"
        )
    return 0


def _campaign_progress(verbose: bool):
    if not verbose:
        return None

    def progress(done: int, total: int, label: str) -> None:
        print(f"  [{done}/{total}] {label}", file=sys.stderr)

    return progress


def cmd_campaign_run(args: argparse.Namespace) -> int:
    from .campaign import CampaignDriver, CampaignError, CampaignSpec

    if args.workers < 0:
        return _fail(f"--workers must be >= 0: {args.workers}")
    if args.epochs < 1:
        return _fail(f"--epochs must be >= 1: {args.epochs}")
    try:
        spec = CampaignSpec(
            scale=args.scale,
            seed=args.seed,
            start_year=args.start_year,
            cadence_years=args.cadence,
            timeline=args.timeline,
            pool_churn=not args.no_pool_churn,
            chaos=args.chaos,
            chaos_seed=args.chaos_seed,
            quic=args.quic,
        )
        driver = CampaignDriver.create(
            args.dir,
            spec,
            target_epochs=args.epochs,
            workers=args.workers,
            progress=_campaign_progress(args.verbose),
        )
        executed = driver.run()
    except CampaignError as exc:
        return _fail(str(exc))
    print(
        f"campaign {args.dir}: ran {executed} epoch(s), "
        f"{len(driver.archive.checkpoints())}/{driver.archive.target_epochs} complete"
    )
    print(f"trend report: {driver.archive.report_path}")
    return 0


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    from .campaign import CampaignDriver, CampaignError

    if args.workers < 0:
        return _fail(f"--workers must be >= 0: {args.workers}")
    try:
        driver = CampaignDriver.resume(
            args.dir,
            target_epochs=args.epochs,
            workers=args.workers,
            progress=_campaign_progress(args.verbose),
        )
        executed = driver.run()
    except CampaignError as exc:
        return _fail(str(exc))
    print(
        f"campaign {args.dir}: ran {executed} epoch(s), "
        f"{len(driver.archive.checkpoints())}/{driver.archive.target_epochs} complete"
    )
    return 0


def cmd_campaign_status(args: argparse.Namespace) -> int:
    from .campaign import CampaignArchive, CampaignError, campaign_status

    try:
        archive = CampaignArchive.load(args.dir)
        status = campaign_status(archive)
    except CampaignError as exc:
        return _fail(str(exc))
    if args.json:
        print(json.dumps(status, indent=2))
        return 0
    print(f"campaign {status['directory']}")
    print(
        f"  timeline={status['spec']['timeline']} "
        f"scale={status['spec']['scale']} seed={status['spec']['seed']}"
    )
    print(
        f"  epochs: {status['completed_epochs']}/{status['target_epochs']} "
        f"complete, {status['merged_epochs']} merged"
        + (" — done" if status["complete"] else f", next epoch {status['next_epoch']}")
    )
    if status["years"]:
        print("  years: " + ", ".join(f"{y:.2f}" for y in status["years"]))
    if status["alerts"]:
        by_rule = ", ".join(
            f"{rule}={count}" for rule, count in status["alerts_by_rule"].items()
        )
        print(f"  SLO alerts: {status['alerts']} ({by_rule})")
    return 0


def cmd_campaign_report(args: argparse.Namespace) -> int:
    from .campaign import CampaignArchive, CampaignError, render_trend_report

    try:
        archive = CampaignArchive.load(args.dir)
        print(render_trend_report(archive), end="")
    except CampaignError as exc:
        return _fail(str(exc))
    dashboard = getattr(args, "dashboard", None)
    if dashboard is not None:
        from .obs import write_dashboard

        target = (
            archive.directory / "dashboard.html"
            if dashboard == ""
            else Path(dashboard)
        )
        written = write_dashboard(archive.directory, target)
        print(f"dashboard written to {written}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ecnudp",
        description="Reproduction of 'Is ECN usable with UDP?' (IMC 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    study = sub.add_parser("study", help="run the full measurement study")
    study.add_argument("--scale", type=float, default=0.1,
                       help="population scale vs the paper's 2500 servers")
    study.add_argument("--seed", type=int, default=20150401)
    study.add_argument("--out", type=str, default=None,
                       help="directory to write the dataset into")
    study.add_argument("--workers", type=int, default=0,
                       help="worker processes for sharded execution "
                            "(0 = sequential; results are identical)")
    study.add_argument("--metrics", action="store_true",
                       help="collect simulation metrics (counters are "
                            "identical for any --workers value)")
    study.add_argument("--quic", action="store_true",
                       help="also run the QUIC ECN-validation probe "
                            "family (RFC 9000 §13.4 count validation "
                            "against every server; results identical "
                            "for any --workers value)")
    study.add_argument("--chaos", type=str, default=None,
                       metavar="PROFILE",
                       help="inject deterministic faults from a chaos "
                            "profile (light/default/heavy/reroute); "
                            "results still identical for any --workers")
    study.add_argument("--chaos-seed", type=int, default=0,
                       help="seed for fault-plan generation (same seed "
                            "+ profile = same plan)")
    study.add_argument("--trace-packets", type=str, default=None,
                       metavar="EXPR",
                       help="trace packets matching a filter, e.g. "
                            "'udp and dst 10.3.0.7' (forces sequential)")
    study.add_argument("--trace-limit", type=int, default=200,
                       help="max packet-trace lines to print")
    study.add_argument("--spans", nargs="?", const="epoch",
                       choices=["epoch", "probe"], default=None,
                       metavar="DETAIL",
                       help="record the hierarchical span timeline "
                            "(epoch or probe detail; canonical form "
                            "identical for any --workers value); with "
                            "--out also writes spans.json + trace.json "
                            "(Perfetto / chrome://tracing)")
    study.add_argument("--events", action="store_true",
                       help="record the structured event log (epoch "
                            "starts, chaos installations; canonical "
                            "form identical for any --workers value); "
                            "with --out also writes events.jsonl")
    study.add_argument("--profile", action="store_true",
                       help="capture cProfile stats per shard (or one "
                            "sequential profile) into --out")
    study.add_argument("--verbose", action="store_true")
    study.set_defaults(func=cmd_study)

    report = sub.add_parser("report", help="re-analyse a saved study")
    target = report.add_mutually_exclusive_group(required=True)
    target.add_argument("--study", type=str, default=None,
                        help="study archive directory")
    target.add_argument("--run-id", type=str, default=None,
                        help="run id, resolved through <--dir>/index.json")
    report.add_argument("--dir", type=str, default="results",
                        help="results tree for --run-id resolution")
    report.add_argument("--dashboard", nargs="?", const="", default=None,
                        metavar="PATH",
                        help="also render the run dashboard (HTML, or "
                             "markdown for .md paths); defaults to "
                             "<study>/dashboard.html")
    report.set_defaults(func=cmd_report)

    metrics = sub.add_parser(
        "metrics", help="render a saved study's metrics and telemetry"
    )
    metrics.add_argument("--study", type=str, required=True)
    metrics.add_argument("--format", choices=["text", "prometheus"],
                         default="text",
                         help="output format: human-readable report, or "
                              "Prometheus text exposition 0.0.4 (counters, "
                              "gauges and histograms from metrics.json)")
    metrics.set_defaults(func=cmd_metrics)

    discover = sub.add_parser("discover", help="run pool discovery only")
    discover.add_argument("--scale", type=float, default=0.1)
    discover.add_argument("--seed", type=int, default=20150401)
    discover.add_argument("--limit", type=int, default=20)
    discover.set_defaults(func=cmd_discover)

    traceroute = sub.add_parser("traceroute", help="print one traceroute")
    traceroute.add_argument("--scale", type=float, default=0.1)
    traceroute.add_argument("--seed", type=int, default=20150401)
    traceroute.add_argument("--vantage", type=str, default="ugla-wired")
    traceroute.add_argument("--server", type=int, default=0)
    traceroute.set_defaults(func=cmd_traceroute)

    validate = sub.add_parser(
        "validate",
        help="run a study and score its inferences against ground truth",
    )
    validate.add_argument("--scale", type=float, default=0.05)
    validate.add_argument("--seed", type=int, default=20150401)
    validate.set_defaults(func=cmd_validate)

    tracebox = sub.add_parser(
        "tracebox", help="per-hop header diff (ECN + DSCP) to one server"
    )
    tracebox.add_argument("--scale", type=float, default=0.1)
    tracebox.add_argument("--seed", type=int, default=20150401)
    tracebox.add_argument("--vantage", type=str, default="ugla-wired")
    tracebox.add_argument("--server", type=int, default=0)
    tracebox.add_argument("--dscp", type=int, default=8)
    tracebox.set_defaults(func=cmd_tracebox)

    serve = sub.add_parser(
        "serve", help="run the multi-tenant HTTP study server"
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8750,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--workers", type=int, default=2,
                       help="shared worker-pool processes for sharded "
                            "study execution (0 = sequential threads)")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="max queued submissions before 429s")
    serve.add_argument("--tenant-quota", type=int, default=4,
                       help="max queued+running studies per tenant")
    serve.add_argument("--max-concurrent", type=int, default=2,
                       help="studies executing at once")
    serve.add_argument("--data-dir", type=str, default="results",
                       help="results tree (archives, index.json, "
                            "queue.json between restarts)")
    serve.set_defaults(func=cmd_serve)

    campaign = sub.add_parser(
        "campaign",
        help="longitudinal campaigns: recurring studies over a "
             "time-parameterised scenario",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    c_run = campaign_sub.add_parser(
        "run", help="create a campaign archive and run its epochs"
    )
    c_run.add_argument("--dir", type=str, required=True,
                       help="campaign archive directory (must not exist yet)")
    c_run.add_argument("--epochs", type=int, required=True,
                       help="number of epochs (simulated measurement rounds)")
    c_run.add_argument("--scale", type=float, default=0.1)
    c_run.add_argument("--seed", type=int, default=20150401)
    c_run.add_argument("--start-year", type=float, default=2015.33,
                       help="simulated calendar year of epoch 0 "
                            "(default: the paper's 2015 window)")
    c_run.add_argument("--cadence", type=float, default=1.0,
                       metavar="YEARS",
                       help="simulated years between epochs")
    c_run.add_argument("--timeline", type=str, default="fresh-look",
                       help="drift timeline (fresh-look/frozen)")
    c_run.add_argument("--no-pool-churn", action="store_true",
                       help="freeze the address pool across epochs "
                            "instead of re-deriving it per epoch")
    c_run.add_argument("--chaos", type=str, default=None, metavar="PROFILE",
                       help="run every epoch under a chaos profile")
    c_run.add_argument("--chaos-seed", type=int, default=0)
    c_run.add_argument("--quic", action="store_true",
                       help="include the QUIC ECN-validation probe family")
    c_run.add_argument("--workers", type=int, default=0,
                       help="worker processes per epoch (0 = sequential; "
                            "archives are identical)")
    c_run.add_argument("--verbose", action="store_true")
    c_run.set_defaults(func=cmd_campaign_run)

    c_resume = campaign_sub.add_parser(
        "resume",
        help="resume an interrupted campaign (validates checkpoints, "
             "discards crash leftovers, converges on the same bytes)",
    )
    c_resume.add_argument("--dir", type=str, required=True)
    c_resume.add_argument("--epochs", type=int, default=None,
                          help="optionally raise the epoch target")
    c_resume.add_argument("--workers", type=int, default=0)
    c_resume.add_argument("--verbose", action="store_true")
    c_resume.set_defaults(func=cmd_campaign_resume)

    c_status = campaign_sub.add_parser(
        "status", help="show a campaign's checkpoint state"
    )
    c_status.add_argument("--dir", type=str, required=True)
    c_status.add_argument("--json", action="store_true")
    c_status.set_defaults(func=cmd_campaign_status)

    c_report = campaign_sub.add_parser(
        "report", help="print the merged trend report"
    )
    c_report.add_argument("--dir", type=str, required=True)
    c_report.add_argument("--dashboard", nargs="?", const="", default=None,
                          metavar="PATH",
                          help="also render the campaign dashboard "
                               "(HTML, or markdown for .md paths); "
                               "defaults to <dir>/dashboard.html")
    c_report.set_defaults(func=cmd_campaign_report)

    studies = sub.add_parser(
        "studies", help="list a results tree's indexed runs"
    )
    studies.add_argument("--dir", type=str, default="results",
                        help="results tree holding index.json")
    studies.add_argument("--json", action="store_true",
                        help="emit the index as JSON")
    studies.set_defaults(func=cmd_studies)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
