"""A GeoLite2-City-like IP geolocation database.

The paper geolocates the discovered servers with MaxMind's GeoLite2
City snapshot of 25 April 2015.  We cannot redistribute that database,
so the scenario registers the prefixes it allocates together with the
country they were allocated for, and this module answers lookups the
way the real database does — including the realistic failure mode of
*unlocatable addresses* (Table 1's "Unknown" region), modelled as
prefixes deliberately registered without a location.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netsim.ipv4 import Prefix
from ..netsim.routing import PrefixTrie
from .regions import Country, Region


@dataclass(frozen=True)
class GeoRecord:
    """The result of a successful lookup."""

    country_code: str
    country_name: str
    region: Region
    latitude: float
    longitude: float


#: Sentinel record for registered-but-unlocatable prefixes.
UNKNOWN_RECORD = GeoRecord(
    country_code="--",
    country_name="Unknown",
    region=Region.UNKNOWN,
    latitude=0.0,
    longitude=0.0,
)


class GeoDatabase:
    """Prefix-indexed geolocation lookups."""

    def __init__(self) -> None:
        self._trie = PrefixTrie()
        self._size = 0

    def register(self, prefix: Prefix, record: GeoRecord) -> None:
        """Associate ``prefix`` with a location record."""
        self._trie.insert(prefix, record)
        self._size += 1

    def register_country(
        self,
        prefix: Prefix,
        country: Country,
        rng: random.Random | None = None,
        scatter_degrees: float = 3.0,
    ) -> GeoRecord:
        """Register a prefix as located in ``country``.

        Coordinates are scattered around the country centroid so the
        Figure 1 map shows a realistic point cloud rather than one dot
        per country.
        """
        lat, lon = country.latitude, country.longitude
        if rng is not None and scatter_degrees > 0:
            lat += rng.uniform(-scatter_degrees, scatter_degrees)
            lon += rng.uniform(-scatter_degrees, scatter_degrees)
            lat = max(-85.0, min(85.0, lat))
            lon = ((lon + 180.0) % 360.0) - 180.0
        record = GeoRecord(
            country_code=country.code,
            country_name=country.name,
            region=country.region,
            latitude=lat,
            longitude=lon,
        )
        self.register(prefix, record)
        return record

    def register_unknown(self, prefix: Prefix) -> None:
        """Register a prefix the database cannot place (Table 1 Unknown)."""
        self.register(prefix, UNKNOWN_RECORD)

    def lookup(self, addr: int) -> GeoRecord:
        """Locate an address; unregistered space is Unknown, like a miss
        against the real database."""
        record = self._trie.lookup_default(addr)
        return record if record is not None else UNKNOWN_RECORD

    def region_of(self, addr: int) -> Region:
        """Shortcut: just the region classification."""
        return self.lookup(addr).region

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"GeoDatabase({self._size} prefixes)"
