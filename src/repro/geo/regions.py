"""Geographic regions and countries used in the study.

Table 1 of the paper groups the 2500 discovered servers into six
regions (plus "Unknown" for addresses the GeoLite2 database cannot
place).  This module defines those regions, a realistic set of
countries per region (weighted roughly by 2015 NTP-pool membership,
which skewed heavily European), and the paper's target counts used by
the scenario calibration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Region(enum.Enum):
    """The continental regions of Table 1."""

    AFRICA = "Africa"
    ASIA = "Asia"
    AUSTRALIA = "Australia"
    EUROPE = "Europe"
    NORTH_AMERICA = "North America"
    SOUTH_AMERICA = "South America"
    UNKNOWN = "Unknown"

    @classmethod
    def ordered(cls) -> tuple["Region", ...]:
        """Regions in Table 1's row order."""
        return (
            cls.AFRICA,
            cls.ASIA,
            cls.AUSTRALIA,
            cls.EUROPE,
            cls.NORTH_AMERICA,
            cls.SOUTH_AMERICA,
            cls.UNKNOWN,
        )


#: Table 1 of the paper: NTP pool servers per region.
PAPER_REGION_COUNTS: dict[Region, int] = {
    Region.AFRICA: 22,
    Region.ASIA: 190,
    Region.AUSTRALIA: 68,
    Region.EUROPE: 1664,
    Region.NORTH_AMERICA: 522,
    Region.SOUTH_AMERICA: 32,
    Region.UNKNOWN: 2,
}

PAPER_TOTAL_SERVERS = 2500


@dataclass(frozen=True)
class Country:
    """A country: ISO code, region, centroid, and a pool-size weight."""

    code: str
    name: str
    region: Region
    latitude: float
    longitude: float
    weight: float


#: Countries per region, with weights approximating the 2015 pool's
#: national skew (e.g. Germany, France, UK, and the Netherlands hosted
#: a disproportionate share of European pool servers).
COUNTRIES: tuple[Country, ...] = (
    # Europe
    Country("de", "Germany", Region.EUROPE, 51.2, 10.4, 22.0),
    Country("fr", "France", Region.EUROPE, 46.6, 2.4, 12.0),
    Country("uk", "United Kingdom", Region.EUROPE, 54.0, -2.5, 11.0),
    Country("nl", "Netherlands", Region.EUROPE, 52.2, 5.3, 9.0),
    Country("se", "Sweden", Region.EUROPE, 62.0, 15.0, 5.0),
    Country("ch", "Switzerland", Region.EUROPE, 46.8, 8.2, 4.0),
    Country("it", "Italy", Region.EUROPE, 42.8, 12.6, 4.0),
    Country("pl", "Poland", Region.EUROPE, 52.1, 19.4, 4.0),
    Country("es", "Spain", Region.EUROPE, 40.2, -3.7, 3.0),
    Country("ru", "Russia", Region.EUROPE, 55.7, 37.6, 5.0),
    Country("fi", "Finland", Region.EUROPE, 64.9, 26.0, 3.0),
    Country("at", "Austria", Region.EUROPE, 47.6, 14.1, 3.0),
    Country("cz", "Czech Republic", Region.EUROPE, 49.8, 15.5, 3.0),
    Country("dk", "Denmark", Region.EUROPE, 56.0, 10.0, 2.0),
    Country("no", "Norway", Region.EUROPE, 61.0, 9.0, 2.0),
    Country("be", "Belgium", Region.EUROPE, 50.6, 4.7, 2.0),
    # North America
    Country("us", "United States", Region.NORTH_AMERICA, 39.8, -98.6, 20.0),
    Country("ca", "Canada", Region.NORTH_AMERICA, 56.1, -106.3, 4.0),
    Country("mx", "Mexico", Region.NORTH_AMERICA, 23.6, -102.5, 1.0),
    # Asia
    Country("jp", "Japan", Region.ASIA, 36.2, 138.3, 4.0),
    Country("cn", "China", Region.ASIA, 35.9, 104.2, 3.0),
    Country("sg", "Singapore", Region.ASIA, 1.35, 103.8, 2.0),
    Country("in", "India", Region.ASIA, 20.6, 79.0, 2.0),
    Country("kr", "South Korea", Region.ASIA, 35.9, 127.8, 1.5),
    Country("hk", "Hong Kong", Region.ASIA, 22.3, 114.2, 1.5),
    Country("tw", "Taiwan", Region.ASIA, 23.7, 121.0, 1.0),
    Country("id", "Indonesia", Region.ASIA, -0.8, 113.9, 1.0),
    # Australia / Oceania
    Country("au", "Australia", Region.AUSTRALIA, -25.3, 133.8, 3.0),
    Country("nz", "New Zealand", Region.AUSTRALIA, -40.9, 174.9, 1.0),
    # South America
    Country("br", "Brazil", Region.SOUTH_AMERICA, -14.2, -51.9, 2.0),
    Country("ar", "Argentina", Region.SOUTH_AMERICA, -38.4, -63.6, 0.7),
    Country("cl", "Chile", Region.SOUTH_AMERICA, -35.7, -71.5, 0.3),
    # Africa
    Country("za", "South Africa", Region.AFRICA, -30.6, 22.9, 1.2),
    Country("ke", "Kenya", Region.AFRICA, -0.02, 37.9, 0.4),
    Country("eg", "Egypt", Region.AFRICA, 26.8, 30.8, 0.4),
)


def countries_in_region(region: Region) -> tuple[Country, ...]:
    """All configured countries belonging to ``region``."""
    return tuple(c for c in COUNTRIES if c.region == region)


def country_by_code(code: str) -> Country | None:
    """Look up a country by its ISO code."""
    wanted = code.lower()
    for country in COUNTRIES:
        if country.code == wanted:
            return country
    return None
