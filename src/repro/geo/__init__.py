"""Synthetic IP geolocation (GeoLite2-City substitute)."""

from .database import GeoDatabase, GeoRecord, UNKNOWN_RECORD
from .regions import (
    COUNTRIES,
    Country,
    PAPER_REGION_COUNTS,
    PAPER_TOTAL_SERVERS,
    Region,
    countries_in_region,
    country_by_code,
)

__all__ = [
    "COUNTRIES",
    "Country",
    "GeoDatabase",
    "GeoRecord",
    "PAPER_REGION_COUNTS",
    "PAPER_TOTAL_SERVERS",
    "Region",
    "UNKNOWN_RECORD",
    "countries_in_region",
    "country_by_code",
]
