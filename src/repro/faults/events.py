"""Fault events and plans: the immutable schedule of impairments.

A :class:`FaultEvent` names one impairment pinned to one measurement
epoch: *which* piece of the world misbehaves (a link, a router, a
server), *when* within the epoch (a simulation-time window), and *how
hard* (a magnitude whose meaning depends on the kind).  A
:class:`FaultPlan` is a sorted tuple of events plus the provenance
needed to audit or regenerate it.

Plans are plain hashable values.  That single property carries the
whole determinism story: a plan can be shipped to a worker process
inside a :class:`~repro.runner.ShardJob`, used as part of the worker's
world-cache key, and compared for equality — and two runs given equal
plans install byte-for-byte identical impairments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from .profiles import ChaosProfile, resolve_profile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..scenario.internet import SyntheticInternet

#: Fault kinds.  ``target`` semantics per kind:
#:
#: - LINK_FLAP / DELAY_SPIKE — a directed link ``"srcRouter->dstRouter"``
#: - ROUTER_BLACKHOLE — a router id (epoch-scoped; forces a reroute)
#: - BLEACH_ON / BLEACH_OFF — a router id (policy toggled in-window)
#: - NTP_BROWNOUT — a server address (int, the service goes dark)
LINK_FLAP = "link_flap"
DELAY_SPIKE = "delay_spike"
ROUTER_BLACKHOLE = "router_blackhole"
BLEACH_ON = "bleach_on"
BLEACH_OFF = "bleach_off"
NTP_BROWNOUT = "ntp_brownout"

FAULT_KINDS = (
    LINK_FLAP,
    DELAY_SPIKE,
    ROUTER_BLACKHOLE,
    BLEACH_ON,
    BLEACH_OFF,
    NTP_BROWNOUT,
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled impairment.

    ``start`` is the offset in simulated seconds from the beginning of
    ``epoch``; ``duration`` is the window length.  ``magnitude`` means:
    loss probability during a :data:`LINK_FLAP`, added one-way delay in
    seconds for a :data:`DELAY_SPIKE`, strip probability for
    :data:`BLEACH_ON`; other kinds ignore it.  Router blackholes are
    epoch-scoped regardless of window (a reroute is a control-plane
    event, not a per-packet one), so their window is informational.
    """

    kind: str
    epoch: int
    target: str | int
    start: float = 0.0
    duration: float = float("inf")
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.epoch < 0:
            raise ValueError(f"epoch must be >= 0: {self.epoch!r}")
        if self.start < 0 or self.duration <= 0:
            raise ValueError(
                f"bad fault window: start={self.start!r} duration={self.duration!r}"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "epoch": self.epoch,
            "target": self.target,
            "start": self.start,
            "duration": self.duration,
            "magnitude": self.magnitude,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "FaultEvent":
        return cls(
            kind=document["kind"],
            epoch=int(document["epoch"]),
            target=document["target"],
            start=float(document["start"]),
            duration=float(document["duration"]),
            magnitude=float(document.get("magnitude", 0.0)),
        )


def _sort_key(event: FaultEvent) -> tuple:
    return (event.epoch, event.kind, str(event.target), event.start)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, hashable schedule of fault events.

    ``profile`` and ``chaos_seed`` record provenance (a hand-built plan
    may use ``profile="custom"``); equality and hashing cover the full
    event tuple, so equal plans injected anywhere yield equal worlds.
    """

    events: tuple[FaultEvent, ...] = ()
    profile: str = "custom"
    chaos_seed: int = 0

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=_sort_key))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def events_for_epoch(self, epoch: int) -> tuple[FaultEvent, ...]:
        """Events scheduled for one epoch, in canonical order."""
        index = self.__dict__.get("_by_epoch")
        if index is None:
            index = {}
            for event in self.events:
                index.setdefault(event.epoch, []).append(event)
            index = {key: tuple(value) for key, value in index.items()}
            object.__setattr__(self, "_by_epoch", index)
        return index.get(epoch, ())

    @property
    def epochs_touched(self) -> int:
        return len({event.epoch for event in self.events})

    def summary(self) -> dict:
        """Audit document: what this plan schedules, by kind."""
        by_kind: dict[str, int] = {}
        for event in self.events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        return {
            "profile": self.profile,
            "chaos_seed": self.chaos_seed,
            "events": len(self.events),
            "epochs_touched": self.epochs_touched,
            "by_kind": {kind: by_kind[kind] for kind in sorted(by_kind)},
        }

    def to_dict(self) -> dict:
        return {
            "profile": self.profile,
            "chaos_seed": self.chaos_seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, document: dict) -> "FaultPlan":
        return cls(
            events=tuple(
                FaultEvent.from_dict(entry) for entry in document.get("events", ())
            ),
            profile=document.get("profile", "custom"),
            chaos_seed=int(document.get("chaos_seed", 0)),
        )


# ----------------------------------------------------------------------
# Plan generation
# ----------------------------------------------------------------------
def _plan_stream(scenario_seed: int, chaos_seed: int, profile_name: str) -> int:
    """Mix the seeds so nearby (scenario, chaos) pairs decorrelate."""
    mixed = (scenario_seed * 0x9E3779B97F4A7C15 + chaos_seed * 1_000_003) & (
        (1 << 64) - 1
    )
    for char in profile_name:
        mixed = (mixed * 31 + ord(char)) & ((1 << 64) - 1)
    mixed ^= mixed >> 29
    mixed = (mixed * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
    return mixed ^ (mixed >> 32)


def _fault_inventory(world: "SyntheticInternet") -> dict:
    """Sorted target inventories; sorted so sampling is reproducible."""
    links = sorted(
        f"{src}->{dst}" for src, dst in world.topology.graph.edges
    )
    # Never blackhole the measurement apparatus: every router in a
    # vantage AS (the chains are linear, so losing the border cuts the
    # vantage off entirely) and the DNS infrastructure AS.
    protected: set[str] = set()
    for info in world.vantage_as.values():
        protected.update(info.router_ids)
    protected.update(world._infra_as.router_ids)
    routers = sorted(
        router_id
        for router_id in world.topology.routers
        if router_id not in protected
    )
    bleached = sorted(world.ground_truth.bleacher_routers)
    unbleached = sorted(set(routers) - set(bleached))
    servers = sorted(server.addr for server in world.servers)
    return {
        "links": links,
        "routers": routers,
        "bleached": bleached,
        "unbleached": unbleached,
        "servers": servers,
    }


def _window(rng: random.Random, profile: ChaosProfile) -> tuple[float, float]:
    """Sample an event window (start offset, duration) in epoch time."""
    if rng.random() < profile.whole_epoch_fraction:
        return 0.0, float("inf")
    start = rng.uniform(0.0, profile.window_start_max)
    low, high = profile.duration_range
    return start, rng.uniform(low, high)


def generate_fault_plan(
    world: "SyntheticInternet",
    profile: str | ChaosProfile = "default",
    chaos_seed: int = 0,
) -> FaultPlan:
    """Sample a :class:`FaultPlan` for one world.

    The plan is a pure function of ``(world params, profile,
    chaos_seed)``: target inventories are walked in sorted order and
    all randomness comes from a private stream, so the parent process
    and any worker that rebuilds the same world would generate the
    same plan — although in practice only the parent generates, and
    workers receive the finished value.

    Vantage access routers and the DNS host's router are never
    blackholed: chaos must degrade measurements, not disconnect the
    measurement apparatus itself (the paper's vantages stayed up; its
    *paths* did not).
    """
    spec = resolve_profile(profile)
    rng = random.Random(
        _plan_stream(world.params.seed, chaos_seed, spec.name)
    )
    inventory = _fault_inventory(world)
    epochs = world.params.schedule.total_traces + len(world.vantage_hosts)
    events: list[FaultEvent] = []

    def emit(kind: str, targets: list, rate: float, magnitude: float) -> None:
        if not targets:
            return
        for epoch in range(epochs):
            if rng.random() >= rate:
                continue
            start, duration = _window(rng, spec)
            events.append(
                FaultEvent(
                    kind=kind,
                    epoch=epoch,
                    target=rng.choice(targets),
                    start=start,
                    duration=duration,
                    magnitude=magnitude,
                )
            )

    emit(LINK_FLAP, inventory["links"], spec.link_flap_rate, spec.flap_loss)
    emit(DELAY_SPIKE, inventory["links"], spec.delay_spike_rate, spec.spike_delay)
    emit(ROUTER_BLACKHOLE, inventory["routers"], spec.blackhole_rate, 0.0)
    emit(BLEACH_ON, inventory["unbleached"], spec.bleach_on_rate, 1.0)
    emit(BLEACH_OFF, inventory["bleached"], spec.bleach_off_rate, 0.0)
    emit(NTP_BROWNOUT, inventory["servers"], spec.brownout_rate, 0.0)

    return FaultPlan(
        events=tuple(events), profile=spec.name, chaos_seed=chaos_seed
    )


def merge_plans(plans: Iterable[FaultPlan]) -> FaultPlan:
    """Union several plans into one (profiles compose additively)."""
    merged: list[FaultEvent] = []
    names: list[str] = []
    seed = 0
    for plan in plans:
        merged.extend(plan.events)
        names.append(plan.profile)
        seed = seed or plan.chaos_seed
    return FaultPlan(
        events=tuple(merged), profile="+".join(names) or "custom", chaos_seed=seed
    )
