"""Named chaos profiles: how hostile should the Internet be today?

A profile bundles per-epoch event rates and impairment strengths into
a preset the CLI can name (``ecnudp study --chaos heavy``).  Rates are
Bernoulli probabilities per (fault family, epoch); an epoch is one
trace of the study schedule or one vantage's traceroute sweep, so a
rate of 0.08 impairs roughly one epoch in twelve.

Profiles only parameterise :func:`~repro.faults.events.generate_fault_plan`;
the generated :class:`~repro.faults.events.FaultPlan` is the actual
contract object, and hand-built plans never need a profile at all.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChaosProfile:
    """Event rates and strengths for plan generation."""

    name: str
    #: Per-epoch probability of one link flapping (lossy window).
    link_flap_rate: float = 0.0
    #: Per-epoch probability of one link developing a delay spike.
    delay_spike_rate: float = 0.0
    #: Per-epoch probability of one router blackholing (forces reroute).
    blackhole_rate: float = 0.0
    #: Per-epoch probability of a clean router starting to bleach.
    bleach_on_rate: float = 0.0
    #: Per-epoch probability of a deployed bleacher going dormant.
    bleach_off_rate: float = 0.0
    #: Per-epoch probability of one NTP server browning out.
    brownout_rate: float = 0.0
    #: Loss probability on a flapped link while the window is active.
    flap_loss: float = 0.9
    #: Added one-way delay (seconds) during a delay spike.
    spike_delay: float = 0.35
    #: Fraction of windows covering the whole epoch (the rest are
    #: sub-windows, producing genuinely mid-measurement transitions).
    whole_epoch_fraction: float = 0.5
    #: Sub-window start offset bound (seconds into the epoch).
    window_start_max: float = 240.0
    #: Sub-window duration bounds (seconds).
    duration_range: tuple[float, float] = (30.0, 360.0)

    def __post_init__(self) -> None:
        for attr in (
            "link_flap_rate",
            "delay_spike_rate",
            "blackhole_rate",
            "bleach_on_rate",
            "bleach_off_rate",
            "brownout_rate",
            "flap_loss",
            "whole_epoch_fraction",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} out of range: {value!r}")


PROFILES: dict[str, ChaosProfile] = {
    profile.name: profile
    for profile in (
        ChaosProfile(
            name="light",
            link_flap_rate=0.02,
            delay_spike_rate=0.02,
            blackhole_rate=0.01,
            bleach_on_rate=0.01,
            bleach_off_rate=0.01,
            brownout_rate=0.02,
        ),
        ChaosProfile(
            name="default",
            link_flap_rate=0.08,
            delay_spike_rate=0.08,
            blackhole_rate=0.03,
            bleach_on_rate=0.04,
            bleach_off_rate=0.03,
            brownout_rate=0.06,
        ),
        ChaosProfile(
            name="heavy",
            link_flap_rate=0.25,
            delay_spike_rate=0.25,
            blackhole_rate=0.10,
            bleach_on_rate=0.12,
            bleach_off_rate=0.10,
            brownout_rate=0.20,
            flap_loss=1.0,
            spike_delay=0.6,
        ),
        # Routing churn only: isolates the reroute/cache-invalidation
        # machinery for experiments on path stability (§4.2's repeated
        # traceroutes see routes change between sweeps).
        ChaosProfile(
            name="reroute",
            blackhole_rate=0.25,
        ),
    )
}


def resolve_profile(profile: str | ChaosProfile) -> ChaosProfile:
    """Look up a profile by name (or pass one through)."""
    if isinstance(profile, ChaosProfile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise ValueError(
            f"unknown chaos profile {profile!r}; one of: {known}"
        ) from None
