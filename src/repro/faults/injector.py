"""Applies a fault plan at measurement-epoch boundaries.

The injector is owned by a :class:`~repro.scenario.internet.SyntheticInternet`
and driven from :meth:`begin_epoch`: entering epoch ``i`` first
*reverts* every impairment installed for the previous epoch (restoring
the pristine baseline the world was built with), then installs exactly
the events the plan schedules for ``i``.  Installation draws no
randomness and reads no wall clock, so a faulted epoch remains a pure
function of ``(params, epoch index, plan)`` — the property the
sharded-equals-sequential guarantee rests on.

Fault events are surfaced through the :mod:`repro.obs` metrics
registry when one is installed (``faults.<kind>`` counters plus
``faults.epochs_impaired``), making a chaotic run auditable: the
merged shard counters of a ``workers=N`` chaotic study equal the
sequential study's, like every other deterministic counter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..netsim.ipv4 import PROTO_UDP
from ..netsim.middlebox import ECTBleacher, ProtocolBlackhole
from .events import (
    BLEACH_OFF,
    BLEACH_ON,
    DELAY_SPIKE,
    LINK_FLAP,
    NTP_BROWNOUT,
    ROUTER_BLACKHOLE,
    FaultEvent,
    FaultPlan,
)
from .windows import FaultWindow, LinkFault, SuppressedPolicy, WindowedPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..scenario.internet import SyntheticInternet


class FaultInjector:
    """Installs and reverts one epoch's worth of scheduled faults."""

    def __init__(self, world: "SyntheticInternet", plan: FaultPlan) -> None:
        self.world = world
        self.plan = plan
        self._reverts: list[Callable[[], None]] = []
        self._links_by_id = {
            f"{src}->{dst}": data["link"]
            for src, dst, data in world.topology.graph.edges(data=True)
        }

    # ------------------------------------------------------------------
    # Epoch driving
    # ------------------------------------------------------------------
    def begin_epoch(self, index: int, epoch_start: float) -> None:
        """Revert the previous epoch's faults; install this epoch's."""
        self.revert()
        events = self.plan.events_for_epoch(index)
        if not events:
            return
        metrics = self.world.network.metrics
        spans = self.world.spans
        event_log = self.world.events
        blackholed: set[str] = set()
        installed = 0
        for event in events:
            if self._install(event, epoch_start, blackholed):
                installed += 1
                if metrics:
                    metrics.incr(f"faults.{event.kind}")
                if spans:
                    # Annotate the causal timeline: begin_epoch runs
                    # before the epoch span opens, so the recorder
                    # buffers these and flushes them into the span of
                    # exactly the epoch this event impairs.
                    spans.event(
                        "fault",
                        kind=event.kind,
                        target=str(event.target),
                        epoch=index,
                        magnitude=event.magnitude,
                    )
                if event_log:
                    # begin_epoch runs between spans, so there is no
                    # open span id to link; the epoch index is the
                    # correlation key here.
                    event_log.emit(
                        "fault",
                        "warning",
                        fault=event.kind,
                        target=str(event.target),
                        epoch=index,
                        magnitude=event.magnitude,
                    )
        if blackholed:
            self._set_excluded(frozenset(blackholed))
        if installed and metrics:
            metrics.incr("faults.epochs_impaired")

    def revert(self) -> None:
        """Restore the pristine world (idempotent)."""
        while self._reverts:
            self._reverts.pop()()

    # ------------------------------------------------------------------
    # Installation per kind
    # ------------------------------------------------------------------
    def _install(
        self, event: FaultEvent, epoch_start: float, blackholed: set[str]
    ) -> bool:
        if event.kind == ROUTER_BLACKHOLE:
            if event.target not in self.world.topology.routers:
                return False
            blackholed.add(str(event.target))
            return True
        window = self._window(event, epoch_start)
        if event.kind in (LINK_FLAP, DELAY_SPIKE):
            return self._install_link_fault(event, window)
        if event.kind == BLEACH_ON:
            return self._install_bleach_on(event, window)
        if event.kind == BLEACH_OFF:
            return self._install_bleach_off(event, window)
        if event.kind == NTP_BROWNOUT:
            return self._install_brownout(event, window)
        return False  # pragma: no cover - FaultEvent validates kinds

    def _window(self, event: FaultEvent, epoch_start: float) -> FaultWindow:
        window = FaultWindow(
            start=epoch_start + event.start,
            end=epoch_start + event.start + event.duration,
        )
        window.bind_clock(self.world.network.scheduler.clock)
        return window

    def _install_link_fault(self, event: FaultEvent, window: FaultWindow) -> bool:
        link = self._links_by_id.get(str(event.target))
        if link is None or link.fault is not None:
            return False
        if event.kind == LINK_FLAP:
            link.fault = LinkFault(window=window, loss_probability=event.magnitude)
        else:
            link.fault = LinkFault(window=window, extra_delay=event.magnitude)

        def undo() -> None:
            link.fault = None

        self._reverts.append(undo)
        return True

    def _install_bleach_on(self, event: FaultEvent, window: FaultWindow) -> bool:
        router = self.world.topology.routers.get(str(event.target))
        if router is None:
            return False
        box = WindowedPolicy(
            inner=ECTBleacher(
                name=f"chaos-bleach-{router.router_id}",
                probability=event.magnitude if event.magnitude > 0 else 1.0,
            ),
            window=window,
        )
        router.middleboxes.append(box)

        def undo() -> None:
            if box in router.middleboxes:
                router.middleboxes.remove(box)

        self._reverts.append(undo)
        return True

    def _install_bleach_off(self, event: FaultEvent, window: FaultWindow) -> bool:
        router = self.world.topology.routers.get(str(event.target))
        if router is None:
            return False
        original = list(router.middleboxes)
        replaced = False
        for position, box in enumerate(original):
            if isinstance(box, ECTBleacher):
                router.middleboxes[position] = SuppressedPolicy(
                    inner=box, window=window
                )
                replaced = True
        if not replaced:
            return False

        def undo() -> None:
            router.middleboxes[:] = original

        self._reverts.append(undo)
        return True

    def _install_brownout(self, event: FaultEvent, window: FaultWindow) -> bool:
        server = self.world.server_by_addr(int(event.target))
        if server is None:
            return False
        host = server.host
        box = WindowedPolicy(
            inner=ProtocolBlackhole(
                name=f"chaos-brownout-{server.hostname}",
                protocols=frozenset({PROTO_UDP}),
            ),
            window=window,
        )
        host.inbound_filters.append(box)

        def undo() -> None:
            if box in host.inbound_filters:
                host.inbound_filters.remove(box)

        self._reverts.append(undo)
        return True

    # ------------------------------------------------------------------
    # Routing exclusion
    # ------------------------------------------------------------------
    def _set_excluded(self, excluded: frozenset[str]) -> None:
        network = self.world.network
        network.set_excluded_routers(excluded)

        def undo() -> None:
            network.set_excluded_routers(frozenset())

        self._reverts.append(undo)
