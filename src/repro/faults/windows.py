"""Simulation-time-windowed impairments.

Every fault that acts per packet needs to know *when* it is active,
and the only admissible clock is the simulation clock: wall time would
break the hermetic-epoch contract (a retried shard replaying the same
epoch must sample the same windows).  A :class:`FaultWindow` binds the
scheduler's clock once at installation; activity checks are then two
float comparisons on the hot path.

Three wrappers build on it:

* :class:`LinkFault` — installed as ``Link.fault``; adds delay and/or
  loss while the window is active (flaps and delay spikes).
* :class:`WindowedPolicy` — a middlebox that applies an inner policy
  only inside the window (mid-epoch bleaching turning *on*, NTP
  service brownouts as inbound blackholes).
* :class:`SuppressedPolicy` — the inverse: an existing policy is
  bypassed inside the window (mid-epoch bleaching turning *off*).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..netsim.ipv4 import IPv4Packet
from ..netsim.middlebox import FORWARD, Middlebox, Verdict


@dataclass
class FaultWindow:
    """A half-open ``[start, end)`` interval in absolute sim time."""

    start: float
    end: float
    _clock: object = field(default=None, repr=False, compare=False)

    def bind_clock(self, clock) -> None:
        """Attach the simulation clock (required before sampling)."""
        self._clock = clock

    def active(self) -> bool:
        if self._clock is None:
            raise RuntimeError("FaultWindow has no clock bound")
        return self.start <= self._clock.now < self.end


@dataclass
class LinkFault:
    """Per-link impairment consulted by :meth:`Link.transit`.

    ``extra_delay`` is added to the propagation delay and
    ``loss_probability`` is sampled (before AQM — a flapping physical
    layer loses the packet before any queue sees it) while the window
    is active.  Outside the window the link behaves exactly as built,
    and an idle link (``fault is None``) pays one attribute load.
    """

    window: FaultWindow
    extra_delay: float = 0.0
    loss_probability: float = 0.0

    def active(self) -> bool:
        return self.window.active()

    def sample_loss(self, rng: random.Random) -> bool:
        return self.loss_probability > 0 and rng.random() < self.loss_probability


@dataclass
class WindowedPolicy(Middlebox):
    """Apply ``inner`` only while the window is active.

    Scoping (protocols, addresses, probability) is delegated entirely
    to the inner policy; this wrapper only gates on time.  The wrapper
    reports the inner policy's name so ``middlebox.*`` metrics and
    packet traces attribute actions to the real behaviour.
    """

    inner: Middlebox | None = None
    window: FaultWindow | None = None

    def __post_init__(self) -> None:
        if self.inner is None or self.window is None:
            raise ValueError("WindowedPolicy requires inner and window")
        self.name = self.inner.name

    def process(self, packet: IPv4Packet, rng: random.Random) -> Verdict:
        if not self.window.active():
            return Verdict(FORWARD, packet)
        return self.inner.process(packet, rng)


@dataclass
class SuppressedPolicy(Middlebox):
    """Bypass ``inner`` while the window is active (policy goes dormant).

    Replaces the inner policy in a router's chain for the duration of
    an epoch; the injector restores the original chain afterwards.
    """

    inner: Middlebox | None = None
    window: FaultWindow | None = None

    def __post_init__(self) -> None:
        if self.inner is None or self.window is None:
            raise ValueError("SuppressedPolicy requires inner and window")
        self.name = self.inner.name

    def process(self, packet: IPv4Packet, rng: random.Random) -> Verdict:
        if self.window.active():
            return Verdict(FORWARD, packet)
        return self.inner.process(packet, rng)
