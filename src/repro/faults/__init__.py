"""repro.faults — deterministic fault injection for the simulator.

The paper's credibility question — does an ECT(0) mark survive a
*hostile* Internet? — needs the hostility to be first-class: paths
that were static within an epoch must be able to flap, reroute, and
change policy mid-measurement, and the runner's recovery machinery
must be drivable under test.  This package provides both, under one
determinism contract:

**every fault is part of the epoch's pure-function inputs.**

A :class:`FaultPlan` is an immutable schedule of :class:`FaultEvent`
impairments, generated once from ``(world inventory, profile,
chaos seed)`` by :func:`generate_fault_plan` and thereafter a plain
value: the same plan applied to the same world produces bit-identical
measurements whether the study runs sequentially or sharded across
worker processes, because
:meth:`~repro.scenario.internet.SyntheticInternet.begin_epoch`
installs exactly the events scheduled for that epoch (and reverts the
previous epoch's) before the epoch RNG streams are seeded.  Nothing
is wall-clock driven; "time" in every window is simulation time.

Layout:

- :mod:`~repro.faults.events` — :class:`FaultEvent` / :class:`FaultPlan`
  values and the plan generator
- :mod:`~repro.faults.profiles` — named chaos intensity presets
  (``light`` / ``default`` / ``heavy`` / ``reroute``)
- :mod:`~repro.faults.windows` — simulation-time-windowed impairment
  wrappers (link flaps, delay spikes, windowed middlebox policies)
- :mod:`~repro.faults.injector` — applies a plan at epoch boundaries
  and reverts it, surfacing ``faults.*`` metrics

Process-level chaos for the runner (worker kill / hang injection)
lives with the worker code it targets: see
:class:`repro.runner.FaultSpec`, which gained ``FAULT_HANG`` alongside
the original raise/exit kinds.
"""

from __future__ import annotations

from .events import (
    BLEACH_OFF,
    BLEACH_ON,
    DELAY_SPIKE,
    FAULT_KINDS,
    LINK_FLAP,
    NTP_BROWNOUT,
    ROUTER_BLACKHOLE,
    FaultEvent,
    FaultPlan,
    generate_fault_plan,
    merge_plans,
)
from .injector import FaultInjector
from .profiles import PROFILES, ChaosProfile, resolve_profile
from .windows import (
    FaultWindow,
    LinkFault,
    SuppressedPolicy,
    WindowedPolicy,
)

__all__ = [
    "BLEACH_OFF",
    "BLEACH_ON",
    "ChaosProfile",
    "DELAY_SPIKE",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultWindow",
    "LINK_FLAP",
    "LinkFault",
    "NTP_BROWNOUT",
    "PROFILES",
    "ROUTER_BLACKHOLE",
    "SuppressedPolicy",
    "WindowedPolicy",
    "generate_fault_plan",
    "merge_plans",
    "resolve_profile",
]
