"""Small statistics helpers used across the analyses.

Deliberately dependency-light (plain Python over numpy where the input
sizes are small) so analysis results are exactly reproducible across
platforms.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median; raises on empty input."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); zero for single values."""
    if not values:
        raise ValueError("stdev of empty sequence")
    if len(values) == 1:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile, ``pct`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile out of range: {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    value = ordered[low] * (1 - weight) + ordered[high] * weight
    # Clamp: a*(1-w) + b*w can exceed [a, b] by an ulp in floating
    # point (e.g. a == b == 23.0), which would break the bounds
    # invariant callers rely on.
    return min(max(value, ordered[low]), ordered[high])


@dataclass(frozen=True)
class ConfidenceInterval:
    """A bootstrap confidence interval around a statistic."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[Sequence[float]], float] = mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for ``statistic`` over ``values``."""
    if not values:
        raise ValueError("bootstrap over empty sequence")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence out of range: {confidence}")
    rng = random.Random(seed)
    n = len(values)
    estimates = sorted(
        statistic([values[rng.randrange(n)] for _ in range(n)])
        for _ in range(resamples)
    )
    alpha = (1 - confidence) / 2
    return ConfidenceInterval(
        estimate=statistic(values),
        low=percentile(estimates, 100 * alpha),
        high=percentile(estimates, 100 * (1 - alpha)),
        confidence=confidence,
    )
