"""Statistics helpers: summaries, bootstrap CIs, trend fits."""

from .summaries import (
    ConfidenceInterval,
    bootstrap_ci,
    mean,
    median,
    percentile,
    stdev,
)
from .timeseries import LogisticFit, fit_logistic, linear_trend

__all__ = [
    "ConfidenceInterval",
    "LogisticFit",
    "bootstrap_ci",
    "fit_logistic",
    "linear_trend",
    "mean",
    "median",
    "percentile",
    "stdev",
]
