"""Trend fitting for the Figure 6 deployment time series.

ECN server-side deployment over 2000-2015 looks like classic
S-curve technology adoption; a logistic fit lets tests check the
paper's qualitative claim that the 2015 measurement lies "on a growth
curve ... in line with previous results".  The fit is a plain grid +
Gauss-Newton refinement over two parameters (midpoint and rate) with a
fixed ceiling, avoiding a scipy dependency in the core path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LogisticFit:
    """A fitted curve ``ceiling / (1 + exp(-rate * (t - midpoint)))``."""

    ceiling: float
    midpoint: float
    rate: float
    rmse: float

    def predict(self, t: float) -> float:
        """Value of the fitted curve at time ``t``."""
        return self.ceiling / (1.0 + math.exp(-self.rate * (t - self.midpoint)))

    def residual(self, t: float, observed: float) -> float:
        """Observed minus predicted."""
        return observed - self.predict(t)


def fit_logistic(
    times: Sequence[float],
    values: Sequence[float],
    ceiling: float = 100.0,
) -> LogisticFit:
    """Least-squares logistic fit with a fixed ceiling.

    A coarse grid search over (midpoint, rate) followed by local
    refinement; robust for the handful of points Figure 6 has, and
    fully deterministic.
    """
    if len(times) != len(values):
        raise ValueError("times and values must be parallel")
    if len(times) < 3:
        raise ValueError("need at least three points to fit a logistic")

    t_low, t_high = min(times), max(times)
    span = max(t_high - t_low, 1.0)

    def cost(midpoint: float, rate: float) -> float:
        total = 0.0
        for t, v in zip(times, values):
            predicted = ceiling / (1.0 + math.exp(-rate * (t - midpoint)))
            total += (v - predicted) ** 2
        return total

    best = (t_low + span, 0.5)
    best_cost = cost(*best)
    # Coarse grid.
    for i in range(41):
        midpoint = t_low + span * (i / 40.0) * 2.0
        for j in range(1, 41):
            rate = 0.02 * j
            c = cost(midpoint, rate)
            if c < best_cost:
                best, best_cost = (midpoint, rate), c
    # Local refinement by coordinate descent.
    midpoint, rate = best
    step_m, step_r = span / 40.0, 0.02
    for _ in range(60):
        improved = False
        for dm, dr in ((step_m, 0), (-step_m, 0), (0, step_r), (0, -step_r)):
            c = cost(midpoint + dm, rate + dr)
            if c < best_cost and rate + dr > 0:
                midpoint += dm
                rate += dr
                best_cost = c
                improved = True
        if not improved:
            step_m /= 2
            step_r /= 2
            if step_m < 1e-4 and step_r < 1e-5:
                break
    return LogisticFit(
        ceiling=ceiling,
        midpoint=midpoint,
        rate=rate,
        rmse=math.sqrt(best_cost / len(times)),
    )


def linear_trend(times: Sequence[float], values: Sequence[float]) -> tuple[float, float]:
    """Ordinary least-squares line; returns (slope, intercept)."""
    if len(times) != len(values):
        raise ValueError("times and values must be parallel")
    if len(times) < 2:
        raise ValueError("need at least two points for a line")
    n = len(times)
    mean_t = sum(times) / n
    mean_v = sum(values) / n
    denom = sum((t - mean_t) ** 2 for t in times)
    if denom == 0:
        raise ValueError("degenerate time axis")
    slope = sum((t - mean_t) * (v - mean_v) for t, v in zip(times, values)) / denom
    return slope, mean_v - slope * mean_t
