"""Concurrent study execution behind the queue.

The scheduler owns the execution side of the server: it drains the
:class:`~repro.serve.queue.StudyQueue` into at most ``max_concurrent``
studies in flight, runs each study in a worker thread (the event loop
never blocks on simulation work), multiplexes every sharded study over
one :class:`~repro.runner.SharedWorkerPool`, and fans per-study
progress back into async-consumable :class:`RunHandle` feeds that the
HTTP layer streams.

Two caches make the multi-tenant case cheap:

* the **parent world cache** here — ``(scale, seed)`` to a built
  synthetic Internet *plus its first-discovery target list*.  The pair
  matters: DNS pool rotation is stateful, so only the first discovery
  against a world matches a fresh ``Study.run``; caching world and
  targets together keeps served runs bit-identical to direct ones.
* the **per-process world cache** inside pool workers
  (:mod:`repro.runner.worker`), shared across studies because the pool
  itself is shared.

Sequential execution (``study_workers == 0``) takes a per-world lock —
a world is mutated while a sequential study runs on it, so same-key
studies serialise; pooled studies only read the parent world and run
lock-free.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core.discovery import PoolDiscovery
from ..obs import DURATION_BOUNDS, MetricsRegistry
from ..scenario.internet import SyntheticInternet
from ..scenario.parameters import params_for_scale
from ..study import Study
from .index import (
    STATUS_CANCELLED,
    STATUS_COMPLETE,
    STATUS_FAILED,
    STATUS_QUEUED,
    STATUS_RUNNING,
    StudyIndex,
)
from .queue import StudyQueue, Submission

logger = logging.getLogger("repro.serve")

#: Parent-side worlds kept; small — worlds are the big allocation.
PARENT_WORLD_CACHE_SIZE = 4


@dataclass
class RunHandle:
    """Live state of one submitted run, consumable from the loop.

    ``events`` only grows; stream consumers remember their offset and
    wait on ``changed`` for more.  All mutation happens on the event
    loop thread (worker threads post through ``call_soon_threadsafe``),
    so readers on the loop never see torn state.
    """

    submission: Submission
    status: str = STATUS_QUEUED
    error: str | None = None
    events: list[dict] = field(default_factory=list)
    changed: asyncio.Event = field(default_factory=asyncio.Event)
    #: Monotonic stamp of admission; queue-wait = started_at - queued_at.
    queued_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def run_id(self) -> str:
        return self.submission.run_id

    @property
    def done(self) -> bool:
        return self.status in (STATUS_COMPLETE, STATUS_FAILED, STATUS_CANCELLED)

    def post(self, event: dict) -> None:
        """Append an event and wake streamers (loop thread only)."""
        self.events.append(event)
        self.changed.set()
        self.changed = asyncio.Event() if not self.done else self.changed

    def describe(self) -> dict:
        payload = {
            "run_id": self.run_id,
            "tenant": self.submission.tenant,
            "priority": self.submission.priority,
            "status": self.status,
            "params": self.submission.params.to_dict(),
            "events": len(self.events),
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.started_at is not None and self.finished_at is not None:
            payload["elapsed_seconds"] = round(self.finished_at - self.started_at, 3)
        return payload


class _RunEventView:
    """A per-run face of the server's event log.

    Folds the run's correlation fields (``run_id``, ``tenant``) into
    every emission before forwarding to the shared log — the runner's
    :class:`~repro.runner.ShardScheduler` narrates through one of
    these, so concurrent studies stay distinguishable in ``/events``
    without rebinding the shared log's context (which would race).
    """

    __slots__ = ("_log", "_context")

    def __init__(self, log, **context) -> None:
        self._log = log
        self._context = {k: v for k, v in context.items() if v is not None}

    def __bool__(self) -> bool:
        return bool(self._log)

    def emit(self, kind: str, level: str = "info", /, **fields):
        return self._log.emit(kind, level, **{**self._context, **fields})


@dataclass
class _WorldEntry:
    world: SyntheticInternet
    targets: list[int]
    #: Exclusive access for sequential runs (which mutate the world).
    lock: threading.Lock = field(default_factory=threading.Lock)


class WorldCache:
    """Thread-safe LRU of built worlds + first-discovery targets."""

    def __init__(self, size: int = PARENT_WORLD_CACHE_SIZE, metrics=None) -> None:
        self.size = size
        self.metrics = metrics
        self._lock = threading.Lock()
        self._entries: dict[tuple[float, int], _WorldEntry] = {}

    def entry_for(self, scale: float, seed: int) -> _WorldEntry:
        key = (scale, seed)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries[key] = self._entries.pop(key)  # mark MRU
                if self.metrics:
                    self.metrics.incr("serve.world_cache.hits")
                return entry
        # Build outside the cache lock: worlds take real time and two
        # distinct keys must be able to build concurrently.  A racing
        # build of the *same* key is wasteful but harmless — identical
        # params build identical worlds; last writer wins.
        if self.metrics:
            self.metrics.incr("serve.world_cache.misses")
        world = SyntheticInternet(params_for_scale(scale, seed))
        targets = PoolDiscovery(
            world.vantage_hosts["ugla-wired"],
            world.dns_addr,
            world.pool.zone_names(),
        ).run().addresses
        entry = _WorldEntry(world=world, targets=list(targets))
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            while len(self._entries) >= self.size:
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = entry
        return entry


class StudyScheduler:
    """Drain the queue into concurrently executing studies."""

    def __init__(
        self,
        queue: StudyQueue,
        index: StudyIndex,
        studies_dir: str | Path,
        pool=None,
        study_workers: int = 0,
        max_concurrent: int = 2,
        metrics: MetricsRegistry | None = None,
        events=None,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1: {max_concurrent!r}")
        self.queue = queue
        self.index = index
        self.studies_dir = Path(studies_dir)
        #: Shared :class:`~repro.runner.SharedWorkerPool`; ``None``
        #: runs every study sequentially in its thread.
        self.pool = pool
        self.study_workers = study_workers
        self.max_concurrent = max_concurrent
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Server-wide live :class:`~repro.obs.EventLog` (wall-clock
        #: side — never part of any determinism contract); ``None``
        #: disables serve-layer event narration.
        self.events = events
        self.worlds = WorldCache(metrics=self.metrics)
        self.runs: dict[str, RunHandle] = {}
        self._tasks: set[asyncio.Task] = set()
        self._wakeup = asyncio.Event()
        self._draining = False
        self._loop: asyncio.AbstractEventLoop | None = None
        #: Recent run durations feeding the queue's Retry-After hint.
        self._durations: list[float] = []

    # ------------------------------------------------------------------
    # Run registry
    # ------------------------------------------------------------------
    def track(self, submission: Submission, status: str = STATUS_QUEUED) -> RunHandle:
        handle = RunHandle(submission=submission, status=status)
        self.runs[submission.run_id] = handle
        return handle

    def handle(self, run_id: str) -> RunHandle | None:
        return self.runs.get(run_id)

    def kick(self) -> None:
        """Wake the dispatch loop (new submission, freed slot...)."""
        self._wakeup.set()

    @property
    def running_count(self) -> int:
        return len(self._tasks)

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    async def run_forever(self) -> None:
        """Dispatch until cancelled; owned by the server's lifetime."""
        self._loop = asyncio.get_running_loop()
        while True:
            self._dispatch_ready()
            self._wakeup.clear()
            await self._wakeup.wait()

    def _dispatch_ready(self) -> None:
        while not self._draining and len(self._tasks) < self.max_concurrent:
            submission = self.queue.pop()
            if submission is None:
                return
            handle = self.runs.get(submission.run_id)
            if handle is None:
                handle = self.track(submission)
            handle.status = STATUS_RUNNING
            handle.started_at = time.monotonic()
            queue_wait = handle.started_at - handle.queued_at
            self.metrics.observe(
                "serve.queue_wait_seconds", queue_wait, DURATION_BOUNDS
            )
            if self.events:
                self.events.emit(
                    "run-start",
                    "info",
                    run_id=submission.run_id,
                    tenant=submission.tenant,
                    queue_wait=round(queue_wait, 3),
                )
            handle.post({"type": "started", "run_id": submission.run_id})
            try:
                self.index.set_status(submission.run_id, STATUS_RUNNING)
            except KeyError:
                pass
            task = asyncio.create_task(self._run_one(handle))
            self._tasks.add(task)
            task.add_done_callback(self._task_finished)

    def _task_finished(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if not task.cancelled() and task.exception() is not None:
            logger.exception("study task died", exc_info=task.exception())
        self.kick()

    async def _run_one(self, handle: RunHandle) -> None:
        submission = handle.submission
        loop = asyncio.get_running_loop()

        def progress(done: int, total: int, label: str) -> None:
            # Called from the study thread: hop to the loop before
            # touching the handle.
            loop.call_soon_threadsafe(
                handle.post,
                {"type": "progress", "done": done + 1, "total": total, "label": label},
            )

        try:
            outcome = await asyncio.to_thread(self._execute, submission, progress)
        except Exception as exc:  # noqa: BLE001 - per-run failure boundary
            logger.warning("run %s failed: %s", submission.run_id, exc)
            handle.status = STATUS_FAILED
            handle.error = f"{type(exc).__name__}: {exc}"
            self.metrics.incr("serve.failed")
            if self.events:
                self.events.emit(
                    "run-failed",
                    "warning",
                    run_id=submission.run_id,
                    tenant=submission.tenant,
                    error=handle.error,
                )
            try:
                self.index.set_status(submission.run_id, STATUS_FAILED, error=handle.error)
            except KeyError:
                pass
        else:
            handle.status = STATUS_COMPLETE
            self.metrics.incr("serve.completed")
            if self.events:
                self.events.emit(
                    "run-complete",
                    "info",
                    run_id=submission.run_id,
                    tenant=submission.tenant,
                )
            # Register completion here, on the loop thread: the index
            # follows a single-writer discipline per root (lost updates
            # otherwise — a second instance's flush would revert other
            # runs' statuses from its stale cache), so the save path
            # below deliberately archives without touching the index.
            if outcome is not None and outcome.get("kind") == "campaign":
                # A campaign gets two kinds of entries: one for the
                # campaign itself (naming its member epochs) and one
                # per epoch archive, so `ecnudp studies` and
                # `report --run-id` can address individual epochs.
                campaign_dir = Path(outcome["directory"])
                epoch_ids = [
                    f"{campaign_dir.name}/{name}" for name in outcome["epochs"]
                ]
                self.index.register(
                    campaign_dir.name,
                    campaign_dir,
                    scale=submission.params.scale,
                    seed=submission.params.seed,
                    status=STATUS_COMPLETE,
                    tenant=submission.tenant,
                    kind="campaign",
                    epochs=epoch_ids,
                )
                for name, epoch_id in zip(outcome["epochs"], epoch_ids):
                    self.index.register(
                        epoch_id,
                        campaign_dir / "epochs" / name,
                        scale=submission.params.scale,
                        seed=submission.params.seed,
                        status=STATUS_COMPLETE,
                        tenant=submission.tenant,
                        campaign=campaign_dir.name,
                    )
                if campaign_dir.name != submission.run_id:
                    # The submission itself still resolves: point the
                    # minted run id at the campaign archive too.
                    self.index.register(
                        submission.run_id,
                        campaign_dir,
                        scale=submission.params.scale,
                        seed=submission.params.seed,
                        status=STATUS_COMPLETE,
                        tenant=submission.tenant,
                        kind="campaign",
                        campaign=campaign_dir.name,
                    )
            else:
                self.index.register(
                    submission.run_id,
                    self.studies_dir / submission.run_id,
                    scale=submission.params.scale,
                    seed=submission.params.seed,
                    status=STATUS_COMPLETE,
                    tenant=submission.tenant,
                )
        finally:
            handle.finished_at = time.monotonic()
            if handle.started_at is not None:
                self._durations.append(handle.finished_at - handle.started_at)
                del self._durations[:-20]
                self.queue.avg_run_seconds = sum(self._durations) / len(self._durations)
            self.queue.finish(submission.run_id)
            handle.post(
                {
                    "type": "finished",
                    "run_id": submission.run_id,
                    "status": handle.status,
                    **({"error": handle.error} if handle.error else {}),
                }
            )
            self.kick()

    # ------------------------------------------------------------------
    # Study execution (worker thread)
    # ------------------------------------------------------------------
    def _run_events(self, submission: Submission):
        """The run-scoped event view, or ``None`` with events off."""
        if not self.events:
            return None
        return _RunEventView(
            self.events, run_id=submission.run_id, tenant=submission.tenant
        )

    def _execute(self, submission: Submission, progress) -> dict | None:
        params = submission.params
        if params.campaign is not None:
            return self._execute_campaign(submission, progress)
        entry = self.worlds.entry_for(params.scale, params.seed)
        run_dir = self.studies_dir / submission.run_id
        common = dict(
            scale=params.scale,
            seed=params.seed,
            traceroutes=params.traceroutes,
            faults=params.chaos,
            chaos_seed=params.chaos_seed,
            progress=progress,
            world=entry.world,
            targets=entry.targets,
        )
        if self.pool is not None:
            study = Study.run(
                workers=max(self.study_workers, 1),
                pool=self.pool,
                event_log=self._run_events(submission),
                **common,
            )
        else:
            # Sequential runs mutate the world: same-(scale, seed)
            # studies serialise on the world's lock, distinct worlds
            # run concurrently.
            with entry.lock:
                study = Study.run(workers=0, **common)
        # No run_id: _run_one registers the completed archive through
        # the server's index instance (the root's single writer).
        study.save(run_dir)
        return None

    def _execute_campaign(self, submission: Submission, progress) -> dict:
        """Run (or extend) a campaign archive under the studies root.

        A campaign with an explicit ``id`` is the recurring-job case:
        the first submission creates the archive, later ones resume it
        and raise the epoch target by another batch — the driver's
        resume validation (checkpoints, digests, crash cleanup) runs on
        every extension.  A submission whose spec disagrees with the
        existing archive's spec fails loudly instead of silently
        measuring a different world under the same name.

        Campaign epochs run drifted worlds, which the per-``(scale,
        seed)`` world caches cannot hold — the driver builds each
        epoch's world itself (workers still reuse theirs through the
        drift-aware per-process cache).
        """
        from ..campaign import CampaignArchive, CampaignDriver, CampaignSpec

        params = submission.params
        job = params.campaign
        spec = CampaignSpec(
            scale=params.scale,
            seed=params.seed,
            start_year=job.start_year,
            cadence_years=job.cadence_years,
            timeline=job.timeline,
            pool_churn=job.pool_churn,
            chaos=params.chaos,
            chaos_seed=params.chaos_seed,
            traceroutes=params.traceroutes,
        )
        directory = self.studies_dir / (job.id or submission.run_id)
        workers = max(self.study_workers, 1) if self.pool is not None else 0
        if (directory / "campaign.json").exists():
            existing = CampaignArchive.load(directory)
            if existing.spec != spec:
                raise ValueError(
                    f"campaign {directory.name!r} already exists with a "
                    f"different spec; submit under a new campaign id"
                )
            driver = CampaignDriver.resume(
                directory,
                target_epochs=existing.target_epochs + job.epochs,
                workers=workers,
                pool=self.pool,
                progress=progress,
                events=self._run_events(submission),
            )
        else:
            driver = CampaignDriver.create(
                directory,
                spec,
                target_epochs=job.epochs,
                workers=workers,
                pool=self.pool,
                progress=progress,
                events=self._run_events(submission),
            )
        driver.run()
        return {
            "kind": "campaign",
            "directory": str(directory),
            "epochs": [path.name for path in driver.archive.epoch_dirs()],
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Stop dispatching and wait for in-flight studies to finish."""
        self._draining = True
        while self._tasks:
            await asyncio.wait(set(self._tasks))
