"""repro.serve — the multi-tenant asynchronous study server.

The sharded runner (:mod:`repro.runner`) executes one study per
process; this package wraps it as a **long-lived service**: an asyncio
HTTP/1.1 front end (stdlib only — no new runtime dependencies) that
accepts study submissions, queues them with priorities and per-tenant
quotas, multiplexes concurrent studies over one shared worker pool,
streams per-run progress, and serves each run's archived artefacts and
dashboard.  ``ecnudp serve`` is the CLI face.

Layout:

- :mod:`~repro.serve.http` — minimal HTTP/1.1 over asyncio streams
- :mod:`~repro.serve.queue` — validation + bounded multi-tenant
  priority queue with explicit backpressure
- :mod:`~repro.serve.scheduler` — concurrent study execution, world
  caching, progress fan-in
- :mod:`~repro.serve.app` — the route table
- :mod:`~repro.serve.server` — lifecycle: resume, drain, persist
- :mod:`~repro.serve.index` — the results tree's run-id manifest

Served runs are **bit-identical** to direct ``Study.run`` output: the
server adds identity and scheduling around the study pipeline, never
inside it.
"""

from .http import ChunkedWriter, HttpError, Request, Response, read_request, write_response
from .index import (
    INDEX_FORMAT,
    STATUS_CANCELLED,
    STATUS_COMPLETE,
    STATUS_FAILED,
    STATUS_QUEUED,
    STATUS_RUNNING,
    StudyIndex,
    StudyIndexError,
    migrate_results_root,
)
from .queue import (
    QUEUE_FORMAT,
    CampaignJob,
    QueueFull,
    QuotaExceeded,
    StudyParams,
    StudyQueue,
    Submission,
    ValidationError,
    validate_campaign,
    validate_params,
    validate_priority,
    validate_tenant,
)
from .scheduler import RunHandle, StudyScheduler, WorldCache
from .server import ServeConfig, StudyServer, run_server

__all__ = [
    "CampaignJob",
    "ChunkedWriter",
    "HttpError",
    "INDEX_FORMAT",
    "QUEUE_FORMAT",
    "QueueFull",
    "QuotaExceeded",
    "Request",
    "Response",
    "RunHandle",
    "STATUS_CANCELLED",
    "STATUS_COMPLETE",
    "STATUS_FAILED",
    "STATUS_QUEUED",
    "STATUS_RUNNING",
    "ServeConfig",
    "StudyIndex",
    "StudyIndexError",
    "StudyParams",
    "StudyQueue",
    "StudyScheduler",
    "StudyServer",
    "Submission",
    "ValidationError",
    "WorldCache",
    "migrate_results_root",
    "read_request",
    "run_server",
    "validate_campaign",
    "validate_params",
    "validate_priority",
    "validate_tenant",
    "write_response",
]
