"""Stable run-id manifest for a results tree.

A results root (``results/`` by convention, the server's data
directory in production) accumulates one subdirectory per saved study.
Before this module the only way to know what a tree held was to walk
it and parse each ``manifest.json``; now the root carries a top-level
``index.json`` mapping **run ids** to their directory and parameters,
which the server's listing endpoints and ``ecnudp studies`` enumerate
without touching the archives themselves.

The index is written atomically (:mod:`repro.ioutil`) and is purely
additive metadata: every archive stays self-describing, and
:func:`migrate_results_root` rebuilds index entries for trees written
before the index existed (run id = directory name).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..ioutil import atomic_write_text

#: Version tag rejecting foreign files, mirroring the other envelopes.
INDEX_FORMAT = "ecn-udp-index/1"

#: Run lifecycle states recorded in the index.
STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_COMPLETE = "complete"
STATUS_FAILED = "failed"
STATUS_CANCELLED = "cancelled"


class StudyIndexError(ValueError):
    """The index file exists but cannot be used (foreign/corrupt)."""


class StudyIndex:
    """The ``index.json`` at the root of one results tree.

    Instances hold the parsed document and write the whole file back
    atomically on every mutation — the file is small (one dict entry
    per run) and a torn index would orphan every archive under it.

    One root, one writer: an instance caches the document in memory,
    so a second concurrent writer's flush would silently revert this
    one's updates (lost update).  The server funnels every mutation
    through its single instance on the event loop thread; the CLI is a
    sequential single process.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.path = self.root / "index.json"
        self._studies: dict[str, dict] = {}
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            document = json.loads(self.path.read_text())
        except (OSError, ValueError) as exc:
            raise StudyIndexError(f"unreadable study index {self.path}: {exc}") from exc
        if not isinstance(document, dict) or document.get("format") != INDEX_FORMAT:
            raise StudyIndexError(
                f"{self.path} is not a study index (format "
                f"{document.get('format')!r} != {INDEX_FORMAT!r})"
            )
        studies = document.get("studies", {})
        if isinstance(studies, dict):
            self._studies = {str(k): dict(v) for k, v in studies.items()}

    def _flush(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        document = {
            "format": INDEX_FORMAT,
            "studies": {k: self._studies[k] for k in sorted(self._studies)},
        }
        atomic_write_text(self.path, json.dumps(document, indent=2))

    # ------------------------------------------------------------------
    def register(
        self,
        run_id: str,
        directory: str | Path,
        scale: float,
        seed: int,
        status: str = STATUS_COMPLETE,
        **extra,
    ) -> dict:
        """Add or update a run's entry; returns the stored entry.

        ``directory`` is stored relative to the root when it lies
        inside it, keeping the tree relocatable.
        """
        directory = Path(directory)
        try:
            stored = str(directory.relative_to(self.root))
        except ValueError:
            stored = str(directory)
        entry = {"dir": stored, "scale": scale, "seed": seed, "status": status}
        entry.update(extra)
        self._studies[run_id] = entry
        self._flush()
        return entry

    def set_status(self, run_id: str, status: str, **extra) -> None:
        entry = self._studies.get(run_id)
        if entry is None:
            raise KeyError(f"unknown run id {run_id!r}")
        entry["status"] = status
        entry.update(extra)
        self._flush()

    def remove(self, run_id: str) -> None:
        if self._studies.pop(run_id, None) is not None:
            self._flush()

    # ------------------------------------------------------------------
    def get(self, run_id: str) -> dict | None:
        entry = self._studies.get(run_id)
        return dict(entry) if entry is not None else None

    def entries(self) -> dict[str, dict]:
        """All entries, run id -> entry, sorted by run id (a copy)."""
        return {k: dict(self._studies[k]) for k in sorted(self._studies)}

    def directory(self, run_id: str) -> Path | None:
        """Absolute path of a run's archive directory, if indexed."""
        entry = self._studies.get(run_id)
        if entry is None:
            return None
        path = Path(entry["dir"])
        return path if path.is_absolute() else self.root / path

    def __len__(self) -> int:
        return len(self._studies)

    def __contains__(self, run_id: str) -> bool:
        return run_id in self._studies


def migrate_results_root(root: str | Path) -> tuple[StudyIndex, list[str]]:
    """Index any pre-index archives under ``root``; returns new ids.

    Every direct subdirectory holding a readable ``manifest.json`` and
    not yet indexed gains an entry whose run id is the directory name —
    stable across re-migrations, and what older trees were addressed by
    anyway.  Campaign archives (directories holding a ``campaign.json``)
    gain a ``kind: campaign`` entry naming their member epochs, plus
    one ``<campaign>/epoch-NNNN`` entry per epoch archive, so
    ``ecnudp studies`` and ``report --run-id`` can address individual
    epochs.  Returns ``(index, newly added run ids)``.
    """
    root = Path(root)
    index = StudyIndex(root)
    indexed_dirs = {
        str(index.directory(run_id)) for run_id in index.entries()
    }
    added: list[str] = []
    if not root.is_dir():
        return index, added
    for child in sorted(root.iterdir()):
        if not child.is_dir():
            continue
        campaign_path = child / "campaign.json"
        if campaign_path.is_file():
            added.extend(
                _migrate_campaign(index, indexed_dirs, child, campaign_path)
            )
            continue
        manifest_path = child / "manifest.json"
        if not manifest_path.is_file():
            continue
        if str(child) in indexed_dirs or child.name in index:
            continue
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError):
            continue
        index.register(
            child.name,
            child,
            scale=manifest.get("scale", 0.0),
            seed=manifest.get("seed", 0),
            status=STATUS_COMPLETE,
        )
        added.append(child.name)
    return index, added


def _migrate_campaign(
    index: StudyIndex,
    indexed_dirs: set[str],
    child: Path,
    campaign_path: Path,
) -> list[str]:
    """Index one campaign archive directory and its member epochs.

    Re-runs are additive: an already-indexed campaign only gains
    entries for epochs that appeared since the last migration (a
    resumed/extended archive), never losing or rewriting existing ones.
    """
    try:
        document = json.loads(campaign_path.read_text())
    except (OSError, ValueError):
        return []
    if not isinstance(document, dict) or not str(
        document.get("format", "")
    ).startswith("ecn-udp-campaign/"):
        return []
    spec = document.get("spec", {}) if isinstance(document.get("spec"), dict) else {}
    scale = spec.get("scale", 0.0)
    seed = spec.get("seed", 0)
    added: list[str] = []
    epochs_root = child / "epochs"
    epoch_names = (
        sorted(
            p.name
            for p in epochs_root.iterdir()
            if p.is_dir()
            and p.name.startswith("epoch-")
            and (p / "manifest.json").is_file()
        )
        if epochs_root.is_dir()
        else []
    )
    epoch_ids = [f"{child.name}/{name}" for name in epoch_names]
    existing = index.get(child.name)
    if (
        existing is None
        or existing.get("kind") != "campaign"
        or existing.get("epochs") != epoch_ids
    ):
        if str(child) not in indexed_dirs or existing is not None:
            index.register(
                child.name,
                child,
                scale=scale,
                seed=seed,
                status=STATUS_COMPLETE,
                kind="campaign",
                epochs=epoch_ids,
            )
            if existing is None:
                added.append(child.name)
    for name, epoch_id in zip(epoch_names, epoch_ids):
        if epoch_id in index:
            continue
        index.register(
            epoch_id,
            epochs_root / name,
            scale=scale,
            seed=seed,
            status=STATUS_COMPLETE,
            campaign=child.name,
        )
        added.append(epoch_id)
    return added
