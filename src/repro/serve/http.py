"""A minimal HTTP/1.1 layer over :mod:`asyncio` streams.

The study server needs exactly four things from HTTP: parse a request
(line + headers + ``Content-Length`` body), write a response, stream a
response body in chunks (``Transfer-Encoding: chunked``, for live
progress feeds), and reject garbage without crashing the connection
handler.  The stdlib offers no asyncio HTTP server and the repo takes
no new runtime dependencies, so this module implements that subset —
deliberately small, deliberately strict:

* one request per connection (``Connection: close`` on every
  response), which keeps the server loop trivially correct under
  client disconnects mid-stream;
* request bodies are bounded (:data:`MAX_BODY_BYTES`), header count
  and line lengths are bounded, and oversized input maps to 413/431
  rather than unbounded buffering;
* only the request features the API uses are implemented — there is
  no content negotiation, no multipart, no keep-alive pipelining.

The synthetic-internet :mod:`repro.protocols.http` package models
HTTP *inside the simulation*; this module is the real-socket face of
the server and shares nothing with it.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: Largest accepted request body (study submissions are tiny JSON).
MAX_BODY_BYTES = 1 << 20
#: Largest accepted request/header line.
MAX_LINE_BYTES = 16 * 1024
#: Most headers accepted per request.
MAX_HEADERS = 100

#: Reason phrases for the statuses the server actually emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that cannot be served; carries the response status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self):
        """Decode the body as JSON, mapping failures to 400."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc


@dataclass
class Response:
    """One response to serialise; body may be bytes or a str."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, payload, status: int = 200, **headers) -> "Response":
        body = (json.dumps(payload, indent=2) + "\n").encode()
        return cls(status=status, body=body, headers=headers)

    @classmethod
    def error(cls, status: int, message: str, **headers) -> "Response":
        return cls.json({"error": message, "status": status}, status=status, **headers)

    @classmethod
    def text(cls, body: str, status: int = 200, content_type: str = "text/plain") -> "Response":
        return cls(status=status, body=body.encode(), content_type=content_type)


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""
        line = exc.partial
    except asyncio.LimitOverrunError as exc:
        raise HttpError(431, "header line too long") from exc
    if len(line) > MAX_LINE_BYTES:
        raise HttpError(431, "header line too long")
    return line


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` when the peer closed pre-request."""
    start = await _read_line(reader)
    if not start.strip():
        return None
    parts = start.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise HttpError(400, f"malformed request line: {start[:80]!r}")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if not line.strip():
            break
        if len(headers) >= MAX_HEADERS:
            raise HttpError(431, "too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header: {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {length_text!r}") from None
    if length < 0:
        raise HttpError(400, f"bad Content-Length: {length_text!r}")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "request body truncated") from exc
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    return Request(
        method=method,
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


def _head(status: int, content_type: str, headers: dict[str, str], chunked: bool) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}", f"Content-Type: {content_type}"]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(writer: asyncio.StreamWriter, response: Response) -> None:
    """Serialise a complete (non-streaming) response."""
    headers = dict(response.headers)
    headers["Content-Length"] = str(len(response.body))
    writer.write(_head(response.status, response.content_type, headers, chunked=False))
    writer.write(response.body)
    await writer.drain()


class ChunkedWriter:
    """Stream a chunked response body, one ``send`` per chunk.

    Backpressure is the transport's: every chunk awaits ``drain()``,
    so a slow consumer slows the producer instead of ballooning the
    write buffer.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._started = False

    async def start(
        self,
        status: int = 200,
        content_type: str = "application/x-ndjson",
        headers: dict[str, str] | None = None,
    ) -> None:
        self._writer.write(_head(status, content_type, headers or {}, chunked=True))
        await self._writer.drain()
        self._started = True

    async def send(self, data: bytes | str) -> None:
        if isinstance(data, str):
            data = data.encode()
        if not data:
            return
        self._writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
        await self._writer.drain()

    async def finish(self) -> None:
        if self._started:
            self._writer.write(b"0\r\n\r\n")
            await self._writer.drain()
