"""The long-lived study server: sockets, lifecycle, persistence.

:class:`StudyServer` assembles the subsystem — queue, scheduler,
shared worker pool, index, HTTP app — and owns its lifecycle:

* **startup** resumes any queue snapshot a previous generation
  persisted (run ids survive, so a submitted study executes exactly
  once across restarts), then begins accepting connections;
* **steady state** is one asyncio task per connection plus the
  scheduler's dispatch loop; studies execute in worker threads and,
  when a pool is configured, fan their shards onto one
  :class:`~repro.runner.SharedWorkerPool` shared by every study;
* **graceful shutdown** (SIGTERM/SIGINT, ``POST /admin/shutdown``, or
  :meth:`shutdown`) stops accepting submissions (503), drains running
  studies to completion, persists the still-queued remainder to
  ``queue.json`` atomically, and tears the pool down.

Everything the server persists lives under one data directory, which
doubles as the results tree: ``index.json`` (run-id manifest),
``queue.json`` (only between generations), and one archive directory
per run.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import signal
from dataclasses import dataclass
from pathlib import Path

from ..ioutil import atomic_write_text
from ..obs import EventLog, MetricsRegistry
from .app import StreamProgress, StudyApp
from .http import (
    ChunkedWriter,
    HttpError,
    Response,
    read_request,
    write_response,
)
from .index import STATUS_QUEUED, migrate_results_root
from .queue import StudyQueue
from .scheduler import RunHandle, StudyScheduler

logger = logging.getLogger("repro.serve")


@dataclass
class ServeConfig:
    """Knobs of one server instance (the CLI flags, as a value)."""

    host: str = "127.0.0.1"
    port: int = 8750
    #: Worker processes in the shared pool; ``0`` disables the pool
    #: and runs studies sequentially in threads.
    workers: int = 2
    #: Queued-submission bound (running studies tracked separately).
    queue_depth: int = 16
    #: Max queued + running studies per tenant.
    tenant_quota: int = 4
    #: Studies executing at once.
    max_concurrent: int = 2
    #: Results tree: archives + index.json + queue.json.
    data_dir: str = "results"


class StudyServer:
    """Wire the serve subsystem together over one data directory."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.data_dir = Path(config.data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.metrics = MetricsRegistry()
        #: Server-wide live event log (wall-clock side): serve
        #: admissions/rejections, scheduler run lifecycle, and runner
        #: shard lifecycle all narrate into this one ring, which
        #: ``GET /events`` serves with a since-cursor.
        self.events = EventLog()
        # Adopt any pre-index archives so they are enumerable/servable.
        self.index, migrated = migrate_results_root(self.data_dir)
        if migrated:
            logger.info("indexed %d pre-index archive(s)", len(migrated))
        self.queue = StudyQueue(
            depth=config.queue_depth, tenant_quota=config.tenant_quota
        )
        self.pool = None
        if config.workers > 0:
            from ..runner import SharedWorkerPool

            self.pool = SharedWorkerPool(config.workers)
        self.scheduler = StudyScheduler(
            queue=self.queue,
            index=self.index,
            studies_dir=self.data_dir,
            pool=self.pool,
            study_workers=config.workers,
            max_concurrent=config.max_concurrent,
            metrics=self.metrics,
            events=self.events,
        )
        self.app = StudyApp(
            queue=self.queue,
            scheduler=self.scheduler,
            index=self.index,
            studies_dir=self.data_dir,
            on_shutdown=self.request_shutdown,
            events=self.events,
        )
        self._server: asyncio.Server | None = None
        self._scheduler_task: asyncio.Task | None = None
        self._stop = asyncio.Event()
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def queue_path(self) -> Path:
        return self.data_dir / "queue.json"

    @property
    def port(self) -> int:
        """The bound port (useful when configured with port 0)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Resume persisted state and start accepting connections."""
        resumed = self._resume_queue()
        if resumed:
            logger.info("resumed %d queued studies from %s", resumed, self.queue_path)
        self._scheduler_task = asyncio.create_task(self.scheduler.run_forever())
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.scheduler.kick()
        self.events.emit(
            "serve-start",
            "info",
            port=self.port,
            workers=self.config.workers,
            resumed=resumed,
        )
        logger.info(
            "serving on %s:%d (workers=%d queue_depth=%d tenant_quota=%d)",
            self.config.host,
            self.port,
            self.config.workers,
            self.config.queue_depth,
            self.config.tenant_quota,
        )

    def _resume_queue(self) -> int:
        """Restore a persisted queue snapshot; returns entries resumed."""
        if not self.queue_path.exists():
            return 0
        try:
            document = json.loads(self.queue_path.read_text())
            restored = self.queue.restore(document)
        except (OSError, ValueError, RuntimeError) as exc:
            logger.warning("cannot resume queue from %s: %s", self.queue_path, exc)
            return 0
        for submission in restored:
            handle = self.scheduler.track(submission, status=STATUS_QUEUED)
            handle.post({"type": "resumed", "run_id": submission.run_id})
            # Re-register defensively: the entry normally already
            # exists from the generation that accepted the submission.
            self.index.register(
                submission.run_id,
                self.data_dir / submission.run_id,
                scale=submission.params.scale,
                seed=submission.params.seed,
                status=STATUS_QUEUED,
                tenant=submission.tenant,
            )
            self.metrics.incr("serve.resumed")
        # The snapshot is consumed: it exists only between a graceful
        # shutdown and the next startup, so a later crash cannot replay
        # studies that already ran.
        self.queue_path.unlink(missing_ok=True)
        return len(restored)

    def request_shutdown(self) -> None:
        """Arm graceful shutdown (signal handlers, /admin/shutdown)."""
        self.app.draining = True
        self._stop.set()

    async def serve_until_shutdown(self) -> None:
        """Run until a shutdown request, then drain and stop."""
        await self._stop.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Drain running studies, persist the queue, stop the world."""
        if self._stopped:
            return
        self._stopped = True
        self.app.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Drain: in-flight studies run to completion (their archives
        # must be whole); the still-queued tail is persisted instead.
        await self.scheduler.drain()
        snapshot = self.queue.snapshot()
        if snapshot["entries"]:
            atomic_write_text(self.queue_path, json.dumps(snapshot, indent=2))
            logger.info(
                "persisted %d queued studies to %s",
                len(snapshot["entries"]),
                self.queue_path,
            )
        else:
            self.queue_path.unlink(missing_ok=True)
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._scheduler_task
        if self.pool is not None:
            self.pool.shutdown()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                await write_response(writer, Response.error(exc.status, exc.message))
                return
            if request is None:
                return
            try:
                result = await self.app.dispatch(request)
            except HttpError as exc:
                result = Response.error(exc.status, exc.message)
            except Exception as exc:  # noqa: BLE001 - connection boundary
                logger.exception("handler failed for %s %s", request.method, request.path)
                result = Response.error(500, f"{type(exc).__name__}: {exc}")
            if isinstance(result, StreamProgress):
                await self._stream_progress(writer, result.handle)
            else:
                await write_response(writer, result)
        except (ConnectionResetError, BrokenPipeError):
            # Peer went away mid-response: nothing to salvage on a
            # one-request connection.  (CancelledError propagates — the
            # server is being torn down.)
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _stream_progress(
        self, writer: asyncio.StreamWriter, handle: RunHandle
    ) -> None:
        """Chunk out a run's event feed until the run finishes."""
        chunked = ChunkedWriter(writer)
        await chunked.start(content_type="application/x-ndjson")
        offset = 0
        while True:
            while offset < len(handle.events):
                event = handle.events[offset]
                offset += 1
                await chunked.send(json.dumps(event) + "\n")
            if handle.done:
                break
            waiter = handle.changed
            await waiter.wait()
        await chunked.finish()


async def run_server(config: ServeConfig) -> None:
    """Entry point used by ``ecnudp serve``: serve until signalled."""
    server = StudyServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, server.request_shutdown)
    await server.serve_until_shutdown()
