"""Submission validation and the multi-tenant study queue.

The server admits study submissions into a bounded **priority queue**
with per-tenant quotas.  Admission control is explicit backpressure,
not silent buffering: a full queue or an exhausted tenant quota raises
(mapped to ``429`` + ``Retry-After`` by the HTTP layer) instead of
queueing without bound — the paper-scale version of "heavy traffic
from many users" is useless if one tenant can wedge the service.

Ordering is total and deterministic: higher ``priority`` first, FIFO
by admission sequence within a priority.  The queue is a plain value
store with a :meth:`~StudyQueue.snapshot`/:meth:`~StudyQueue.restore`
pair, which is what graceful shutdown persists and restart resumes —
run ids survive a restart, so a submitted study is executed exactly
once even across a server generation.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Mapping
from dataclasses import dataclass, field

from ..faults.profiles import PROFILES

#: Version tag for persisted queue snapshots.
QUEUE_FORMAT = "ecn-udp-queue/1"

#: Inclusive bounds on a submission's priority knob.
PRIORITY_MIN, PRIORITY_MAX = -10, 10

#: Upper bound on accepted scales: the server exists to run many
#: studies concurrently; full-scale (1.0) studies belong to the batch
#: CLI.  Generous enough for every benchmark in the repo.
MAX_SCALE = 1.0


class ValidationError(ValueError):
    """A submission document that cannot become a study."""


#: Upper bound on epochs per campaign submission.  Campaigns are
#: *recurring*: re-submitting the same campaign ``id`` extends the
#: archive by another batch of epochs, so the cap bounds one grant of
#: queue time, not the campaign's lifetime length.
MAX_CAMPAIGN_EPOCHS = 32


@dataclass(frozen=True)
class CampaignJob:
    """The campaign-shaped part of a submission, validated.

    ``id`` names the on-disk campaign archive; re-submitting with the
    same id resumes and extends it (the recurring-job idiom).  ``None``
    derives the archive name from the run id — a one-shot campaign.
    """

    epochs: int
    start_year: float = 2015.33
    cadence_years: float = 1.0
    timeline: str = "fresh-look"
    pool_churn: bool = True
    id: str | None = None

    def to_dict(self) -> dict:
        payload: dict = {"epochs": self.epochs}
        if self.start_year != 2015.33:
            payload["start_year"] = self.start_year
        if self.cadence_years != 1.0:
            payload["cadence_years"] = self.cadence_years
        if self.timeline != "fresh-look":
            payload["timeline"] = self.timeline
        if not self.pool_churn:
            payload["pool_churn"] = False
        if self.id is not None:
            payload["id"] = self.id
        return payload


def validate_campaign(payload) -> CampaignJob:
    """Validate a submission's nested ``campaign`` object."""
    from ..scenario.timeline import TIMELINES

    if not isinstance(payload, Mapping):
        raise ValidationError(f"campaign must be a JSON object: {payload!r}")
    known = {"epochs", "start_year", "cadence_years", "timeline", "pool_churn", "id"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValidationError(f"unknown campaign field(s): {', '.join(unknown)}")
    epochs = payload.get("epochs")
    if isinstance(epochs, bool) or not isinstance(epochs, int):
        raise ValidationError(f"campaign epochs must be an integer: {epochs!r}")
    if not 1 <= epochs <= MAX_CAMPAIGN_EPOCHS:
        raise ValidationError(
            f"campaign epochs must be in [1, {MAX_CAMPAIGN_EPOCHS}]: {epochs!r}"
        )
    start_year = payload.get("start_year", 2015.33)
    if isinstance(start_year, bool) or not isinstance(start_year, (int, float)):
        raise ValidationError(f"campaign start_year must be a number: {start_year!r}")
    cadence = payload.get("cadence_years", 1.0)
    if isinstance(cadence, bool) or not isinstance(cadence, (int, float)):
        raise ValidationError(f"campaign cadence_years must be a number: {cadence!r}")
    if float(cadence) <= 0:
        raise ValidationError(f"campaign cadence_years must be > 0: {cadence!r}")
    timeline = payload.get("timeline", "fresh-look")
    if not isinstance(timeline, str) or timeline not in TIMELINES:
        known_timelines = ", ".join(sorted(TIMELINES))
        raise ValidationError(
            f"unknown campaign timeline {timeline!r}; one of: {known_timelines}"
        )
    pool_churn = payload.get("pool_churn", True)
    if not isinstance(pool_churn, bool):
        raise ValidationError(f"campaign pool_churn must be a boolean: {pool_churn!r}")
    campaign_id = payload.get("id")
    if campaign_id is not None:
        # Same character discipline as tenants: the id becomes a
        # directory name under the results root.
        if (
            not isinstance(campaign_id, str)
            or not campaign_id
            or len(campaign_id) > 64
            or not all(c.isalnum() or c in "-_." for c in campaign_id)
            or campaign_id.startswith(".")
        ):
            raise ValidationError(
                f"campaign id must be <=64 chars of [alnum - _ .], not "
                f"starting with '.': {campaign_id!r}"
            )
    return CampaignJob(
        epochs=epochs,
        start_year=float(start_year),
        cadence_years=float(cadence),
        timeline=timeline,
        pool_churn=pool_churn,
        id=campaign_id,
    )


class QueueFull(RuntimeError):
    """The global queue depth is exhausted (back off and retry)."""

    def __init__(self, depth: int, retry_after: float) -> None:
        super().__init__(f"study queue is full ({depth} deep)")
        self.retry_after = retry_after


class QuotaExceeded(RuntimeError):
    """One tenant holds its full quota of queued + running studies."""

    def __init__(self, tenant: str, quota: int, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant!r} is at its quota of {quota} queued/running studies"
        )
        self.tenant = tenant
        self.retry_after = retry_after


@dataclass(frozen=True)
class StudyParams:
    """The validated, hashable parameters of one requested study.

    ``(scale, seed)`` is the world-cache key: submissions agreeing on
    it share a cached synthetic Internet (and discovery), never cached
    *results* — every run executes and archives separately.
    """

    scale: float
    seed: int
    traceroutes: bool = True
    chaos: str | None = None
    chaos_seed: int = 0
    #: Set when the submission is a longitudinal campaign rather than
    #: a single study; the scheduler routes it to the campaign driver.
    campaign: CampaignJob | None = None

    def world_key(self) -> tuple[float, int]:
        return (self.scale, self.seed)

    def to_dict(self) -> dict:
        payload: dict = {"scale": self.scale, "seed": self.seed}
        if not self.traceroutes:
            payload["traceroutes"] = False
        if self.chaos is not None:
            payload["chaos"] = self.chaos
            payload["chaos_seed"] = self.chaos_seed
        if self.campaign is not None:
            payload["campaign"] = self.campaign.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StudyParams":
        return validate_params(payload)


def validate_params(payload) -> StudyParams:
    """Validate a submission document into :class:`StudyParams`.

    Raises :class:`ValidationError` with a message naming the first
    offending field; the server maps it to ``400``.
    """
    if not isinstance(payload, Mapping):
        raise ValidationError("submission must be a JSON object")
    known = {
        "scale",
        "seed",
        "traceroutes",
        "chaos",
        "chaos_seed",
        "campaign",
        "tenant",
        "priority",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValidationError(f"unknown field(s): {', '.join(unknown)}")
    scale = payload.get("scale", 0.1)
    if isinstance(scale, bool) or not isinstance(scale, (int, float)):
        raise ValidationError(f"scale must be a number: {scale!r}")
    if not 0 < float(scale) <= MAX_SCALE:
        raise ValidationError(f"scale must be in (0, {MAX_SCALE}]: {scale!r}")
    seed = payload.get("seed", 20150401)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ValidationError(f"seed must be an integer: {seed!r}")
    traceroutes = payload.get("traceroutes", True)
    if not isinstance(traceroutes, bool):
        raise ValidationError(f"traceroutes must be a boolean: {traceroutes!r}")
    chaos = payload.get("chaos")
    if chaos is not None:
        if not isinstance(chaos, str) or chaos not in PROFILES:
            known_profiles = ", ".join(sorted(PROFILES))
            raise ValidationError(
                f"unknown chaos profile {chaos!r}; one of: {known_profiles}"
            )
    chaos_seed = payload.get("chaos_seed", 0)
    if isinstance(chaos_seed, bool) or not isinstance(chaos_seed, int):
        raise ValidationError(f"chaos_seed must be an integer: {chaos_seed!r}")
    campaign = payload.get("campaign")
    if campaign is not None:
        campaign = validate_campaign(campaign)
    return StudyParams(
        scale=float(scale),
        seed=seed,
        traceroutes=traceroutes,
        chaos=chaos,
        chaos_seed=chaos_seed,
        campaign=campaign,
    )


def validate_tenant(tenant) -> str:
    if not isinstance(tenant, str) or not tenant:
        raise ValidationError(f"tenant must be a non-empty string: {tenant!r}")
    if len(tenant) > 64 or not all(c.isalnum() or c in "-_." for c in tenant):
        raise ValidationError(
            f"tenant must be <=64 chars of [alnum - _ .]: {tenant!r}"
        )
    return tenant


def validate_priority(priority) -> int:
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ValidationError(f"priority must be an integer: {priority!r}")
    if not PRIORITY_MIN <= priority <= PRIORITY_MAX:
        raise ValidationError(
            f"priority must be in [{PRIORITY_MIN}, {PRIORITY_MAX}]: {priority!r}"
        )
    return priority


@dataclass(frozen=True)
class Submission:
    """One admitted study: identity + tenancy + validated params."""

    run_id: str
    tenant: str
    params: StudyParams
    priority: int = 0
    #: Admission sequence number: the FIFO tiebreak within a priority,
    #: stable across persistence so restarts preserve ordering.
    seq: int = 0

    def sort_key(self) -> tuple[int, int]:
        # heapq is a min-heap: negate priority so higher runs first.
        return (-self.priority, self.seq)

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "seq": self.seq,
            "params": self.params.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Submission":
        return cls(
            run_id=str(payload["run_id"]),
            tenant=validate_tenant(payload["tenant"]),
            priority=validate_priority(payload.get("priority", 0)),
            seq=int(payload.get("seq", 0)),
            params=validate_params(payload.get("params", {})),
        )


@dataclass
class QueueStats:
    """Counters the queue keeps for the ``serve.*`` metrics feed."""

    admitted: int = 0
    rejected_full: int = 0
    rejected_quota: int = 0
    cancelled: int = 0


class StudyQueue:
    """Bounded multi-tenant priority queue of study submissions.

    Not thread-safe by itself: the server mutates it only from the
    event loop thread.  ``depth`` bounds **queued** submissions (the
    running set is bounded separately by the scheduler's concurrency);
    ``tenant_quota`` bounds queued *plus* running studies per tenant,
    so a tenant cannot monopolise the service by keeping the queue
    drained into running slots.
    """

    def __init__(self, depth: int, tenant_quota: int) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1: {depth!r}")
        if tenant_quota < 1:
            raise ValueError(f"tenant quota must be >= 1: {tenant_quota!r}")
        self.depth = depth
        self.tenant_quota = tenant_quota
        self.stats = QueueStats()
        self._heap: list[tuple[tuple[int, int], Submission]] = []
        self._queued: dict[str, Submission] = {}
        self._running: dict[str, str] = {}  # run_id -> tenant
        self._seq = itertools.count()
        #: Hint for ``Retry-After``: a recent average study duration,
        #: updated by the scheduler as runs finish.
        self.avg_run_seconds: float = 5.0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, submission: Submission) -> Submission:
        """Admit a submission (assigning its seq); raises on pressure."""
        if submission.run_id in self._queued or submission.run_id in self._running:
            raise ValidationError(f"duplicate run id {submission.run_id!r}")
        if len(self._queued) >= self.depth:
            self.stats.rejected_full += 1
            raise QueueFull(self.depth, retry_after=self.retry_after())
        tenant_load = self.tenant_load(submission.tenant)
        if tenant_load >= self.tenant_quota:
            self.stats.rejected_quota += 1
            raise QuotaExceeded(
                submission.tenant, self.tenant_quota, retry_after=self.retry_after()
            )
        admitted = Submission(
            run_id=submission.run_id,
            tenant=submission.tenant,
            params=submission.params,
            priority=submission.priority,
            seq=next(self._seq),
        )
        heapq.heappush(self._heap, (admitted.sort_key(), admitted))
        self._queued[admitted.run_id] = admitted
        self.stats.admitted += 1
        return admitted

    def retry_after(self) -> float:
        """Seconds a rejected client should wait before retrying: one
        average study duration, floored at 1s so headers stay sane."""
        return max(1.0, round(self.avg_run_seconds, 1))

    # ------------------------------------------------------------------
    # Dispatch / completion
    # ------------------------------------------------------------------
    def pop(self) -> Submission | None:
        """Take the highest-priority queued submission, mark it running."""
        while self._heap:
            _, submission = heapq.heappop(self._heap)
            if submission.run_id not in self._queued:
                continue  # cancelled while queued; skip the stale entry
            del self._queued[submission.run_id]
            self._running[submission.run_id] = submission.tenant
            return submission
        return None

    def finish(self, run_id: str) -> None:
        """Release a running study's quota slot (complete or failed)."""
        self._running.pop(run_id, None)

    def cancel(self, run_id: str) -> Submission | None:
        """Remove a queued-but-unstarted submission; returns it.

        Running studies cannot be cancelled (shards are already in
        flight on the shared pool); callers get ``None`` and decide
        how to report that.
        """
        submission = self._queued.pop(run_id, None)
        if submission is not None:
            self.stats.cancelled += 1
        return submission

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def tenant_load(self, tenant: str) -> int:
        queued = sum(1 for s in self._queued.values() if s.tenant == tenant)
        running = sum(1 for t in self._running.values() if t == tenant)
        return queued + running

    def queued_ids(self) -> list[str]:
        """Queued run ids in dispatch order."""
        live = [
            submission
            for _, submission in sorted(self._heap)
            if submission.run_id in self._queued
        ]
        return [submission.run_id for submission in live]

    @property
    def queued_count(self) -> int:
        return len(self._queued)

    @property
    def running_count(self) -> int:
        return len(self._running)

    def is_queued(self, run_id: str) -> bool:
        return run_id in self._queued

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The queued (not running) submissions as a pure document."""
        entries = [
            submission.to_dict()
            for _, submission in sorted(self._heap)
            if submission.run_id in self._queued
        ]
        return {"format": QUEUE_FORMAT, "entries": entries}

    def restore(self, document: Mapping) -> list[Submission]:
        """Re-admit a persisted snapshot; returns the restored entries.

        Restores preserve run ids and relative order (priority, then
        original admission sequence).  Quotas and depth are re-checked
        — a snapshot from a server with looser limits degrades to
        rejecting the tail, which the caller reports rather than
        silently dropping.
        """
        if document.get("format") != QUEUE_FORMAT:
            raise ValidationError(
                f"not a queue snapshot: format {document.get('format')!r}"
            )
        restored: list[Submission] = []
        entries = document.get("entries", [])
        if not isinstance(entries, list):
            raise ValidationError("queue snapshot entries must be a list")
        for raw in entries:
            submission = Submission.from_dict(raw)
            restored.append(self.submit(submission))
        return restored
