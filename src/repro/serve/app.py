"""HTTP API of the study server.

Route table (all JSON unless noted):

* ``POST /studies`` — submit a study; ``202`` + run id, ``400`` on
  validation failure, ``429`` + ``Retry-After`` under backpressure
  (full queue or exhausted tenant quota), ``503`` while draining.
* ``GET /studies`` — enumerate runs (live registry merged over the
  persistent index).
* ``GET /studies/<id>`` — one run's status.
* ``DELETE /studies/<id>`` — cancel a queued-but-unstarted run.
* ``GET /studies/<id>/progress`` — chunked NDJSON stream of progress
  events, live until the run finishes.
* ``GET /studies/<id>/artifacts`` — list archived artefact files.
* ``GET /studies/<id>/artifacts/<path>`` — one artefact's bytes.
* ``GET /studies/<id>/dashboard`` — the run dashboard
  (:mod:`repro.obs.report`), rendered on demand.
* ``GET /metrics`` — ``serve.*`` counters + queue gauges.
* ``GET /healthz`` — liveness + queue/scheduler state.
* ``POST /admin/shutdown`` — begin graceful shutdown (drain + persist).

The tenant of a submission comes from the ``tenant`` body field or the
``X-Tenant`` header.  Responses never leak filesystem paths other than
artefact names scoped under the run's own directory.
"""

from __future__ import annotations

import math
import secrets
from pathlib import Path

from ..obs import PROM_CONTENT_TYPE, render_events_jsonl, render_prometheus
from .http import HttpError, Request, Response
from .index import STATUS_CANCELLED, STATUS_QUEUED, StudyIndex
from .queue import (
    QueueFull,
    QuotaExceeded,
    StudyQueue,
    Submission,
    ValidationError,
    validate_params,
    validate_priority,
    validate_tenant,
)
from .scheduler import RunHandle, StudyScheduler

#: Artefact suffix -> Content-Type for GET artifacts.
_ARTIFACT_TYPES = {
    ".json": "application/json",
    ".csv": "text/csv",
    ".txt": "text/plain",
    ".html": "text/html",
    ".md": "text/markdown",
    ".pstats": "application/octet-stream",
}


class StreamProgress:
    """Marker result: stream a run's progress feed (handled by the
    connection loop, which owns the writer)."""

    def __init__(self, handle: RunHandle) -> None:
        self.handle = handle


class StudyApp:
    """Route requests onto the queue/scheduler/index trio."""

    def __init__(
        self,
        queue: StudyQueue,
        scheduler: StudyScheduler,
        index: StudyIndex,
        studies_dir: str | Path,
        on_shutdown=None,
        events=None,
    ) -> None:
        self.queue = queue
        self.scheduler = scheduler
        self.index = index
        self.studies_dir = Path(studies_dir)
        #: Zero-arg callback arming graceful shutdown (server-owned).
        self.on_shutdown = on_shutdown
        #: Server-wide live :class:`~repro.obs.EventLog`; admissions,
        #: rejections and cancellations narrate through it, and
        #: ``GET /events`` serves its since-cursor window.
        self.events = events
        self.draining = False

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def dispatch(self, request: Request) -> Response | StreamProgress:
        segments = [part for part in request.path.split("/") if part]
        try:
            return self._route(request, segments)
        except ValidationError as exc:
            return Response.error(400, str(exc))
        except QueueFull as exc:
            return self._too_many("queue-full", str(exc), exc.retry_after)
        except QuotaExceeded as exc:
            return self._too_many("tenant-quota", str(exc), exc.retry_after)

    def _route(self, request: Request, segments: list[str]):
        method = request.method
        if segments == ["healthz"] and method == "GET":
            return self.health()
        if segments == ["metrics"] and method == "GET":
            return self.metrics(request)
        if segments == ["events"] and method == "GET":
            return self.events_feed(request)
        if segments == ["admin", "shutdown"] and method == "POST":
            return self.shutdown()
        if segments[:1] == ["studies"]:
            if len(segments) == 1:
                if method == "POST":
                    return self.submit(request)
                if method == "GET":
                    return self.list_runs()
                raise HttpError(405, f"{method} not allowed on /studies")
            run_id = segments[1]
            rest = segments[2:]
            if not rest:
                if method == "GET":
                    return self.run_status(run_id)
                if method == "DELETE":
                    return self.cancel(run_id)
                raise HttpError(405, f"{method} not allowed on a run")
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on run resources")
            if rest == ["progress"]:
                return self.progress(run_id)
            if rest == ["dashboard"]:
                return self.dashboard(run_id)
            if rest[0] == "artifacts":
                return self.artifacts(run_id, rest[1:])
        raise HttpError(404, f"no route for {method} {request.path}")

    def _too_many(self, cause: str, message: str, retry_after: float) -> Response:
        if self.events:
            self.events.emit(
                "serve-reject",
                "warning",
                cause=cause,
                retry_after=round(retry_after, 3),
            )
        return Response.error(
            429, message, **{"Retry-After": str(int(math.ceil(retry_after)))}
        )

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> Response:
        if self.draining:
            return Response.error(503, "server is draining for shutdown")
        payload = request.json()
        if not isinstance(payload, dict):
            raise ValidationError("submission must be a JSON object")
        tenant = payload.get("tenant", request.headers.get("x-tenant"))
        tenant = validate_tenant(tenant)
        priority = validate_priority(payload.get("priority", 0))
        params = validate_params(
            {k: v for k, v in payload.items() if k not in ("tenant", "priority")}
        )
        run_id = self._mint_run_id()
        submission = Submission(
            run_id=run_id, tenant=tenant, params=params, priority=priority
        )
        admitted = self.queue.submit(submission)  # raises under pressure
        self.index.register(
            run_id,
            self.studies_dir / run_id,
            scale=params.scale,
            seed=params.seed,
            status=STATUS_QUEUED,
            tenant=tenant,
        )
        handle = self.scheduler.track(admitted)
        handle.post({"type": "queued", "run_id": run_id, "tenant": tenant})
        self.scheduler.metrics.incr("serve.submitted")
        if self.events:
            self.events.emit(
                "serve-submit",
                "info",
                run_id=run_id,
                tenant=tenant,
                priority=admitted.priority,
            )
        self.scheduler.kick()
        return Response.json(
            {
                "run_id": run_id,
                "status": STATUS_QUEUED,
                "tenant": tenant,
                "priority": admitted.priority,
                "links": {
                    "status": f"/studies/{run_id}",
                    "progress": f"/studies/{run_id}/progress",
                    "artifacts": f"/studies/{run_id}/artifacts",
                    "dashboard": f"/studies/{run_id}/dashboard",
                },
            },
            status=202,
        )

    def _mint_run_id(self) -> str:
        while True:
            run_id = f"run-{secrets.token_hex(4)}"
            if run_id not in self.index and self.scheduler.handle(run_id) is None:
                return run_id

    def list_runs(self) -> Response:
        runs: dict[str, dict] = {}
        for run_id, entry in self.index.entries().items():
            runs[run_id] = {
                "run_id": run_id,
                "status": entry.get("status"),
                "scale": entry.get("scale"),
                "seed": entry.get("seed"),
                **({"tenant": entry["tenant"]} if "tenant" in entry else {}),
            }
        for run_id, handle in self.scheduler.runs.items():
            runs[run_id] = handle.describe()
        ordered = [runs[run_id] for run_id in sorted(runs)]
        return Response.json({"studies": ordered, "count": len(ordered)})

    def run_status(self, run_id: str) -> Response:
        handle = self.scheduler.handle(run_id)
        if handle is not None:
            return Response.json(handle.describe())
        entry = self.index.get(run_id)
        if entry is None:
            raise HttpError(404, f"unknown run id {run_id!r}")
        entry.pop("dir", None)
        return Response.json({"run_id": run_id, **entry})

    def cancel(self, run_id: str) -> Response:
        handle = self.scheduler.handle(run_id)
        entry = self.index.get(run_id)
        if handle is None and entry is None:
            raise HttpError(404, f"unknown run id {run_id!r}")
        cancelled = self.queue.cancel(run_id)
        if cancelled is None:
            raise HttpError(
                409,
                f"run {run_id!r} is not queued (already running or finished); "
                "running studies cannot be cancelled",
            )
        if handle is not None:
            handle.status = STATUS_CANCELLED
            handle.post({"type": "finished", "run_id": run_id, "status": STATUS_CANCELLED})
        try:
            self.index.set_status(run_id, STATUS_CANCELLED)
        except KeyError:
            pass
        self.scheduler.metrics.incr("serve.cancelled")
        if self.events:
            self.events.emit("serve-cancel", "info", run_id=run_id)
        return Response.json({"run_id": run_id, "status": STATUS_CANCELLED})

    def progress(self, run_id: str) -> StreamProgress:
        handle = self.scheduler.handle(run_id)
        if handle is None:
            raise HttpError(404, f"no live run {run_id!r} (completed runs have artifacts)")
        return StreamProgress(handle)

    def artifacts(self, run_id: str, rest: list[str]) -> Response:
        directory = self._run_dir(run_id)
        if not rest:
            files = sorted(
                str(path.relative_to(directory))
                for path in directory.rglob("*")
                if path.is_file()
            )
            return Response.json({"run_id": run_id, "artifacts": files})
        relative = "/".join(rest)
        target = (directory / relative).resolve()
        if not str(target).startswith(str(directory.resolve()) + "/"):
            raise HttpError(404, f"no artifact {relative!r}")
        if not target.is_file():
            raise HttpError(404, f"no artifact {relative!r}")
        content_type = _ARTIFACT_TYPES.get(target.suffix, "application/octet-stream")
        return Response(status=200, body=target.read_bytes(), content_type=content_type)

    def dashboard(self, run_id: str) -> Response:
        directory = self._run_dir(run_id)
        from ..obs.report import load_run_artifacts, render_dashboard_html

        artifacts = load_run_artifacts(directory)
        return Response.text(
            render_dashboard_html(artifacts), content_type="text/html"
        )

    def _run_dir(self, run_id: str) -> Path:
        directory = self.index.directory(run_id)
        if directory is None:
            handle = self.scheduler.handle(run_id)
            if handle is None:
                raise HttpError(404, f"unknown run id {run_id!r}")
            directory = self.studies_dir / run_id
        if not directory.is_dir():
            raise HttpError(
                409, f"run {run_id!r} has no archived artifacts yet"
            )
        return directory

    def health(self) -> Response:
        """Liveness + queue state + worker-pool liveness.

        A configured pool that can no longer execute shards (platform
        probe failed, shut down, or every started worker process died)
        flips the whole endpoint to 503 — orchestrators should restart
        the server rather than queue studies that cannot run.
        """
        payload = {
            "status": "draining" if self.draining else "ok",
            "queued": self.queue.queued_count,
            "running": self.queue.running_count,
            "queue_depth": self.queue.depth,
            "tenant_quota": self.queue.tenant_quota,
        }
        status = 200
        pool = self.scheduler.pool
        if pool is not None:
            pool_state = pool.describe()
            payload["pool"] = pool_state
            if pool_state["lost"]:
                payload["status"] = "degraded"
                status = 503
        return Response.json(payload, status=status)

    def _extra_gauges(self) -> dict:
        """Live queue/scheduler/pool state, as exposition gauges."""
        stats = self.queue.stats
        gauges = {
            "serve.queued": self.queue.queued_count,
            "serve.running": self.queue.running_count,
            "serve.queue_limit": self.queue.depth,
            "serve.admitted_total": stats.admitted,
            "serve.rejected_full_total": stats.rejected_full,
            "serve.rejected_quota_total": stats.rejected_quota,
            "serve.cancelled_total": stats.cancelled,
            "serve.draining": int(self.draining),
        }
        pool = self.scheduler.pool
        if pool is not None:
            pool_state = pool.describe()
            gauges["serve.pool_workers"] = pool_state["workers"]
            gauges["serve.pool_workers_alive"] = pool_state["workers_alive"]
            gauges["serve.pool_rebuilds"] = pool_state["rebuilds"]
            gauges["serve.pool_lost"] = int(pool_state["lost"])
        if self.events:
            gauges["serve.events_next_seq"] = self.events.next_seq
            gauges["serve.events_dropped"] = sum(self.events.dropped().values())
        return gauges

    def metrics(self, request: Request | None = None) -> Response:
        fmt = (request.query.get("format", "json") if request else "json").lower()
        if fmt == "prometheus":
            text = render_prometheus(
                self.scheduler.metrics.snapshot(), extra_gauges=self._extra_gauges()
            )
            return Response.text(text, content_type=PROM_CONTENT_TYPE)
        if fmt != "json":
            raise HttpError(
                400, f"unknown metrics format {fmt!r}: one of json, prometheus"
            )
        snapshot = self.scheduler.metrics.snapshot()
        stats = self.queue.stats
        return Response.json(
            {
                "metrics": snapshot,
                "queue": {
                    "queued": self.queue.queued_count,
                    "running": self.queue.running_count,
                    "admitted": stats.admitted,
                    "rejected_full": stats.rejected_full,
                    "rejected_quota": stats.rejected_quota,
                    "cancelled": stats.cancelled,
                },
            }
        )

    def events_feed(self, request: Request) -> Response:
        """Since-cursor window of the server's live event log (NDJSON).

        ``?since=N`` resumes from stream position ``N`` (default 0 —
        everything still buffered); ``?limit=M`` caps the window.  The
        ``X-Next-Cursor`` header is what a client passes as ``since``
        on its next poll; events that fell off the ring are gone, and a
        cursor beyond the head is clamped back to it.
        """
        if self.events is None:
            raise HttpError(404, "event log is not enabled on this server")
        try:
            since = int(request.query.get("since", "0"))
            limit_text = request.query.get("limit")
            limit = int(limit_text) if limit_text is not None else None
        except ValueError as exc:
            raise HttpError(400, f"since/limit must be integers: {exc}") from None
        if since < 0 or (limit is not None and limit < 0):
            raise HttpError(400, "since/limit must be non-negative")
        window = self.events.since(since, limit=limit)
        if window:
            next_cursor = window[-1]["seq"] + 1
        else:
            next_cursor = min(since, self.events.next_seq)
        body = render_events_jsonl(window)
        return Response(
            status=200,
            body=body.encode(),
            content_type="application/x-ndjson",
            headers={"X-Next-Cursor": str(next_cursor)},
        )

    def shutdown(self) -> Response:
        self.draining = True
        if self.events:
            self.events.emit("serve-shutdown", "warning")
        if self.on_shutdown is not None:
            self.on_shutdown()
        return Response.json({"status": "draining"})
