"""The study §3 considered but didn't run: probing DNS servers.

The paper picks NTP pool servers as its UDP population, noting "DNS
servers could also be used, and may be more representative of core
infrastructure".  This example runs that variant: deploy authoritative
DNS servers on a sample of the pool hosts (volunteer machines often
run both), then probe each with not-ECT and ECT(0) marked queries and
compare the verdicts with the NTP probes of the same hosts.

The punchline matches §4.4's reasoning: the deployed middleboxes match
on "UDP + ECT", not on the application protocol — so a host whose NTP
is ECT-blocked is ECT-blocked for DNS too, and the NTP-based study
generalises.

    python examples/dns_variant_study.py
"""

from repro import ECN, SyntheticInternet, probe_udp, scaled_params
from repro.protocols.dns.resolver import LookupResult, Resolver
from repro.protocols.dns.server import DNSServer, RoundRobinZone

ZONE = "ecn-test.example"


def probe_dns(world, vantage, server_addr, ecn, attempts=3) -> bool:
    """One DNS reachability probe with the chosen ECN marking."""
    resolver = Resolver(vantage, server_addr, timeout=1.0, retries=attempts - 1, ecn=ecn)
    results: list[LookupResult] = []
    resolver.lookup(ZONE, results.append)
    world.network.scheduler.run()
    return results[0].responded


def main() -> None:
    world = SyntheticInternet(scaled_params(0.05, seed=99))
    vantage = world.vantage_hosts["ugla-wired"]

    # Co-deploy DNS on a sample of pool hosts: normal ones plus every
    # host the scenario put behind an ECT-dropping firewall.
    online = [
        s
        for s in world.servers
        if s.addr not in world.ground_truth.offline_batch1
    ]
    blocked_addrs = set(world.ground_truth.udp_ect_blocked)
    sample = [s for s in online if s.addr in blocked_addrs]
    sample += [s for s in online if s.addr not in blocked_addrs][: 20 - len(sample)]
    for server in sample:
        dns = DNSServer(server.host)
        dns.add_zone(RoundRobinZone(ZONE, addresses=[server.addr]))

    print(f"probing {len(sample)} co-deployed DNS servers from {vantage.hostname}\n")
    header = f"{'host':<22} {'NTP/ECT(0)':>11} {'DNS/ECT(0)':>11} {'agree':>6}"
    print(header)
    print("-" * len(header))
    agreements = 0
    for server in sample:
        ntp_ect = probe_udp(vantage, server.addr, ECN.ECT_0, attempts=3).responded
        dns_plain = probe_dns(world, vantage, server.addr, ECN.NOT_ECT)
        dns_ect = probe_dns(world, vantage, server.addr, ECN.ECT_0)
        assert dns_plain, "DNS service itself must answer not-ECT queries"
        agree = ntp_ect == dns_ect
        agreements += agree
        flag = " <- ECT-blocked" if server.addr in blocked_addrs else ""
        print(
            f"{server.hostname:<22} {'yes' if ntp_ect else 'NO':>11} "
            f"{'yes' if dns_ect else 'NO':>11} {'yes' if agree else 'NO':>6}{flag}"
        )
    print(
        f"\nNTP and DNS verdicts agree on {agreements}/{len(sample)} hosts: "
        "the middleboxes match on 'UDP + ECT', not the application — "
        "the paper's NTP-based conclusions generalise to other UDP services."
    )


if __name__ == "__main__":
    main()
