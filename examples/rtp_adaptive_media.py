"""Adaptive RTP media over a real RED/ECN bottleneck.

Everything the paper motivates in §1, end to end: an RTP sender with a
NADA-style controller streams across a bandwidth-limited link with a
RED queue, in full event-driven simulation.  Run twice:

* **ECN-capable bottleneck** — RED CE-marks the ECT(0) media; the
  controller converges onto the link rate with (near) zero loss and a
  short queue: "lower queue occupancy, hence lower latency ... react
  to congestion without packet loss" (§1);
* **drop-only bottleneck** — same queue, no ECN: every congestion
  signal is a lost media packet (a visible glitch).

    python examples/rtp_adaptive_media.py
"""

from repro.netsim.buffered import buffered_pair
from repro.netsim.host import Host
from repro.netsim.ipv4 import parse_addr
from repro.netsim.network import EVENT, Network
from repro.netsim.queues import REDQueue
from repro.netsim.router import Router
from repro.netsim.topology import Topology
from repro.protocols.rtp import NADAController, run_media_session

BOTTLENECK_BPS = 1_000_000


def build_bottleneck_net(ecn_capable: bool):
    topo = Topology()
    topo.add_router(Router("r0", asn=1, interface_addr=parse_addr("10.0.0.1")))
    topo.add_router(Router("r1", asn=2, interface_addr=parse_addr("10.0.1.1")))
    red = REDQueue(
        min_threshold=4,
        max_threshold=16,
        max_probability=0.2,
        weight=0.1,
        ecn_capable_queue=ecn_capable,
    )
    forward, backward = buffered_pair(
        "r0", "r1", bandwidth=BOTTLENECK_BPS, delay=0.02, queue_limit=60, red=red
    )
    topo.add_link_pair(forward, backward)
    sender = topo.add_host(Host("media-sender", parse_addr("192.0.2.1"), "r0"))
    receiver = topo.add_host(Host("media-receiver", parse_addr("198.51.100.1"), "r1"))
    net = Network(topo, seed=7, mode=EVENT)
    forward.bind_clock(net.scheduler.clock)
    backward.bind_clock(net.scheduler.clock)
    return net, sender, receiver, forward


def run_case(label: str, ecn_capable: bool) -> None:
    net, sender_host, receiver_host, bottleneck = build_bottleneck_net(ecn_capable)
    controller = NADAController(
        initial_rate=1_500_000, max_rate=2_500_000, min_rate=200_000
    )
    stats, receiver = run_media_session(
        sender_host, receiver_host, 5004, duration=20.0, controller=controller
    )
    loss_pct = 100.0 * stats.observed_loss / max(stats.sent, 1)
    print(f"\n== {label} ==")
    print(f"  ECN state         : {stats.ecn_state}")
    print(f"  sent / received   : {stats.sent} / {receiver.received}")
    print(f"  CE marks observed : {stats.observed_ce}")
    print(f"  media lost        : {stats.observed_loss} ({loss_pct:.1f}%)")
    print(f"  final send rate   : {stats.final_rate / 1000:.0f} kbps "
          f"(bottleneck {BOTTLENECK_BPS / 1000:.0f} kbps)")
    print(f"  bottleneck queue  : {bottleneck.ce_marks} CE-marked, "
          f"{bottleneck.red_drops} RED-dropped, {bottleneck.tail_drops} tail-dropped")


def main() -> None:
    print("Starting above the bottleneck rate (1.5 Mbps into 1.0 Mbps)...")
    run_case("RED with ECN (CE marks)", ecn_capable=True)
    run_case("RED without ECN (drops)", ecn_capable=False)
    print(
        "\nWith ECN the controller hears about congestion through CE marks"
        "\nand backs off with almost no media loss; without it, every"
        "\ncongestion signal costs a lost packet the viewer would notice."
    )


if __name__ == "__main__":
    main()
