"""Operator-style ECN path debugging.

§4.2's traceroute technique doubles as an operations tool: given a
destination that ECT-marked traffic cannot reach (or where marks
vanish), the ICMP-quotation comparison localises the offending hop.
This example plays network operator on the synthetic Internet:

1. find a destination whose ECT(0) reachability differs from not-ECT;
2. traceroute it with ECT(0) probes and print the per-hop verdicts;
3. name the AS where the mark was stripped or the drop began.

    python examples/ecn_path_debugging.py
"""

from repro import ECN, SyntheticInternet, probe_udp, run_traceroute, scaled_params
from repro.netsim.ipv4 import format_addr


def annotate_path(world, path) -> None:
    for hop in path.hops:
        if not hop.responded:
            print(f"  {hop.ttl:3d}  *")
            continue
        asn = world.as_map.lookup(hop.responder)
        verdict = "ECT(0) intact" if hop.mark_preserved else "ECN field CLEARED"
        rtt = f"{hop.rtt * 1000:6.1f} ms" if hop.rtt is not None else "      -"
        print(f"  {hop.ttl:3d}  {format_addr(hop.responder):15s} AS{asn:<5d} {rtt}  {verdict}")


def main() -> None:
    world = SyntheticInternet(scaled_params(0.08, seed=77))
    vantage = world.vantage_hosts["ec2-virginia"]

    # -- Case 1: a destination whose mark is stripped en route --------
    bleacher_asns = {
        world.topology.routers[r].asn
        for r in world.ground_truth.boundary_bleacher_routers
        - world.ground_truth.flaky_bleacher_routers
    }
    stripped_dst = next(s for s in world.servers if s.asn in bleacher_asns)
    print(f"case 1: marks vanish toward {stripped_dst.hostname}")
    path = run_traceroute(vantage, stripped_dst.addr, params=world.params.probes)
    annotate_path(world, path)
    strip_ttl = path.first_strip_ttl()
    strip_hop = next(h for h in path.hops if h.ttl == strip_ttl)
    print(
        f"  => mark first missing at hop {strip_ttl} "
        f"(AS{world.as_map.lookup(strip_hop.responder)}); traffic still "
        "flows, but ECN is defeated on this path\n"
    )

    # -- Case 2: a destination that silently drops ECT UDP ------------
    blocked_addr = sorted(world.ground_truth.udp_ect_blocked)[0]
    blocked_dst = world.server_by_addr(blocked_addr)
    print(f"case 2: ECT(0) UDP blackholed toward {blocked_dst.hostname}")
    plain = probe_udp(vantage, blocked_addr, ECN.NOT_ECT)
    marked = probe_udp(vantage, blocked_addr, ECN.ECT_0)
    print(f"  reachability: not-ECT={plain.responded}, ECT(0)={marked.responded}")
    path = run_traceroute(vantage, blocked_addr, params=world.params.probes)
    annotate_path(world, path)
    if all(h.mark_preserved for h in path.responding_hops()):
        print(
            "  => every responding hop passes the mark, yet the ECT probe "
            "dies: the drop is at (or just before) the destination — the "
            "paper's §4.1 inference, and why §4.2 'cannot tell whether "
            "marked packets reach their destination'"
        )


if __name__ == "__main__":
    main()
