"""WebRTC-style ECN pre-flight check.

The paper's motivation (§1) is interactive multimedia: WebRTC sends
RTP over UDP, RFC 6679 defines ECN feedback for it, and congestion
controllers like NADA want ECN marks instead of losses.  Before a
sender turns on ECT marking it should verify the path actually
delivers ECT-marked UDP — this example implements exactly that
pre-flight, plus a demonstration of *why* it is worth doing: on a
congested ECN-capable bottleneck, ECT-marked media survives (as CE
marks) where not-ECT media is dropped.

    python examples/webrtc_preflight.py
"""

from repro import ECN, SyntheticInternet, probe_udp, scaled_params
from repro.netsim.host import AccessLink
from repro.netsim.ipv4 import format_addr
from repro.netsim.queues import StaticCongestion


def preflight(world, vantage, peer_addr, attempts=3) -> str:
    """The RFC 6679-style capability check a media stack should run.

    Sends probes both not-ECT and ECT(0) marked; ECN is only usable if
    the ECT-marked probe gets through.
    """
    plain = probe_udp(vantage, peer_addr, ECN.NOT_ECT, attempts=attempts)
    marked = probe_udp(vantage, peer_addr, ECN.ECT_0, attempts=attempts)
    if not plain.responded:
        return "peer unreachable"
    if marked.responded:
        return "ECN usable: enable ECT(0) marking"
    return "path drops ECT-marked UDP: fall back to not-ECT"


def demo_preflight() -> None:
    world = SyntheticInternet(scaled_params(0.05, seed=202))
    vantage = world.vantage_hosts["perkins-home"]
    clean_peer = next(
        s
        for s in world.servers
        if s.addr
        not in world.ground_truth.all_persistent_blocked
        | world.ground_truth.offline_batch1
    )
    blocked_peer = world.server_by_addr(
        sorted(world.ground_truth.udp_ect_blocked)[0]
    )

    print("== pre-flight checks ==")
    for peer in (clean_peer, blocked_peer):
        verdict = preflight(world, vantage, peer.addr)
        print(f"peer {peer.hostname} ({format_addr(peer.addr)}): {verdict}")


def demo_congestion_benefit() -> None:
    """Why media stacks want ECN: marks instead of drops.

    We congest the vantage's uplink with an ECN-capable AQM and stream
    200 'media packets' each way.  Not-ECT packets are dropped by the
    AQM; ECT(0) packets arrive CE-marked instead — the lower-latency,
    no-visible-glitch signal NADA consumes.
    """
    world = SyntheticInternet(scaled_params(0.05, seed=202))
    vantage = world.vantage_hosts["ec2-frankfurt"]
    # Congest the uplink: 20% signalling, ECN-capable (RFC 3168 AQM).
    vantage.access = AccessLink(
        delay=0.004, upstream_aqm=StaticCongestion(0.2, ecn_capable_queue=True)
    )
    peer = next(
        s
        for s in world.servers
        if s.addr
        not in world.ground_truth.all_persistent_blocked
        | world.ground_truth.offline_batch1
    )

    results = {}
    for label, ecn in (("not-ECT", ECN.NOT_ECT), ("ECT(0)", ECN.ECT_0)):
        delivered = 0
        ce_marked = 0

        def on_media(datagram, packet, now):
            nonlocal delivered, ce_marked
            delivered += 1
            if packet.ecn is ECN.CE:
                ce_marked += 1

        sock_peer = peer.host.udp_bind(50000 + int(ecn), on_media)
        sock = vantage.udp_bind(None)
        for seq in range(200):
            sock.send(peer.addr, sock_peer.port, bytes([seq % 256]) * 160, ecn=ecn)
        world.network.scheduler.run()
        sock.close()
        results[label] = (delivered, ce_marked)

    print("\n== congested uplink: 200 media packets each way ==")
    for label, (delivered, ce_marked) in results.items():
        lost = 200 - delivered
        print(
            f"{label:>8}: {delivered} delivered, {lost} lost, "
            f"{ce_marked} CE-marked"
        )
    not_ect_lost = 200 - results["not-ECT"][0]
    ect_lost = 200 - results["ECT(0)"][0]
    print(
        f"\nECT marking converted ~{not_ect_lost - ect_lost} congestion drops "
        "into CE marks the congestion controller can react to without "
        "media glitches."
    )


if __name__ == "__main__":
    demo_preflight()
    demo_congestion_benefit()
