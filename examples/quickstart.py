"""Quickstart: build a small synthetic Internet and probe it.

Runs the paper's four measurements (§3) against a handful of NTP pool
servers from one vantage point, printing what the measurement
application sees.  Takes a few seconds.

    python examples/quickstart.py
"""

from repro import ECN, SyntheticInternet, probe_tcp, probe_udp, scaled_params
from repro.netsim.ipv4 import format_addr


def main() -> None:
    # A 5%-scale Internet: ~125 pool servers, 13 vantages, calibrated
    # middlebox population.  Deterministic in the seed.
    world = SyntheticInternet(scaled_params(0.05, seed=42))
    vantage = world.vantage_hosts["ugla-wired"]
    print(f"built {world!r}")
    print(f"probing from {vantage.hostname} ({format_addr(vantage.addr)})\n")

    header = f"{'server':<22} {'UDP':>5} {'UDP+ECT(0)':>11} {'TCP':>5} {'TCP+ECN':>8}"
    print(header)
    print("-" * len(header))

    for server in world.servers[:12]:
        udp_plain = probe_udp(vantage, server.addr, ECN.NOT_ECT)
        udp_ect = probe_udp(vantage, server.addr, ECN.ECT_0)
        tcp_plain = probe_tcp(vantage, server.addr, use_ecn=False)
        tcp_ecn = probe_tcp(vantage, server.addr, use_ecn=True)
        print(
            f"{server.hostname:<22} "
            f"{'yes' if udp_plain.responded else 'no':>5} "
            f"{'yes' if udp_ect.responded else 'no':>11} "
            f"{'yes' if tcp_plain.ok else 'no':>5} "
            f"{'negotiated' if tcp_ecn.ecn_negotiated else '-':>8}"
        )

    # Probe one server the scenario deliberately put behind an
    # ECT-dropping firewall: the paper's central phenomenon.
    blocked_addr = sorted(world.ground_truth.udp_ect_blocked)[0]
    blocked = world.server_by_addr(blocked_addr)
    print(f"\nfirewalled server {blocked.hostname}:")
    print(f"  not-ECT UDP : {'reachable' if probe_udp(vantage, blocked_addr, ECN.NOT_ECT).responded else 'unreachable'}")
    print(f"  ECT(0) UDP  : {'reachable' if probe_udp(vantage, blocked_addr, ECN.ECT_0).responded else 'unreachable'}")
    tcp = probe_tcp(vantage, blocked_addr, use_ecn=True)
    print(f"  TCP with ECN: {'negotiated' if tcp.ecn_negotiated else 'refused'}"
          f" — middleboxes can discriminate on the transport protocol (§4.4)")


if __name__ == "__main__":
    main()
