"""Reproduce the paper end to end.

Runs the complete methodology of §3 — DNS discovery of the pool,
the trace schedule across all thirteen vantage points in two batches,
and the ECT(0) traceroute campaign — then prints every table and
figure of §4 with the paper's numbers alongside.

    python examples/full_study.py [scale] [seed]

``scale`` defaults to 0.1 (250 servers, ~21 traces; about a minute).
Scale 1.0 is the paper's full 2500 x 210 configuration (tens of
minutes; numbers recorded in EXPERIMENTS.md).
"""

import sys
import time

from repro import MeasurementApplication, PoolDiscovery, SyntheticInternet
from repro.core.analysis import (
    DifferentialAnalysis,
    analyze_campaign,
    analyze_correlation,
    analyze_geography,
    analyze_reachability,
    analyze_tcp_ecn,
)
from repro.reporting.report import full_report
from repro.scenario.parameters import default_params, scaled_params


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 20150401
    params = default_params(seed) if scale >= 1.0 else scaled_params(scale, seed)

    started = time.time()
    world = SyntheticInternet(params)
    print(f"[{time.time() - started:6.1f}s] built {world!r}")

    discovery = PoolDiscovery(
        world.vantage_hosts["ugla-wired"], world.dns_addr, world.pool.zone_names()
    )
    report = discovery.run()
    print(
        f"[{time.time() - started:6.1f}s] discovered {len(report)} servers "
        f"in {report.sweeps} DNS sweeps"
    )

    app = MeasurementApplication(world, targets=report.addresses)
    traces = app.run_study()
    print(f"[{time.time() - started:6.1f}s] collected {len(traces)} traces")

    campaign = app.run_traceroutes()
    hops = sum(len(p.hops) for p in campaign)
    print(
        f"[{time.time() - started:6.1f}s] ran {len(campaign)} traceroutes "
        f"({hops} hop observations)"
    )

    print()
    print(
        full_report(
            analyze_geography(traces.server_addrs, world.geo),
            analyze_reachability(traces),
            DifferentialAnalysis(traces, "plain-only"),
            DifferentialAnalysis(traces, "ect-only"),
            analyze_tcp_ecn(traces),
            campaign,
            analyze_campaign(campaign, world.noisy_as_map),
            analyze_correlation(traces),
        )
    )


if __name__ == "__main__":
    main()
