"""Tests for the `ecnudp validate` command."""

from repro.cli import main


class TestValidateCommand:
    def test_prints_intervals_and_quality(self, capsys):
        assert main(["validate", "--scale", "0.02", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Headline statistics" in out
        assert "CI" in out
        assert "Inference quality" in out
        for name in ("blocked-servers", "not-ect-droppers", "strip-ases"):
            assert name in out
        # Quality numbers are printed as precision/recall/f1 triples.
        assert "precision=" in out and "recall=" in out and "f1=" in out


class TestValidateExitCodes:
    def test_bad_scale_exits_2(self, capsys):
        assert main(["validate", "--scale", "-0.5"]) == 2
        assert "scale" in capsys.readouterr().err
