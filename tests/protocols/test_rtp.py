"""Tests for RTP, ECN feedback, NADA, and the media session."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.ecn import ECN
from repro.netsim.errors import CodecError
from repro.netsim.ipv4 import PROTO_UDP
from repro.netsim.middlebox import ECTBleacher, ECTDropper
from repro.netsim.queues import StaticCongestion
from repro.protocols.rtp.nada import NADAController
from repro.protocols.rtp.packet import ECNFeedback, RTPPacket
from repro.protocols.rtp.session import (
    ECN_ACTIVE,
    ECN_DISABLED,
    run_media_session,
)


class TestRTPCodec:
    def test_roundtrip(self):
        packet = RTPPacket(
            payload_type=96,
            sequence=1234,
            timestamp=567890,
            ssrc=0xDEADBEEF,
            payload=b"media" * 10,
            marker=True,
        )
        assert RTPPacket.decode(packet.encode()) == packet

    def test_version_checked(self):
        wire = bytearray(RTPPacket(96, 1, 2, 3).encode())
        wire[0] = 0x40  # version 1
        with pytest.raises(CodecError):
            RTPPacket.decode(bytes(wire))

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            RTPPacket.decode(b"\x80\x60\x00")

    def test_payload_type_range(self):
        with pytest.raises(CodecError):
            RTPPacket(payload_type=200, sequence=0, timestamp=0, ssrc=0).encode()


@given(
    pt=st.integers(0, 127),
    seq=st.integers(0, 0xFFFF),
    ts=st.integers(0, 0xFFFFFFFF),
    ssrc=st.integers(0, 0xFFFFFFFF),
    marker=st.booleans(),
    payload=st.binary(max_size=64),
)
def test_rtp_roundtrip_property(pt, seq, ts, ssrc, marker, payload):
    packet = RTPPacket(
        payload_type=pt,
        sequence=seq,
        timestamp=ts,
        ssrc=ssrc,
        marker=marker,
        payload=payload,
    )
    assert RTPPacket.decode(packet.encode()) == packet


class TestFeedbackCodec:
    def test_roundtrip(self):
        feedback = ECNFeedback(
            ssrc=7, ect0=100, ect1=0, ce=5, not_ect=2, lost=3,
            highest_seq=110, report_seq=9,
        )
        assert ECNFeedback.decode(feedback.encode()) == feedback

    def test_magic_checked(self):
        wire = bytearray(ECNFeedback(ssrc=1).encode())
        wire[0] = ord("X")
        with pytest.raises(CodecError):
            ECNFeedback.decode(bytes(wire))

    def test_derived_counts(self):
        feedback = ECNFeedback(ssrc=1, ect0=10, ect1=1, ce=2, not_ect=3)
        assert feedback.received_total == 16
        assert feedback.ect_delivered == 13


class TestNADA:
    def test_clean_path_ramps_up(self):
        controller = NADAController(initial_rate=500_000)
        for _ in range(30):
            controller.update(0.0, 0.0, 0.0)
        assert controller.rate > 500_000

    def test_marks_push_rate_down(self):
        controller = NADAController(initial_rate=2_000_000)
        for _ in range(30):
            controller.update(0.0, 0.0, 0.5)
        assert controller.rate < 2_000_000

    def test_losses_hurt_more_than_marks(self):
        lossy = NADAController(initial_rate=1_000_000)
        marky = NADAController(initial_rate=1_000_000)
        for _ in range(20):
            lossy.update(0.0, 0.1, 0.0)
            marky.update(0.0, 0.0, 0.1)
        assert lossy.rate < marky.rate

    def test_rate_bounded(self):
        controller = NADAController(min_rate=100_000, max_rate=1_000_000)
        for _ in range(100):
            controller.update(0.0, 0.0, 0.0)
        assert controller.rate == 1_000_000
        for _ in range(200):
            controller.update(200.0, 1.0, 0.0)
        assert controller.rate == 100_000

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            NADAController().update(0.0, 1.5, 0.0)


class TestMediaSession:
    def test_clean_path_validates_ecn(self, two_host_net):
        net, client, server = two_host_net
        stats, receiver = run_media_session(client, server, 4000, duration=2.0)
        assert stats.ecn_state == ECN_ACTIVE
        assert stats.ect_sent == stats.sent
        assert receiver.counts[ECN.ECT_0] > 0
        assert receiver.received > 50

    def test_bleached_path_falls_back(self, two_host_net):
        """Marks stripped en route: media flows, sender disables ECN."""
        net, client, server = two_host_net
        net.topology.routers["r1"].add_middlebox(ECTBleacher())
        stats, receiver = run_media_session(client, server, 4001, duration=2.0)
        assert stats.ecn_state == ECN_DISABLED
        assert receiver.counts[ECN.ECT_0] == 0
        assert receiver.counts[ECN.NOT_ECT] > 0

    def test_ect_dropping_path_falls_back(self, two_host_net):
        """ECT-marked UDP blackholed (the paper's firewalled dozen):
        the probing phase gets silence, then not-ECT media flows."""
        net, client, server = two_host_net
        net.topology.routers["r1"].add_middlebox(
            ECTDropper(protocols=frozenset({PROTO_UDP}))
        )
        stats, receiver = run_media_session(client, server, 4002, duration=3.0)
        assert stats.ecn_state == ECN_DISABLED
        assert receiver.received > 0
        assert receiver.counts[ECN.ECT_0] == 0

    def test_ce_marks_drive_rate_down_without_loss(self, net_factory):
        """The ECN value proposition for media: on a marking
        bottleneck, rate adapts with (almost) no packet loss."""
        net, client, server = net_factory(seed=9)
        forward, _ = net.topology.links_between("r0", "r1")
        forward.aqm = StaticCongestion(0.4, ecn_capable_queue=True)
        controller = NADAController(initial_rate=1_500_000)
        stats, receiver = run_media_session(
            client, server, 4003, duration=4.0, controller=controller
        )
        assert stats.ecn_state == ECN_ACTIVE
        assert stats.observed_ce > 0
        assert stats.final_rate < 1_500_000
        loss_rate = stats.observed_loss / max(stats.sent, 1)
        assert loss_rate < 0.02

    def test_drop_bottleneck_loses_media(self, net_factory):
        """Same bottleneck without ECN support: congestion = loss."""
        net, client, server = net_factory(seed=9)
        forward, _ = net.topology.links_between("r0", "r1")
        forward.aqm = StaticCongestion(0.4, ecn_capable_queue=False)
        controller = NADAController(initial_rate=1_500_000)
        stats, receiver = run_media_session(
            client, server, 4004, duration=4.0, controller=controller
        )
        loss_rate = stats.observed_loss / max(stats.sent, 1)
        assert loss_rate > 0.05
        assert stats.final_rate < 1_500_000

    def test_feedback_flows(self, two_host_net):
        net, client, server = two_host_net
        stats, receiver = run_media_session(client, server, 4005, duration=2.0)
        assert stats.feedback_received >= 10
        assert stats.rate_history
