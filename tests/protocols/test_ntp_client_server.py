"""Tests for the NTP server and the paper's probing client."""

import pytest

from repro.netsim.ecn import ECN
from repro.netsim.queues import BernoulliLoss
from repro.protocols.ntp.client import query_server
from repro.protocols.ntp.server import NTPServer


class TestServer:
    def test_responds_to_client_request(self, two_host_net):
        net, client, server = two_host_net
        ntp = NTPServer(server, stratum=2)
        results = []
        query_server(client, server.addr, ECN.NOT_ECT, results.append)
        net.scheduler.run()
        result = results[0]
        assert result.responded
        assert result.attempts == 1
        assert result.response.stratum == 2
        assert ntp.requests_served == 1

    def test_response_echoes_origin_timestamp(self, two_host_net):
        net, client, server = two_host_net
        NTPServer(server)
        results = []
        query_server(client, server.addr, ECN.NOT_ECT, results.append)
        net.scheduler.run()
        response = results[0].response
        assert response.origin_ts != 0
        assert response.receive_ts >= response.origin_ts

    def test_offline_server_is_silent(self, two_host_net):
        net, client, server = two_host_net
        ntp = NTPServer(server)
        ntp.set_online(False)
        results = []
        query_server(client, server.addr, ECN.NOT_ECT, results.append, attempts=2)
        net.scheduler.run()
        assert not results[0].responded
        assert results[0].attempts == 2

    def test_server_ignores_non_client_modes(self, two_host_net):
        net, client, server = two_host_net
        ntp = NTPServer(server)
        from repro.protocols.ntp.packet import NTPPacket

        got = []
        sock = client.udp_bind(None, lambda d, p, t: got.append(d))
        sock.send(server.addr, 123, NTPPacket(mode=4).encode())
        net.scheduler.run()
        assert got == []
        assert ntp.requests_served == 0

    def test_server_response_is_not_ect(self, two_host_net):
        """NTP doesn't use ECN: responses ride not-ECT packets, which
        is why the paper can only probe the forward path."""
        net, client, server = two_host_net
        NTPServer(server)
        marks = []
        client.add_tap(lambda d, p, t: marks.append(p.ecn) if d == "in" else None)
        query_server(client, server.addr, ECN.ECT_0, lambda r: None)
        net.scheduler.run()
        assert marks == [ECN.NOT_ECT]


class TestClientRetries:
    def test_five_attempts_then_unreachable(self, two_host_net):
        """The paper's exact policy: 5 transmissions, 1 s timeouts."""
        net, client, server = two_host_net
        # No NTP server bound at all.
        results = []
        query_server(
            client, server.addr, ECN.ECT_0, results.append, attempts=5, timeout=1.0
        )
        start = net.scheduler.now
        net.scheduler.run()
        result = results[0]
        assert not result.responded
        assert result.attempts == 5
        assert net.scheduler.now - start == pytest.approx(5.0)

    def test_retry_recovers_from_loss(self, net_factory):
        net, client, server = net_factory(seed=23)
        forward, _ = net.topology.links_between("r0", "r1")
        forward.loss = BernoulliLoss(0.6)
        NTPServer(server)
        results = []
        query_server(client, server.addr, ECN.NOT_ECT, results.append, attempts=5)
        net.scheduler.run()
        assert results[0].responded
        assert results[0].attempts >= 1

    def test_ect_marked_probe_carries_mark(self, two_host_net):
        net, client, server = two_host_net
        NTPServer(server)
        marks = []
        server.add_tap(lambda d, p, t: marks.append(p.ecn) if d == "in" else None)
        query_server(client, server.addr, ECN.ECT_0, lambda r: None)
        net.scheduler.run()
        assert marks == [ECN.ECT_0]

    def test_rtt_measured(self, two_host_net):
        net, client, server = two_host_net
        NTPServer(server)
        results = []
        query_server(client, server.addr, ECN.NOT_ECT, results.append)
        net.scheduler.run()
        assert results[0].rtt == pytest.approx(0.02)

    def test_late_response_after_retransmit_still_counts(self, net_factory):
        """A response to any attempt marks the server reachable (§3)."""
        net, client, server = net_factory(seed=4)
        forward, _ = net.topology.links_between("r0", "r1")
        # Lose exactly the first probe.
        class FirstOnly(BernoulliLoss):
            def __init__(self):
                super().__init__(1.0)
                self.count = 0

            def sample_loss(self, rng):
                self.count += 1
                return self.count == 1

        forward.loss = FirstOnly()
        NTPServer(server)
        results = []
        query_server(client, server.addr, ECN.ECT_0, results.append)
        net.scheduler.run()
        assert results[0].responded
        assert results[0].attempts == 2
