"""Tests for the pool web server and the HTTP probe client."""

import pytest

from repro.netsim.ipv4 import PROTO_TCP
from repro.netsim.middlebox import ECTDropper
from repro.netsim.queues import BernoulliLoss
from repro.protocols.http.client import HTTPFetch, fetch
from repro.protocols.http.server import PoolWebServer, REDIRECT_TARGET
from repro.tcp.connection import ECNServerPolicy, TCPStack
from repro.tcp.segment import Flags


class TestFetchPlain:
    def test_fetch_redirect_page(self, two_host_net):
        net, client, server = two_host_net
        web = PoolWebServer(server)
        results = []
        fetch(client, server.addr, use_ecn=False, callback=results.append)
        net.scheduler.run()
        result = results[0]
        assert result.ok
        assert result.response.status == 302
        assert result.response.header("Location") == REDIRECT_TARGET
        assert web.requests_served == 1

    def test_status_200_variant(self, two_host_net):
        net, client, server = two_host_net
        PoolWebServer(server, status=200)
        results = []
        fetch(client, server.addr, use_ecn=False, callback=results.append)
        net.scheduler.run()
        assert results[0].response.status == 200

    def test_no_web_server_with_stack_refused(self, two_host_net):
        net, client, server = two_host_net
        TCPStack(server)  # stack but no listener -> RST
        results = []
        fetch(client, server.addr, use_ecn=False, callback=results.append)
        net.scheduler.run()
        assert not results[0].ok
        assert results[0].failure == "refused"

    def test_no_stack_times_out(self, two_host_net):
        net, client, server = two_host_net
        results = []
        fetch(client, server.addr, use_ecn=False, callback=results.append, deadline=5.0)
        net.scheduler.run()
        assert not results[0].ok
        assert results[0].failure in ("syn-timeout", "deadline")

    def test_deadline_caps_duration(self, two_host_net):
        net, client, server = two_host_net
        results = []
        fetch(client, server.addr, use_ecn=False, callback=results.append, deadline=3.0)
        net.scheduler.run()
        assert net.scheduler.now <= 8.0


class TestFetchECN:
    @pytest.mark.parametrize(
        "policy,negotiated",
        [
            (ECNServerPolicy.NEGOTIATE, True),
            (ECNServerPolicy.IGNORE, False),
            (ECNServerPolicy.REFLECT, False),
        ],
    )
    def test_negotiation_recorded(self, two_host_net, policy, negotiated):
        net, client, server = two_host_net
        PoolWebServer(server, ecn_policy=policy)
        results = []
        fetch(client, server.addr, use_ecn=True, callback=results.append)
        net.scheduler.run()
        result = results[0]
        assert result.ok  # page fetched regardless of ECN outcome
        assert result.ecn_negotiated is negotiated

    def test_synack_flags_captured(self, two_host_net):
        net, client, server = two_host_net
        PoolWebServer(server, ecn_policy=ECNServerPolicy.NEGOTIATE)
        results = []
        fetch(client, server.addr, use_ecn=True, callback=results.append)
        net.scheduler.run()
        flags = results[0].synack_flags
        assert flags & Flags.SYN and flags & Flags.ACK and flags & Flags.ECE
        assert not flags & Flags.CWR

    def test_plain_fetch_never_reports_negotiation(self, two_host_net):
        net, client, server = two_host_net
        PoolWebServer(server, ecn_policy=ECNServerPolicy.NEGOTIATE)
        results = []
        fetch(client, server.addr, use_ecn=False, callback=results.append)
        net.scheduler.run()
        assert not results[0].ecn_negotiated

    def test_drop_ecn_syn_server_unreachable_with_ecn_only(self, two_host_net):
        net, client, server = two_host_net
        PoolWebServer(server, ecn_policy=ECNServerPolicy.DROP_ECN_SYN)
        plain, with_ecn = [], []
        fetch(client, server.addr, use_ecn=False, callback=plain.append)
        net.scheduler.run()
        fetch(client, server.addr, use_ecn=True, callback=with_ecn.append, deadline=5.0)
        net.scheduler.run()
        assert plain[0].ok
        assert not with_ecn[0].ok
        assert not with_ecn[0].ecn_negotiated

    def test_ect_tcp_firewall_breaks_transfer_not_negotiation(self, two_host_net):
        """§4.4 nuance: an IP-level ECT dropper on TCP doesn't stop the
        (not-ECT) handshake, so negotiation succeeds — but ECT-marked
        data segments then vanish and the fetch itself fails."""
        net, client, server = two_host_net
        PoolWebServer(server, ecn_policy=ECNServerPolicy.NEGOTIATE)
        server.inbound_filters.append(ECTDropper(protocols=frozenset({PROTO_TCP})))
        results = []
        fetch(client, server.addr, use_ecn=True, callback=results.append, deadline=6.0)
        net.scheduler.run()
        result = results[0]
        assert result.ecn_negotiated  # SYN/SYN-ACK are not-ECT
        assert not result.ok  # the ECT-marked request died


class TestFetchOverLoss:
    def test_fetch_survives_moderate_loss(self, net_factory):
        net, client, server = net_factory(seed=31)
        forward, _ = net.topology.links_between("r0", "r1")
        forward.loss = BernoulliLoss(0.15)
        PoolWebServer(server)
        results = []
        HTTPFetch(
            client, server.addr, use_ecn=False, callback=results.append,
            deadline=30.0, syn_retries=6,
        )
        net.scheduler.run()
        assert results[0].ok
