"""Tests for the QUIC server, probe connection, and §13.4 classifier."""

from repro.netsim.ecn import ECN
from repro.netsim.middlebox import ECTBleacher, ECTDropper
from repro.netsim.ipv4 import PROTO_UDP
from repro.protocols.quic.connection import QUICProbeResult, probe_server
from repro.protocols.quic.server import QUICServer
from repro.protocols.quic.validation import (
    ECN_USABLE_STATES,
    QUIC_STATES,
    classify_probe,
    ecn_usable,
)


def probe(client, server_addr, **kwargs):
    results = []
    kwargs.setdefault("timeout", 0.5)
    probe_server(client, server_addr, results.append, **kwargs)
    return results


class TestHandshakeAndCounts:
    def test_clean_path_validates(self, two_host_net):
        net, client, server = two_host_net
        QUICServer(server)
        results = probe(client, server.addr, packets=4)
        net.scheduler.run()
        result = results[0]
        assert result.handshake_ok
        assert result.handshake_attempts == 1
        assert result.packets_sent == 5  # Initial + 4 pings
        assert result.packets_acked == 5
        assert result.ect0_echoed == 5
        assert result.ect1_echoed == 0
        assert result.ce_echoed == 0
        assert classify_probe(result) == "valid"

    def test_server_replies_not_ect(self, two_host_net):
        """Like NTP, the reverse path is unmarked — only the forward
        direction is validated, mirroring the paper's limitation."""
        net, client, server = two_host_net
        QUICServer(server)
        marks = []
        client.add_tap(lambda d, p, t: marks.append(p.ecn) if d == "in" else None)
        probe(client, server.addr, packets=2)
        net.scheduler.run()
        assert marks and all(ecn is ECN.NOT_ECT for ecn in marks)

    def test_duplicate_packet_numbers_counted_once(self, two_host_net):
        """RFC 9000 §13.4.1: ECN counts are per distinct packet number."""
        net, client, server = two_host_net
        quic = QUICServer(server)
        results = probe(client, server.addr, packets=2)
        net.scheduler.run()
        conn = next(iter(quic.connections.values()))
        before = conn.ect0
        # Replay an already-seen packet number at the server.
        assert conn.record(0, ECN.ECT_0) is False
        assert conn.ect0 == before
        assert results[0].packets_acked == 3

    def test_offline_server_unreachable(self, two_host_net):
        net, client, server = two_host_net
        QUICServer(server).set_online(False)
        results = probe(
            client, server.addr, handshake_attempts=2, fallback_attempts=1
        )
        net.scheduler.run()
        result = results[0]
        assert not result.handshake_ok
        assert not result.fallback_ok
        assert result.handshake_attempts == 2
        assert classify_probe(result) == "unreachable"

    def test_reset_connections_clears_state(self, two_host_net):
        net, client, server = two_host_net
        quic = QUICServer(server)
        probe(client, server.addr, packets=1)
        net.scheduler.run()
        assert quic.connections
        quic.reset_connections()
        assert not quic.connections


class TestPathInterference:
    def test_bleached_path_classifies_bleached(self, two_host_net):
        """A bleacher en route: everything arrives, nothing stays marked."""
        net, client, server = two_host_net
        QUICServer(server)
        net.topology.routers["r0"].add_middlebox(ECTBleacher())
        results = probe(client, server.addr, packets=4)
        net.scheduler.run()
        result = results[0]
        assert result.handshake_ok
        assert result.packets_acked == result.packets_sent == 5
        assert result.ect0_echoed == 0
        assert classify_probe(result) == "bleached"

    def test_ect_dropper_classifies_blackhole(self, two_host_net):
        """ECT-marked UDP is eaten; the not-ECT fallback still connects
        — the QUIC analogue of the paper's ECT-unreachable servers."""
        net, client, server = two_host_net
        QUICServer(server)
        net.topology.routers["r0"].add_middlebox(
            ECTDropper(protocols=frozenset({PROTO_UDP}))
        )
        results = probe(
            client, server.addr, handshake_attempts=2, fallback_attempts=2
        )
        net.scheduler.run()
        result = results[0]
        assert not result.handshake_ok
        assert result.fallback_ok
        assert classify_probe(result) == "blackhole"


class TestClassifier:
    def make(self, **kwargs):
        base = dict(
            server_addr=1,
            handshake_ok=True,
            fallback_ok=False,
            handshake_attempts=1,
            packets_sent=8,
            packets_acked=8,
            ect0_echoed=8,
            ect1_echoed=0,
            ce_echoed=0,
        )
        base.update(kwargs)
        return QUICProbeResult(**base)

    def test_valid(self):
        assert classify_probe(self.make()) == "valid"

    def test_ce_counts_as_valid(self):
        """CE replacing ECT(0) is congestion feedback, not mangling."""
        result = self.make(ect0_echoed=6, ce_echoed=2)
        assert classify_probe(result) == "valid"

    def test_loss_is_not_bleaching(self):
        """Lost packets are not acked, so they never read as bleached."""
        result = self.make(packets_acked=5, ect0_echoed=5)
        assert classify_probe(result) == "valid"

    def test_partial_bleach_detected(self):
        result = self.make(packets_acked=8, ect0_echoed=5)
        assert classify_probe(result) == "bleached"

    def test_remarked_to_ect1(self):
        result = self.make(ect0_echoed=7, ect1_echoed=1)
        assert classify_probe(result) == "remarked"

    def test_inconsistent_counts(self):
        more_marked_than_acked = self.make(ect0_echoed=9)
        assert classify_probe(more_marked_than_acked) == "inconsistent"
        more_acked_than_sent = self.make(packets_acked=9, ect0_echoed=9)
        assert classify_probe(more_acked_than_sent) == "inconsistent"

    def test_blackhole_vs_unreachable(self):
        blackhole = self.make(handshake_ok=False, fallback_ok=True)
        assert classify_probe(blackhole) == "blackhole"
        unreachable = self.make(handshake_ok=False, fallback_ok=False)
        assert classify_probe(unreachable) == "unreachable"

    def test_usable_states(self):
        assert ECN_USABLE_STATES == {"valid"}
        for state in QUIC_STATES:
            assert ecn_usable(state) == (state == "valid")
