"""Tests for NTP pool membership, zones, and churn."""

import random

import pytest

from repro.protocols.ntp.pool import NTPPool, POOL_DOMAIN, PoolMember


def member(index, country="uk", region="europe"):
    return PoolMember(
        hostname=f"ntp-{index}",
        addr=0x3E000000 + index,
        country_code=country,
        region=region,
    )


class TestMembership:
    def test_add_and_count(self):
        pool = NTPPool()
        pool.add(member(1))
        pool.add(member(2))
        assert len(pool) == 2

    def test_duplicate_addr_rejected(self):
        pool = NTPPool()
        pool.add(member(1))
        with pytest.raises(ValueError):
            pool.add(member(1))

    def test_member_by_addr(self):
        pool = NTPPool()
        added = pool.add(member(5))
        assert pool.member_by_addr(added.addr) is added
        assert pool.member_by_addr(12345) is None


class TestZones:
    def test_member_zones(self):
        m = member(1, country="de", region="europe")
        assert m.zones == (
            "pool.ntp.org",
            "europe.pool.ntp.org",
            "de.pool.ntp.org",
        )

    def test_global_zone_first(self):
        pool = NTPPool()
        pool.add(member(1, country="de"))
        pool.add(member(2, country="fr"))
        zones = pool.zone_names()
        assert zones[0] == POOL_DOMAIN
        assert set(zones) == {
            "pool.ntp.org",
            "europe.pool.ntp.org",
            "de.pool.ntp.org",
            "fr.pool.ntp.org",
        }

    def test_zone_members_sorted_by_addr(self):
        pool = NTPPool()
        pool.add(member(2))
        pool.add(member(1))
        addrs = [m.addr for m in pool.zone_members("uk.pool.ntp.org")]
        assert addrs == sorted(addrs)

    def test_departed_members_leave_zones(self):
        pool = NTPPool()
        m = pool.add(member(1))
        m.in_pool = False
        assert pool.zone_members(POOL_DOMAIN) == []
        assert pool.members(include_departed=True) == [m]


class TestChurn:
    def test_churn_removes_expected_fraction(self):
        pool = NTPPool()
        for index in range(1000):
            pool.add(member(index))
        departed = pool.apply_churn(random.Random(1), leave_probability=0.1)
        assert 60 < len(departed) < 140
        assert len(pool.members()) == 1000 - len(departed)

    def test_churn_zero_probability_is_noop(self):
        pool = NTPPool()
        pool.add(member(1))
        assert pool.apply_churn(random.Random(1), 0.0) == []

    def test_churned_members_flagged(self):
        pool = NTPPool()
        for index in range(50):
            pool.add(member(index))
        departed = pool.apply_churn(random.Random(2), 1.0)
        assert len(departed) == 50
        assert all(not m.in_pool for m in departed)
