"""Tests for HTTP message framing."""

import pytest

from repro.netsim.errors import CodecError
from repro.protocols.http.messages import (
    HTTPRequest,
    HTTPResponse,
    response_complete,
)


class TestRequest:
    def test_roundtrip(self):
        request = HTTPRequest(
            method="GET",
            target="/",
            headers={"Host": "ntp-0001.uk", "Connection": "close"},
        )
        decoded = HTTPRequest.decode(request.encode())
        assert decoded.method == "GET"
        assert decoded.target == "/"
        assert decoded.headers["Host"] == "ntp-0001.uk"

    def test_body_gets_content_length(self):
        request = HTTPRequest(method="POST", target="/x", body=b"payload")
        wire = request.encode()
        assert b"Content-Length: 7" in wire
        assert HTTPRequest.decode(wire).body == b"payload"

    def test_unterminated_headers_rejected(self):
        with pytest.raises(CodecError):
            HTTPRequest.decode(b"GET / HTTP/1.1\r\nHost: x\r\n")

    def test_bad_request_line_rejected(self):
        with pytest.raises(CodecError):
            HTTPRequest.decode(b"NONSENSE\r\n\r\n")


class TestResponse:
    def test_roundtrip(self):
        response = HTTPResponse(
            status=302,
            reason="Found",
            headers={"Location": "http://www.pool.ntp.org/"},
            body=b"<html></html>",
        )
        decoded = HTTPResponse.decode(response.encode())
        assert decoded.status == 302
        assert decoded.header("location") == "http://www.pool.ntp.org/"
        assert decoded.body == b"<html></html>"

    def test_is_redirect(self):
        assert HTTPResponse(status=302).is_redirect
        assert HTTPResponse(status=301).is_redirect
        assert not HTTPResponse(status=200).is_redirect

    def test_header_lookup_case_insensitive(self):
        response = HTTPResponse(headers={"Content-Type": "text/html"})
        assert response.header("content-type") == "text/html"
        assert response.header("missing") is None
        assert response.header("missing", "dflt") == "dflt"

    def test_connection_close_added(self):
        assert b"Connection: close" in HTTPResponse().encode()

    def test_bad_status_line_rejected(self):
        with pytest.raises(CodecError):
            HTTPResponse.decode(b"HTTP/1.1 abc\r\n\r\n")


class TestCompleteness:
    def test_incomplete_headers(self):
        assert not response_complete(b"HTTP/1.1 200 OK\r\n")

    def test_complete_with_full_body(self):
        wire = HTTPResponse(body=b"12345").encode()
        assert response_complete(wire)

    def test_incomplete_body(self):
        wire = HTTPResponse(body=b"12345").encode()
        assert not response_complete(wire[:-2])

    def test_no_content_length_is_complete_at_header_end(self):
        raw = b"HTTP/1.1 200 OK\r\n\r\n"
        assert response_complete(raw)
